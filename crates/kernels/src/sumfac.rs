//! Matrix-free (partial-assembly) corner-force, energy and mass kernels.
//!
//! The stored-matrix pipeline (kernels 1–7) materializes per zone the
//! corner-force matrix `A_z` (`nvdof x npts`) and `F_z = A_z B^T`
//! (`nvdof x nthermo`) plus a global CSR kinematic mass matrix — the §4.1
//! memory ceiling (Q4-Q3 3D tops out at 16³ zones on a 5 GB device). The
//! matrix-free path here never forms any of them: following the MFEM/MARBL
//! partial-assembly treatment (Vargas et al., arXiv:2112.07075) and the
//! streaming-kernel formulation of Chalmers & Warburton (arXiv:2009.10917),
//! every operator application is a chain of sum-factorized 1D contractions
//! ([`blast_fem::sumfac`]) against quadrature-point data, with only the
//! `d x d` weighted stress `D_z(q̂_k) = α_k σ̂(q̂_k) adj(J)^T` persisted
//! between the force evaluation and the momentum/energy right-hand sides.
//!
//! Algebra (all per zone; `B`/`G` are the 1D value/derivative factors):
//!
//! - stored: `A_z[(c,m),k] = α_k Σ_g S[c,g](k) ∂ŵ_m/∂x̂_g(q̂_k)` with
//!   `S = σ̂ adj(J)^T`; momentum rhs `= -F_z·1 = -A_z (B^T·1)`; energy rhs
//!   `= F_z^T v_z`.
//! - matrix-free: persist `D_z(k) = α_k S(k)` (`d x d` per point) and apply
//!   `A_z` / `A_z^T` as backward/forward sum-factorized *gradient*
//!   transforms, the `B^T` legs as *value* transforms. The kinematic mass
//!   matrix disappears entirely: `M_V u = B^T Λ B u` with
//!   `Λ = diag(α_k w(q̂_k))`, two value transforms around a pointwise scale
//!   (the PCG `apply` of the SpMV-free solve).
//!
//! Per-point physics (EOS, viscosity, `adj(J)`, `det(J)`, SVD length
//! scale, timestep control) is byte-for-byte the stored pipeline's:
//! [`crate::k2::stress_at_point`] and the `blast_la` small-matrix ops that
//! kernel 1 uses. The two modes agree on the stress at every quadrature
//! point; they differ only in how the contractions around it associate.
//!
//! Determinism: zones are data-parallel with zone-private scratch and a
//! serial zone-order scatter (the k8/k10 pattern), and the inner
//! contractions run through [`blast_la::tile::gemm`] at shapes far below
//! one cache block — bitwise-identical results at every thread count and
//! tile variant, in both native and degraded-to-CPU execution.

use std::cell::RefCell;
use std::fmt;

use blast_fem::sumfac::{backward, forward, Factors1d, SumfacScratch};
use blast_fem::{gauss_legendre, quad_points_1d, Basis1d};
use blast_la::{svd2, svd3, BatchedMats, SmallMat};
use gpu_sim::{GpuDevice, GpuError, KernelStats, LaunchConfig, Traffic};
use rayon::prelude::*;

use crate::k2::{stress_at_point, ZoneConstants};
use crate::shapes::ProblemShape;

/// How the corner-force and mass operators are realized.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AssemblyMode {
    /// The paper's batched stored-matrix kernels: per-zone `A_z`/`F_z`
    /// batches plus a global CSR kinematic mass matrix.
    #[default]
    Stored,
    /// Sum-factorized partial assembly: no per-zone matrices, no CSR mass
    /// matrix; only `d x d` quadrature-point data is persisted.
    MatrixFree,
}

impl AssemblyMode {
    /// True for the matrix-free path.
    pub fn is_matrix_free(self) -> bool {
        matches!(self, AssemblyMode::MatrixFree)
    }
}

impl fmt::Display for AssemblyMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssemblyMode::Stored => write!(f, "stored"),
            AssemblyMode::MatrixFree => write!(f, "matrix-free"),
        }
    }
}

/// The 1D factor tables + precomputed tensor row sums shared by all
/// matrix-free kernels of one `Q_k`-`Q_{k-1}` discretization.
#[derive(Clone, Debug)]
pub struct SumfacFactors {
    /// Kinematic (H1, Gauss-Lobatto-node) factors at the per-axis Gauss
    /// points.
    pub kin: Factors1d,
    /// Thermodynamic (L2, Gauss-Legendre-node) factors at the same points.
    pub thermo: Factors1d,
    /// `t(q̂_k) = Σ_j B_thermo[j,k]` over all tensor points — the `B^T·1`
    /// leg of the momentum right-hand side.
    pub tvals: Vec<f64>,
    /// Spatial dimension (2 or 3).
    pub dim: usize,
}

impl SumfacFactors {
    /// Tabulates the factors for a `Q_k`-`Q_{k-1}` method in `dim`
    /// dimensions at the standard `2k`-point Gauss rule.
    pub fn new(dim: usize, order: usize) -> Self {
        assert!(dim == 2 || dim == 3, "sumfac supports 2D and 3D");
        assert!(order >= 1);
        let pts = gauss_legendre(quad_points_1d(order)).0;
        let kin = Factors1d::tabulate(&Basis1d::h1(order), &pts);
        let thermo = Factors1d::tabulate(&Basis1d::l2(order - 1), &pts);
        let mut tvals = Vec::new();
        thermo.value_row_sum_products(dim, &mut tvals);
        Self { kin, thermo, tvals, dim }
    }

    /// Builds factors matching a [`ProblemShape`].
    pub fn for_shape(shape: &ProblemShape) -> Self {
        let f = Self::new(shape.dim, shape.order);
        debug_assert_eq!(f.kin.ndof(shape.dim), shape.nkin);
        debug_assert_eq!(f.thermo.ndof(shape.dim), shape.nthermo);
        debug_assert_eq!(f.kin.npts(shape.dim), shape.npts);
        f
    }
}

/// Zone-private scratch for the matrix-free kernels: gathered coefficients,
/// per-zone point batches, and the contraction staging buffers. Grow-only —
/// one instance per worker thread via `thread_local`, so steady-state
/// evaluations allocate nothing.
#[derive(Debug, Default)]
struct ZoneScratch {
    /// Gathered kinematic vector coefficients (`d * nkin`).
    uz: Vec<f64>,
    /// One forward-transform output (`npts`).
    tmp: Vec<f64>,
    /// Per-point gather / pointwise-product buffer (`npts`).
    q: Vec<f64>,
    /// Reference Jacobian batch, point-major `[k*d² + c + g*d]` (`npts*d²`).
    jac: Vec<f64>,
    /// Reference velocity-gradient batch, same layout.
    gvref: Vec<f64>,
    /// Interpolated specific internal energy (`npts`).
    e_pt: Vec<f64>,
    /// Contraction staging.
    sf: SumfacScratch,
}

thread_local! {
    static TLS_ZS: RefCell<ZoneScratch> = RefCell::new(ZoneScratch::default());
}

fn grow(buf: &mut Vec<f64>, len: usize) {
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
}

/// Gathers the `d * nkin` zone-local kinematic vector coefficients of zone
/// `z` from the global component-major vector `u`.
#[inline]
fn gather_kin(
    u: &[f64],
    num_h1_dofs: usize,
    dofs: &[usize],
    d: usize,
    nkin: usize,
    out: &mut [f64],
) {
    for c in 0..d {
        let comp = &u[c * num_h1_dofs..(c + 1) * num_h1_dofs];
        let oc = &mut out[c * nkin..(c + 1) * nkin];
        for (m, o) in oc.iter_mut().enumerate() {
            *o = comp[dofs[m]];
        }
    }
}

/// Runs the `d²` forward gradient transforms of the gathered vector field
/// `uz`, scattering into the point-major `[k*d² + c + g*d]` batch `out`.
fn forward_gradients(
    f: &Factors1d,
    dim: usize,
    uz: &[f64],
    nkin: usize,
    npts: usize,
    tmp: &mut [f64],
    sf: &mut SumfacScratch,
    out: &mut [f64],
) {
    let d2 = dim * dim;
    for c in 0..dim {
        let comp = &uz[c * nkin..(c + 1) * nkin];
        for g in 0..dim {
            forward(f, dim, comp, Some(g), &mut tmp[..npts], sf);
            for (k, &t) in tmp[..npts].iter().enumerate() {
                out[k * d2 + c + g * dim] = t;
            }
        }
    }
}

/// Matrix-free corner-force kernel: one fused sweep replacing kernels
/// 1/2/3/5/6 *and* the `A_z` assembly of kernel 4. Per zone it gathers
/// `(x, v, e)`, sum-factorizes `J(q̂_k)` and `∇̂v̂(q̂_k)`, runs the
/// byte-identical per-point geometry/EOS/viscosity math of kernels 1–2,
/// and persists only `D_z(k) = α_k σ̂(k) adj(J)^T` (`d x d` per point) plus
/// `det J` and the per-point timestep control.
#[derive(Clone, Copy, Debug)]
pub struct SumfacForceKernel {
    /// Include the artificial-viscosity stress (off only in unit tests).
    pub use_viscosity: bool,
}

impl SumfacForceKernel {
    /// Kernel name in traces and the paper-style tables.
    pub const NAME: &'static str = "kernel_sumfac_force";

    /// Launch configuration: one block per zone, threads covering the
    /// quadrature points, the zone's factor/stage working set in shared
    /// memory (capped at the K20-class 48 KB — larger zones spill slices
    /// to L2, which the traffic model charges).
    pub fn config(&self, shape: &ProblemShape) -> LaunchConfig {
        let d2 = shape.dim * shape.dim;
        let want = (2 * shape.npts * d2 + 3 * shape.npts) * 8;
        LaunchConfig::new(
            shape.zones as u32,
            (shape.npts as u32).clamp(64, 512),
            (want as u32).min(40 * 1024),
            64,
        )
    }

    /// Modeled traffic. Matrix-free trades the stored path's `A_z` batch
    /// writes (`nvdof * npts` doubles per zone) for recomputed
    /// contractions: per-zone DRAM shrinks to the gathered state plus the
    /// `d²`-per-point outputs, while flops stay within a small factor —
    /// the flop/byte shift the roofline and power model see.
    pub fn traffic(&self, shape: &ProblemShape, f: &SumfacFactors) -> Traffic {
        let d = shape.dim as f64;
        let d2 = d * d;
        let z = shape.zones as f64;
        let npts = shape.npts as f64;
        let fk = f.kin.transform_flops(shape.dim);
        let ft = f.thermo.transform_flops(shape.dim);
        // d² gradient transforms each for x and v, one thermo value
        // transform for e.
        let contraction = 2.0 * d2 * fk + ft;
        // Kernel-1 geometry (adjugate/det/SVD), kernel-2 EOS + viscosity
        // (eigen-solve dominated), two d x d matmuls (spatial grad, S) and
        // the α_k scale.
        let per_pt = if shape.dim == 3 { 520.0 + 150.0 } else { 90.0 + 60.0 } + 4.0 * d2 * d + d2;
        let flops = z * (contraction + npts * per_pt);
        // Gathered x/v/e + rho0detj0 + zone constants in; Dsf + detj +
        // inv_dt out. Factor tables are tiny and L2-resident.
        let dram = z
            * ((2.0 * d * shape.nkin as f64 + shape.nthermo as f64) * 8.0
                + npts * 8.0
                + npts * (d2 + 2.0) * 8.0);
        // Stage traffic (jac/gvref batches + transform stages) cycles
        // through shared/L1 and partially spills to L2 at high order.
        let l2 = z * npts * (2.0 * d2 + 4.0) * 8.0;
        let shared = z * npts * (2.0 * d2 + 6.0) * 8.0;
        Traffic { flops, dram_bytes: dram, l2_bytes: l2, shared_bytes: shared, ..Default::default() }
    }

    /// Pure computation. `x`/`v` are component-major global H1 vectors,
    /// `e` the zone-major L2 coefficients; `alpha` the `npts` quadrature
    /// weights; `rho0detj0` the frozen per-point mass factor. Outputs:
    /// `dsf` (`d x d` per point — the persisted `α_k σ̂ adj(J)^T`), `detj`
    /// and `inv_dt` per point.
    #[allow(clippy::too_many_arguments)]
    pub fn compute(
        &self,
        shape: &ProblemShape,
        factors: &SumfacFactors,
        x: &[f64],
        v: &[f64],
        e: &[f64],
        num_h1_dofs: usize,
        zone_dofs: &[usize],
        alpha: &[f64],
        rho0detj0: &[f64],
        consts: &ZoneConstants,
        dsf: &mut BatchedMats,
        detj: &mut [f64],
        inv_dt: &mut [f64],
    ) {
        let d = shape.dim;
        let d2 = d * d;
        let npts = shape.npts;
        let nkin = shape.nkin;
        let nthermo = shape.nthermo;
        let total = shape.total_points();
        assert_eq!(x.len(), d * num_h1_dofs);
        assert_eq!(v.len(), d * num_h1_dofs);
        assert_eq!(e.len(), shape.zones * nthermo);
        assert_eq!(zone_dofs.len(), shape.zones * nkin);
        assert_eq!(alpha.len(), npts);
        assert_eq!(rho0detj0.len(), total);
        assert_eq!(dsf.shape(), (d, d));
        assert_eq!(dsf.count(), total);
        assert_eq!(detj.len(), total);
        assert_eq!(inv_dt.len(), total);

        let use_visc = self.use_viscosity;
        let order = shape.order as f64;
        dsf.as_mut_slice()
            .par_chunks_exact_mut(npts * d2)
            .zip(detj.par_chunks_exact_mut(npts))
            .zip(inv_dt.par_chunks_exact_mut(npts))
            .enumerate()
            .for_each(|(z, ((dsf_z, detj_z), invdt_z))| {
                TLS_ZS.with(|zs| {
                    let zs = &mut *zs.borrow_mut();
                    grow(&mut zs.uz, d * nkin);
                    grow(&mut zs.tmp, npts);
                    grow(&mut zs.jac, npts * d2);
                    grow(&mut zs.gvref, npts * d2);
                    grow(&mut zs.e_pt, npts);
                    let dofs = &zone_dofs[z * nkin..(z + 1) * nkin];

                    // Sum-factorized reference Jacobian J[c,g] = ∂x_c/∂x̂_g.
                    gather_kin(x, num_h1_dofs, dofs, d, nkin, &mut zs.uz);
                    forward_gradients(
                        &factors.kin, d, &zs.uz, nkin, npts, &mut zs.tmp, &mut zs.sf,
                        &mut zs.jac,
                    );
                    // Sum-factorized reference velocity gradient.
                    gather_kin(v, num_h1_dofs, dofs, d, nkin, &mut zs.uz);
                    forward_gradients(
                        &factors.kin, d, &zs.uz, nkin, npts, &mut zs.tmp, &mut zs.sf,
                        &mut zs.gvref,
                    );
                    // Sum-factorized energy interpolation.
                    let ez = &e[z * nthermo..(z + 1) * nthermo];
                    forward(&factors.thermo, d, ez, None, &mut zs.e_pt[..npts], &mut zs.sf);

                    let gamma = consts.gamma[z];
                    let h0 = consts.h0[z];
                    let j0inv = &consts.j0inv_diag[z * d..(z + 1) * d];
                    let mut adj = [0.0; 9];
                    let mut gv = [0.0; 9];
                    let mut sig = [0.0; 9];
                    let mut s = [0.0; 9];
                    for k in 0..npts {
                        let p = z * npts + k;
                        let jac_k = &zs.jac[k * d2..(k + 1) * d2];
                        // Kernel-1 math, verbatim: adjugate, det, SVD
                        // length scale.
                        let (det, hmin) = if d == 2 {
                            let j = SmallMat::<2>::from_col_slice(jac_k);
                            j.adjugate().write_col_slice(&mut adj[..d2]);
                            (j.det(), svd2(&j).min_singular())
                        } else {
                            let j = SmallMat::<3>::from_col_slice(jac_k);
                            j.adjugate().write_col_slice(&mut adj[..d2]);
                            (j.det(), svd3(&j).min_singular())
                        };
                        detj_z[k] = det;
                        let inv_det = 1.0 / det;
                        // Kernel-5 equivalent: spatial velocity gradient
                        // ∇v = ∇̂v̂ · adj(J) / det(J).
                        for g in 0..d {
                            for c in 0..d {
                                let mut acc = 0.0;
                                for t in 0..d {
                                    acc += zs.gvref[k * d2 + c + t * d] * adj[t + g * d];
                                }
                                gv[c + g * d] = acc * inv_det;
                            }
                        }
                        // Kernel-2 EOS, verbatim.
                        let e_val = zs.e_pt[k].max(0.0);
                        let rho = rho0detj0[p] / det;
                        let p_eos = (gamma - 1.0) * rho * e_val;
                        let cs = (gamma * (gamma - 1.0) * e_val).sqrt();
                        if d == 2 {
                            stress_at_point::<2>(
                                use_visc, gamma, h0, j0inv, rho, p_eos, cs, &gv[..d2], jac_k,
                                hmin, order, &mut sig[..d2], &mut invdt_z[k],
                            );
                        } else {
                            stress_at_point::<3>(
                                use_visc, gamma, h0, j0inv, rho, p_eos, cs, &gv[..d2], jac_k,
                                hmin, order, &mut sig[..d2], &mut invdt_z[k],
                            );
                        }
                        // Kernel-6 equivalent (S = σ̂ adj^T) fused with the
                        // kernel-4 quadrature weight: D = α_k S.
                        let ak = alpha[k];
                        for g in 0..d {
                            for c in 0..d {
                                let mut acc = 0.0;
                                for t in 0..d {
                                    acc += sig[c + t * d] * adj[g + t * d];
                                }
                                s[c + g * d] = acc;
                            }
                        }
                        for i in 0..d2 {
                            dsf_z[k * d2 + i] = ak * s[i];
                        }
                    }
                });
            });
    }

    /// Launches the kernel on the simulated device.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        dev: &GpuDevice,
        shape: &ProblemShape,
        factors: &SumfacFactors,
        x: &[f64],
        v: &[f64],
        e: &[f64],
        num_h1_dofs: usize,
        zone_dofs: &[usize],
        alpha: &[f64],
        rho0detj0: &[f64],
        consts: &ZoneConstants,
        dsf: &mut BatchedMats,
        detj: &mut [f64],
        inv_dt: &mut [f64],
    ) -> Result<KernelStats, GpuError> {
        let cfg = self.config(shape);
        let traffic = self.traffic(shape, factors);
        let (_, stats) = dev.launch(Self::NAME, &cfg, &traffic, || {
            self.compute(
                shape, factors, x, v, e, num_h1_dofs, zone_dofs, alpha, rho0detj0, consts, dsf,
                detj, inv_dt,
            );
        })?;
        Ok(stats)
    }
}

/// Matrix-free momentum right-hand side: `rhs -= A_z (B^T·1)` applied as
/// `d²` backward gradient transforms of `D_z(k) t(k)` per zone — the
/// kernel-8 replacement with no `F_z` batch.
#[derive(Clone, Copy, Debug, Default)]
pub struct SumfacMomentumKernel;

impl SumfacMomentumKernel {
    /// Kernel name in traces and the paper-style tables.
    pub const NAME: &'static str = "kernel_sumfac_momentum";

    /// Launch configuration (one block per zone, kernel-8 style).
    pub fn config(&self, shape: &ProblemShape) -> LaunchConfig {
        LaunchConfig::new(
            shape.zones as u32,
            (shape.nvdof() as u32).clamp(64, 512),
            ((shape.nvdof() * 8) as u32).min(40 * 1024),
            32,
        )
    }

    /// Modeled traffic: reads the `d²`-per-point `D` batch, writes the
    /// accumulated H1 vector.
    pub fn traffic(&self, shape: &ProblemShape, f: &SumfacFactors) -> Traffic {
        let d = shape.dim as f64;
        let z = shape.zones as f64;
        let npts = shape.npts as f64;
        let fk = f.kin.transform_flops(shape.dim);
        let flops = z * (d * d * (fk + 2.0 * npts) + 2.0 * shape.nvdof() as f64);
        let dram = z * (npts * d * d * 8.0 + shape.nvdof() as f64 * 2.0 * 8.0);
        let l2 = z * npts * d * d * 8.0;
        Traffic { flops, dram_bytes: dram, l2_bytes: l2, ..Default::default() }
    }

    /// Pure computation. `rhs` (component-major, `d * num_h1_dofs`) is
    /// *accumulated* (`-=`), matching the stored kernel-8 contract; the
    /// gather/scatter uses zone-private staging in `local`
    /// (`zones * nvdof`, grow-only) and a serial zone-order scatter for
    /// bitwise determinism at any thread count.
    #[allow(clippy::too_many_arguments)]
    pub fn compute_with(
        &self,
        shape: &ProblemShape,
        factors: &SumfacFactors,
        dsf: &BatchedMats,
        zone_dofs: &[usize],
        num_h1_dofs: usize,
        rhs: &mut [f64],
        local: &mut Vec<f64>,
    ) {
        let d = shape.dim;
        let d2 = d * d;
        let npts = shape.npts;
        let nkin = shape.nkin;
        let nvdof = shape.nvdof();
        assert_eq!(dsf.count(), shape.total_points());
        assert_eq!(rhs.len(), d * num_h1_dofs);
        assert_eq!(zone_dofs.len(), shape.zones * nkin);

        let staged = shape.zones * nvdof;
        if local.len() < staged {
            local.resize(staged, 0.0);
        }
        let local = &mut local[..staged];
        let dsf_all = dsf.as_slice();
        let tvals = &factors.tvals;
        local.par_chunks_exact_mut(nvdof).enumerate().for_each(|(z, loc)| {
            TLS_ZS.with(|zs| {
                let zs = &mut *zs.borrow_mut();
                grow(&mut zs.q, npts);
                let dsf_z = &dsf_all[z * npts * d2..(z + 1) * npts * d2];
                for c in 0..d {
                    let out = &mut loc[c * nkin..(c + 1) * nkin];
                    for g in 0..d {
                        // w(k) = D[c,g](k) t(k); Σ_g accumulates via beta.
                        for (k, q) in zs.q[..npts].iter_mut().enumerate() {
                            *q = dsf_z[k * d2 + c + g * d] * tvals[k];
                        }
                        let beta = if g == 0 { 0.0 } else { 1.0 };
                        backward(&factors.kin, d, &zs.q[..npts], Some(g), beta, out, &mut zs.sf);
                    }
                }
            });
        });
        // Serial zone-order scatter (shared H1 DOFs) — the determinism
        // contract of the stored kernel 8.
        for z in 0..shape.zones {
            let loc = &local[z * nvdof..(z + 1) * nvdof];
            let dofs = &zone_dofs[z * nkin..(z + 1) * nkin];
            for c in 0..d {
                for (m, &dof) in dofs.iter().enumerate() {
                    rhs[c * num_h1_dofs + dof] -= loc[c * nkin + m];
                }
            }
        }
    }
}

/// Matrix-free energy right-hand side: `rhs_e_z = F_z^T v_z` applied as
/// `d²` forward gradient transforms of `v`, a pointwise contraction with
/// `D_z`, and one backward thermo value transform — the kernel-10
/// replacement with no `F_z` batch. L2 DOFs are zone-local, so the write
/// is conflict-free and fully parallel.
#[derive(Clone, Copy, Debug, Default)]
pub struct SumfacEnergyKernel;

impl SumfacEnergyKernel {
    /// Kernel name in traces and the paper-style tables.
    pub const NAME: &'static str = "kernel_sumfac_energy";

    /// Launch configuration (one block per zone, kernel-10 style).
    pub fn config(&self, shape: &ProblemShape) -> LaunchConfig {
        LaunchConfig::new(
            shape.zones as u32,
            (shape.npts as u32).clamp(64, 512),
            ((shape.npts * 2 * 8) as u32).min(40 * 1024),
            32,
        )
    }

    /// Modeled traffic.
    pub fn traffic(&self, shape: &ProblemShape, f: &SumfacFactors) -> Traffic {
        let d = shape.dim as f64;
        let z = shape.zones as f64;
        let npts = shape.npts as f64;
        let fk = f.kin.transform_flops(shape.dim);
        let ft = f.thermo.transform_flops(shape.dim);
        let flops = z * (d * d * (fk + 2.0 * npts) + ft);
        let dram = z
            * (npts * d * d * 8.0
                + d * shape.nkin as f64 * 8.0
                + shape.nthermo as f64 * 8.0);
        let l2 = z * npts * d * d * 8.0;
        Traffic { flops, dram_bytes: dram, l2_bytes: l2, ..Default::default() }
    }

    /// Pure computation: `rhs_e` (`zones * nthermo`, zone-major) is
    /// *assigned*, matching the stored kernel-10 contract.
    #[allow(clippy::too_many_arguments)]
    pub fn compute(
        &self,
        shape: &ProblemShape,
        factors: &SumfacFactors,
        dsf: &BatchedMats,
        v: &[f64],
        zone_dofs: &[usize],
        num_h1_dofs: usize,
        rhs_e: &mut [f64],
    ) {
        let d = shape.dim;
        let d2 = d * d;
        let npts = shape.npts;
        let nkin = shape.nkin;
        let nthermo = shape.nthermo;
        assert_eq!(dsf.count(), shape.total_points());
        assert_eq!(v.len(), d * num_h1_dofs);
        assert_eq!(rhs_e.len(), shape.zones * nthermo);

        let dsf_all = dsf.as_slice();
        rhs_e.par_chunks_exact_mut(nthermo).enumerate().for_each(|(z, out)| {
            TLS_ZS.with(|zs| {
                let zs = &mut *zs.borrow_mut();
                grow(&mut zs.uz, d * nkin);
                grow(&mut zs.tmp, npts);
                grow(&mut zs.q, npts);
                let dofs = &zone_dofs[z * nkin..(z + 1) * nkin];
                gather_kin(v, num_h1_dofs, dofs, d, nkin, &mut zs.uz);
                let dsf_z = &dsf_all[z * npts * d2..(z + 1) * npts * d2];
                zs.q[..npts].fill(0.0);
                for c in 0..d {
                    let comp = &zs.uz[c * nkin..(c + 1) * nkin];
                    for g in 0..d {
                        forward(&factors.kin, d, comp, Some(g), &mut zs.tmp[..npts], &mut zs.sf);
                        for (k, q) in zs.q[..npts].iter_mut().enumerate() {
                            *q += dsf_z[k * d2 + c + g * d] * zs.tmp[k];
                        }
                    }
                }
                backward(&factors.thermo, d, &zs.q[..npts], None, 0.0, out, &mut zs.sf);
            });
        });
    }
}

/// Matrix-free kinematic mass application: `y_z = B^T Λ_z B x_z` with
/// `Λ_z = diag(α_k w(q̂_k))` — two sum-factorized value transforms around a
/// pointwise scale, replacing the CSR SpMV of the momentum PCG entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct SumfacMassKernel;

impl SumfacMassKernel {
    /// Kernel name in traces and the paper-style tables.
    pub const NAME: &'static str = "kernel_sumfac_mass_apply";

    /// Launch configuration (one block per zone).
    pub fn config(&self, shape: &ProblemShape) -> LaunchConfig {
        LaunchConfig::new(
            shape.zones as u32,
            (shape.npts as u32).clamp(64, 512),
            (((shape.npts + shape.nkin) * 8) as u32).min(40 * 1024),
            32,
        )
    }

    /// Modeled traffic for one scalar-component apply. Contrast with the
    /// CSR SpMV: `nnz ~ num_h1_dofs * nkin_stencil` matrix bytes per sweep
    /// vs. the `npts` scale factors here — the arithmetic-intensity jump
    /// of the SpMV-free PCG.
    pub fn traffic(&self, shape: &ProblemShape, f: &SumfacFactors, num_h1_dofs: usize) -> Traffic {
        let z = shape.zones as f64;
        let npts = shape.npts as f64;
        let fk = f.kin.transform_flops(shape.dim);
        let flops = z * (2.0 * fk + npts);
        let dram = z * (npts * 8.0 + 2.0 * shape.nkin as f64 * 8.0) + num_h1_dofs as f64 * 8.0;
        let l2 = z * npts * 8.0;
        Traffic { flops, dram_bytes: dram, l2_bytes: l2, ..Default::default() }
    }

    /// Pure computation for one scalar component: `y = M_V x` with
    /// `svals[p] = α_{p mod npts} w(p)` the precomputed per-point mass
    /// factor. `y` is fully overwritten; gather/scatter mirror the
    /// momentum kernel (zone staging in `local`, serial scatter).
    #[allow(clippy::too_many_arguments)]
    pub fn compute_with(
        &self,
        shape: &ProblemShape,
        factors: &SumfacFactors,
        svals: &[f64],
        zone_dofs: &[usize],
        num_h1_dofs: usize,
        x: &[f64],
        y: &mut [f64],
        local: &mut Vec<f64>,
    ) {
        let d = shape.dim;
        let npts = shape.npts;
        let nkin = shape.nkin;
        assert_eq!(svals.len(), shape.total_points());
        assert_eq!(x.len(), num_h1_dofs);
        assert_eq!(y.len(), num_h1_dofs);
        assert_eq!(zone_dofs.len(), shape.zones * nkin);

        let staged = shape.zones * nkin;
        if local.len() < staged {
            local.resize(staged, 0.0);
        }
        let local = &mut local[..staged];
        local.par_chunks_exact_mut(nkin).enumerate().for_each(|(z, loc)| {
            TLS_ZS.with(|zs| {
                let zs = &mut *zs.borrow_mut();
                grow(&mut zs.uz, nkin.max(d * nkin));
                grow(&mut zs.q, npts);
                let dofs = &zone_dofs[z * nkin..(z + 1) * nkin];
                for (m, u) in zs.uz[..nkin].iter_mut().enumerate() {
                    *u = x[dofs[m]];
                }
                forward(&factors.kin, d, &zs.uz[..nkin], None, &mut zs.q[..npts], &mut zs.sf);
                let sz = &svals[z * npts..(z + 1) * npts];
                for (q, &s) in zs.q[..npts].iter_mut().zip(sz) {
                    *q *= s;
                }
                backward(&factors.kin, d, &zs.q[..npts], None, 0.0, loc, &mut zs.sf);
            });
        });
        y.fill(0.0);
        for z in 0..shape.zones {
            let loc = &local[z * nkin..(z + 1) * nkin];
            let dofs = &zone_dofs[z * nkin..(z + 1) * nkin];
            for (m, &dof) in dofs.iter().enumerate() {
                y[dof] += loc[m];
            }
        }
    }

    /// The Jacobi-preconditioner diagonal of the matrix-free mass
    /// operator, reproducing the stored CSR assembly's accumulation order
    /// exactly (`fem::mass`: quadrature-point outer loop, zero-weight and
    /// zero-basis skips, zone-order serial scatter) — bitwise equal to the
    /// CSR matrix diagonal.
    pub fn diagonal(
        &self,
        shape: &ProblemShape,
        factors: &SumfacFactors,
        svals: &[f64],
        zone_dofs: &[usize],
        num_h1_dofs: usize,
    ) -> Vec<f64> {
        let npts = shape.npts;
        let nkin = shape.nkin;
        let m1 = factors.kin.m1;
        let n1 = factors.kin.n1;
        let b = &factors.kin.b;
        let mut diag = vec![0.0; num_h1_dofs];
        let mut bvals = vec![0.0; nkin];
        for z in 0..shape.zones {
            let dofs = &zone_dofs[z * nkin..(z + 1) * nkin];
            for k in 0..npts {
                let s = svals[z * npts + k];
                if s == 0.0 {
                    continue;
                }
                // ŵ_j(q̂_k) from the 1D factors (tensor product, axis 0
                // fastest — identical values to the tabulated table).
                for (j, bv) in bvals.iter_mut().enumerate() {
                    let mut rem_j = j;
                    let mut rem_k = k;
                    let mut v = 1.0;
                    for _ in 0..shape.dim {
                        v *= b[(rem_k % m1) + (rem_j % n1) * m1];
                        rem_j /= n1;
                        rem_k /= m1;
                    }
                    *bv = v;
                }
                for (j, &bj) in bvals.iter().enumerate() {
                    if bj == 0.0 {
                        continue;
                    }
                    diag[dofs[j]] += (s * bj) * bj;
                }
            }
        }
        diag
    }
}

/// Modeled resident bytes of the *stored* assembly's operator data: the
/// per-point small-matrix batches, a chunked `A_z` buffer (the `F_z`
/// kernel consumes it 512 zones at a time), the full `F_z` batch,
/// double-buffered state vectors and the estimated CSR kinematic mass
/// matrix (FEM sparsity `(2k+1)^D` per row). Mirrors the solver's device
/// footprint so builder pre-checks, the autotuner and the bench report all
/// agree on the same number.
pub fn stored_resident_bytes(shape: &ProblemShape, num_h1_dofs: usize, num_l2_dofs: usize) -> usize {
    let total = shape.total_points();
    let d2 = shape.dim * shape.dim;
    let per_point = 6 * d2 * 8 + 4 * 8;
    let az_chunk = shape.zones.min(512) * shape.nvdof() * shape.npts * 8;
    let fz = shape.zones * shape.nvdof() * shape.nthermo * 8;
    let state = (2 * shape.dim * num_h1_dofs + num_l2_dofs) * 8 * 2;
    let nnz_est = num_h1_dofs * (2 * shape.order + 1).pow(shape.dim as u32);
    let mv_bytes = nnz_est * 12 + (num_h1_dofs + 1) * 8;
    total * per_point + az_chunk + fz + state + mv_bytes
}

/// Modeled resident bytes of the *matrix-free* path: only `d x d`
/// quadrature-point data (`D_z`, `det J`, `1/dt`, the mass scale factors),
/// the zone staging rows of the serial-scatter kernels, double-buffered
/// state, the Jacobi diagonal and the (tiny) 1D factor tables. No `A_z`,
/// no `F_z`, no CSR matrix — this is what breaks the §4.1 memory ceiling.
pub fn matfree_resident_bytes(
    shape: &ProblemShape,
    num_h1_dofs: usize,
    num_l2_dofs: usize,
) -> usize {
    let total = shape.total_points();
    let d2 = shape.dim * shape.dim;
    // dsf (d² per point) + detj + inv_dt + rho0detj0 + svals.
    let point_data = total * (d2 + 4) * 8;
    let staging = shape.zones * shape.nvdof() * 8;
    let state = (2 * shape.dim * num_h1_dofs + num_l2_dofs) * 8 * 2;
    let precond = num_h1_dofs * 8;
    let m1 = quad_points_1d(shape.order);
    let factors = 2 * (2 * m1 * (shape.order + 1) + m1) * 8 + shape.npts * 8;
    point_data + staging + state + precond + factors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembly_mode_display_and_default() {
        assert_eq!(AssemblyMode::default(), AssemblyMode::Stored);
        assert_eq!(AssemblyMode::Stored.to_string(), "stored");
        assert_eq!(AssemblyMode::MatrixFree.to_string(), "matrix-free");
        assert!(AssemblyMode::MatrixFree.is_matrix_free());
        assert!(!AssemblyMode::Stored.is_matrix_free());
    }

    #[test]
    fn factors_match_shape() {
        for (dim, order) in [(2, 2), (2, 3), (3, 2), (3, 4)] {
            let shape = ProblemShape::new(dim, order, 4);
            let f = SumfacFactors::for_shape(&shape);
            assert_eq!(f.kin.ndof(dim), shape.nkin);
            assert_eq!(f.thermo.ndof(dim), shape.nthermo);
            assert_eq!(f.tvals.len(), shape.npts);
            // L2 Lagrange basis is a partition of unity: B^T·1 = 1.
            for &t in &f.tvals {
                assert!((t - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matfree_traffic_shifts_the_roofline() {
        let shape = ProblemShape::new(3, 4, 256);
        let f = SumfacFactors::for_shape(&shape);
        let force = SumfacForceKernel { use_viscosity: true };
        let t = force
            .traffic(&shape, &f)
            .add(&SumfacMomentumKernel.traffic(&shape, &f))
            .add(&SumfacEnergyKernel.traffic(&shape, &f));
        // The stored phase pays the A_z batch write (k4) and re-read (k7)
        // through DRAM, and its flops are dominated by the dense
        // nvdof x npts x nthermo contraction of k7.
        let stored = crate::base::MonolithicCornerForce
            .optimized_equivalent_traffic(&shape)
            .add(&crate::k7::FzKernel::tuned().traffic(&shape))
            .add(&crate::k8_10::MomentumRhsKernel.traffic(&shape))
            .add(&crate::k8_10::EnergyRhsKernel.traffic(&shape));
        // Sum factorization does the same physics in an order of magnitude
        // fewer flops AND an order of magnitude fewer DRAM bytes at Q4.
        assert!(t.flops * 10.0 < stored.flops, "{} vs {}", t.flops, stored.flops);
        assert!(
            t.dram_bytes * 10.0 < stored.dram_bytes,
            "{} vs {}",
            t.dram_bytes,
            stored.dram_bytes
        );
        // And the per-zone resident bytes collapse: no nvdof x npts batch.
        let stored_batch = shape.zones * shape.nvdof() * shape.npts * 8;
        let matfree_batch = shape.total_points() * (shape.dim * shape.dim + 2) * 8;
        assert!(matfree_batch * 10 < stored_batch);
    }

    #[test]
    fn mass_apply_beats_spmv_arithmetic_intensity() {
        // The SpMV-free PCG apply is where the flop/byte shift is starkest:
        // a CSR SpMV moves ~12 bytes per 2 flops (value + column index per
        // nonzero), while the sum-factorized apply re-derives the operator
        // from O(npts) scale factors per zone.
        let shape = ProblemShape::new(3, 4, 256);
        let f = SumfacFactors::for_shape(&shape);
        let num_h1_dofs = shape.zones * shape.nkin; // upper bound, no sharing
        let t = SumfacMassKernel.traffic(&shape, &f, num_h1_dofs);
        let ai_matfree = t.flops / t.dram_bytes;
        let nnz = num_h1_dofs as f64 * shape.nkin as f64;
        let ai_spmv = 2.0 * nnz / (nnz * 12.0 + 2.0 * num_h1_dofs as f64 * 8.0);
        assert!(
            ai_matfree > 4.0 * ai_spmv,
            "matfree {ai_matfree} should dwarf spmv {ai_spmv}"
        );
    }

    #[test]
    fn mass_apply_is_symmetric_and_deterministic() {
        let shape = ProblemShape::new(2, 3, 4);
        let f = SumfacFactors::for_shape(&shape);
        // Fake connectivity: zone-private DOFs (no sharing) keeps the
        // symmetry argument exact without a mesh.
        let num_h1_dofs = shape.zones * shape.nkin;
        let zone_dofs: Vec<usize> = (0..num_h1_dofs).collect();
        let svals: Vec<f64> =
            (0..shape.total_points()).map(|p| 0.5 + (p as f64 * 0.17).sin().abs()).collect();
        let kern = SumfacMassKernel;
        let xa: Vec<f64> = (0..num_h1_dofs).map(|i| (i as f64 * 0.31).cos()).collect();
        let xb: Vec<f64> = (0..num_h1_dofs).map(|i| (i as f64 * 0.11).sin()).collect();
        let mut ya = vec![0.0; num_h1_dofs];
        let mut yb = vec![0.0; num_h1_dofs];
        let mut local = Vec::new();
        kern.compute_with(&shape, &f, &svals, &zone_dofs, num_h1_dofs, &xa, &mut ya, &mut local);
        kern.compute_with(&shape, &f, &svals, &zone_dofs, num_h1_dofs, &xb, &mut yb, &mut local);
        let lhs: f64 = xb.iter().zip(&ya).map(|(a, b)| a * b).sum();
        let rhs: f64 = xa.iter().zip(&yb).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() <= 1e-12 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
        // Determinism: a second run is bitwise identical.
        let mut ya2 = vec![0.0; num_h1_dofs];
        kern.compute_with(&shape, &f, &svals, &zone_dofs, num_h1_dofs, &xa, &mut ya2, &mut local);
        assert_eq!(ya, ya2);
        // Positive definiteness on a positive weight field.
        assert!(lhs.abs() > 0.0);
        let xtax: f64 = xa.iter().zip(&ya).map(|(a, b)| a * b).sum();
        assert!(xtax > 0.0);
    }

    #[test]
    fn resident_bytes_break_the_q4_ceiling() {
        // Paper §4.1: Q4-Q3 3D tops out at 16³ zones on the 5 GB K20.
        // Stored must exceed the budget one refinement up (32³, and
        // already at 24³); matrix-free must fit at both.
        let cap = 5usize * 1024 * 1024 * 1024;
        let fit = |za: usize| {
            let shape = ProblemShape::new(3, 4, za.pow(3));
            let n_h1 = (4 * za + 1).pow(3);
            let n_l2 = shape.zones * shape.nthermo;
            (
                stored_resident_bytes(&shape, n_h1, n_l2),
                matfree_resident_bytes(&shape, n_h1, n_l2),
            )
        };
        let (s16, m16) = fit(16);
        assert!(s16 <= cap, "stored 16^3 fits ({s16} B)");
        assert!(m16 <= cap);
        for za in [24, 32] {
            let (stored, matfree) = fit(za);
            assert!(stored > cap, "stored {za}^3 should exceed 5 GB, got {stored} B");
            assert!(matfree <= cap, "matfree {za}^3 should fit, got {matfree} B");
            assert!(matfree * 2 < stored, "resident collapse at {za}^3");
        }
    }

    #[test]
    fn mass_diagonal_matches_quadratic_form() {
        let shape = ProblemShape::new(2, 2, 3);
        let f = SumfacFactors::for_shape(&shape);
        let num_h1_dofs = shape.zones * shape.nkin;
        let zone_dofs: Vec<usize> = (0..num_h1_dofs).collect();
        let svals: Vec<f64> =
            (0..shape.total_points()).map(|p| 1.0 + 0.1 * (p as f64).sin()).collect();
        let kern = SumfacMassKernel;
        let diag = kern.diagonal(&shape, &f, &svals, &zone_dofs, num_h1_dofs);
        // diag[i] must equal e_i^T M e_i.
        let mut local = Vec::new();
        for i in [0usize, 3, num_h1_dofs - 1] {
            let mut e = vec![0.0; num_h1_dofs];
            e[i] = 1.0;
            let mut y = vec![0.0; num_h1_dofs];
            kern.compute_with(&shape, &f, &svals, &zone_dofs, num_h1_dofs, &e, &mut y, &mut local);
            assert!((diag[i] - y[i]).abs() <= 1e-13 * diag[i].abs().max(1.0));
        }
    }
}
