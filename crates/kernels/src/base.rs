//! The base implementation — `kernel_loop_quadrature_point`.
//!
//! "The right of Figure 6 shows our base CUDA implementation.
//! `kernel_loop_quadrature_point` is a kernel to unroll `A_z` which loops
//! over quadrature points. The kernel on Fermi is faster than a six core
//! Westmere X5660 CPU. Yet, it is still inefficient and dominated most of
//! the GPU time. We replaced it with six new designed kernels 1-6."
//!
//! This module is that monolithic kernel: one launch that does everything
//! kernels 1-6 (plus kernel 4) do — same math, same outputs — but with the
//! base implementation's cost structure: every intermediate (`J`, `adj J`,
//! `∇̂v̂`, `∇v`, `σ̂`, `S`) spills through local/global memory because the
//! fused kernel's workspace exceeds the register file, and the single fat
//! kernel runs at low occupancy.

use blast_la::{BatchedMats, DMatrix};
use gpu_sim::{GpuDevice, GpuError, KernelStats, LaunchConfig, Traffic};

use crate::k1::AdjugateDetKernel;
use crate::k2::{StressKernel, ZoneConstants};
use crate::k3::CoefGradKernel;
use crate::k4::AzKernel;
use crate::k56::{BatchedDimGemm, Transpose};
use crate::shapes::ProblemShape;
use crate::Workspace;

/// The monolithic base corner-force kernel.
#[derive(Clone, Copy, Debug, Default)]
pub struct MonolithicCornerForce;

/// Outputs of the `A_z` pipeline (shared by base and optimized paths).
#[derive(Clone, Debug)]
pub struct AzPipelineOut {
    /// `A_z` batch (`nvdof x npts` per zone).
    pub az: BatchedMats,
    /// Per-point `inv_dt` controls (max over points bounds the CFL step).
    pub inv_dt: Vec<f64>,
    /// Per-point `|J|` (needed by strong mass conservation checks).
    pub detj: Vec<f64>,
}

/// Reusable intermediates for [`compute_az_pipeline_into`]. All buffers
/// grow to the problem's high-water size on the first call and are then
/// reused, so steady-state corner-force evaluations perform no heap
/// allocation (asserted by `tests/zero_alloc_steady_state.rs`).
#[derive(Clone, Debug, Default)]
pub struct PipelineScratch {
    jac: BatchedMats,
    grad_v_ref: BatchedMats,
    adj: BatchedMats,
    grad_v: BatchedMats,
    sigma: BatchedMats,
    s: BatchedMats,
    hmin: Vec<f64>,
    inv_det: Vec<f64>,
    /// `A_z` batch (`nvdof x npts` per zone) — pipeline output.
    pub az: BatchedMats,
    /// Per-point `inv_dt` controls — pipeline output.
    pub inv_dt: Vec<f64>,
    /// Per-point `|J|` — pipeline output.
    pub detj: Vec<f64>,
}

impl PipelineScratch {
    /// Empty scratch; buffers are shaped on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Zero-fills `v` at length `n`, reusing its heap buffer when possible.
fn ensure_vec(v: &mut Vec<f64>, n: usize) {
    v.truncate(n);
    v.iter_mut().for_each(|x| *x = 0.0);
    v.resize(n, 0.0);
}

/// Executes the full `A_z` math (the composition of kernels 3, 1, 5, 2, 6,
/// 4) on the host buffers. Both the base kernel and the CPU reference call
/// this; the optimized GPU path launches the individual kernels instead,
/// producing bit-identical results.
#[allow(clippy::too_many_arguments)]
pub fn compute_az_pipeline(
    shape: &ProblemShape,
    x: &[f64],
    v: &[f64],
    e: &[f64],
    num_h1_dofs: usize,
    zone_dofs: &[usize],
    kin_grads: &[DMatrix],
    thermo_vals: &DMatrix,
    alpha: &[f64],
    rho0detj0: &[f64],
    consts: &ZoneConstants,
    use_viscosity: bool,
) -> AzPipelineOut {
    let mut ws = PipelineScratch::new();
    compute_az_pipeline_into(
        shape,
        x,
        v,
        e,
        num_h1_dofs,
        zone_dofs,
        kin_grads,
        thermo_vals,
        alpha,
        rho0detj0,
        consts,
        use_viscosity,
        &mut ws,
    );
    AzPipelineOut { az: ws.az, inv_dt: ws.inv_dt, detj: ws.detj }
}

/// Allocation-free variant of [`compute_az_pipeline`]: all intermediates
/// and outputs live in `ws` and are reused across timesteps. Outputs are
/// `ws.az`, `ws.inv_dt`, and `ws.detj`.
#[allow(clippy::too_many_arguments)]
pub fn compute_az_pipeline_into(
    shape: &ProblemShape,
    x: &[f64],
    v: &[f64],
    e: &[f64],
    num_h1_dofs: usize,
    zone_dofs: &[usize],
    kin_grads: &[DMatrix],
    thermo_vals: &DMatrix,
    alpha: &[f64],
    rho0detj0: &[f64],
    consts: &ZoneConstants,
    use_viscosity: bool,
    ws: &mut PipelineScratch,
) {
    let d = shape.dim;
    let total = shape.total_points();

    // Kernel 3 math: J and ∇̂v̂ at all points.
    ws.jac.ensure(d, d, total);
    CoefGradKernel::compute(shape, x, num_h1_dofs, zone_dofs, kin_grads, &mut ws.jac);
    ws.grad_v_ref.ensure(d, d, total);
    CoefGradKernel::compute(shape, v, num_h1_dofs, zone_dofs, kin_grads, &mut ws.grad_v_ref);

    // Kernel 1 math: adj(J), |J|, sigma_min(J).
    ws.adj.ensure(d, d, total);
    ensure_vec(&mut ws.detj, total);
    ensure_vec(&mut ws.hmin, total);
    AdjugateDetKernel::compute(shape, &ws.jac, &mut ws.adj, &mut ws.detj, &mut ws.hmin);

    // Kernel 5 math: spatial gradient ∇v = ∇̂v̂ adj(J) / |J|.
    ensure_vec(&mut ws.inv_det, total);
    for (inv, &dd) in ws.inv_det.iter_mut().zip(&ws.detj) {
        *inv = 1.0 / dd;
    }
    ws.grad_v.ensure(d, d, total);
    BatchedDimGemm { transpose: Transpose::NN, mats_per_block: 32 }.compute(
        &ws.grad_v_ref,
        &ws.adj,
        Some(&ws.inv_det),
        &mut ws.grad_v,
    );

    // Kernel 2 math: EOS + viscosity -> sigma, inv_dt.
    let stress = StressKernel { workspace: Workspace::Registers, use_viscosity };
    ws.sigma.ensure(d, d, total);
    ensure_vec(&mut ws.inv_dt, total);
    stress.compute(
        shape,
        e,
        thermo_vals,
        &ws.grad_v,
        &ws.jac,
        &ws.detj,
        &ws.hmin,
        rho0detj0,
        consts,
        &mut ws.sigma,
        &mut ws.inv_dt,
    );

    // Kernel 6 math: S = sigma adj(J)^T (= sigma |J| J^{-T}).
    ws.s.ensure(d, d, total);
    BatchedDimGemm { transpose: Transpose::NT, mats_per_block: 32 }.compute(
        &ws.sigma,
        &ws.adj,
        None,
        &mut ws.s,
    );

    // Kernel 4 math: A_z columns.
    ws.az.ensure(shape.nvdof(), shape.npts, shape.zones);
    AzKernel::compute(shape, &ws.s, kin_grads, alpha, &mut ws.az);
}

impl MonolithicCornerForce {
    /// Kernel name as in Fig. 6.
    pub const NAME: &'static str = "kernel_loop_quadrature_point";

    /// Launch configuration: the fused kernel is register-starved — the
    /// compiler caps it at the architectural limit and spills the rest.
    pub fn config(&self, shape: &ProblemShape, max_regs: u32) -> LaunchConfig {
        let grid = (shape.zones as u32).max(1);
        LaunchConfig::new(grid, 128, 0, max_regs.min(63))
    }

    /// Declared traffic: the sum of the useful work of kernels 1-6 plus
    /// every intermediate spilled to local memory and re-read.
    pub fn traffic(&self, shape: &ProblemShape) -> Traffic {
        let sum = self.optimized_equivalent_traffic(shape);
        let n = shape.total_points() as f64;
        let d2 = (shape.dim * shape.dim) as f64;
        // Six d x d intermediates per point, each round-tripping through
        // local memory dozens of times: the fused loop body's dependent
        // scalar chains exhaust the register file and serialize on spilled
        // loads. Calibrated to the paper's observation that the base kernel
        // is only marginally "faster than a six core Westmere X5660 CPU".
        let spill = n * 6.0 * d2 * 8.0 * 2.0 * 48.0;
        Traffic {
            flops: sum.flops,
            dram_bytes: sum.dram_bytes,
            l2_bytes: sum.l2_bytes,
            // No shared-memory staging in the base kernel.
            shared_bytes: 0.0,
            local_bytes: spill,
        }
    }

    /// Aggregate useful traffic of the replacement kernels 1-6 (+4), for
    /// apples-to-apples comparison.
    pub fn optimized_equivalent_traffic(&self, shape: &ProblemShape) -> Traffic {
        let k1 = AdjugateDetKernel { workspace: Workspace::Registers }.traffic(shape);
        let k2 = StressKernel { workspace: Workspace::Registers, use_viscosity: true }
            .traffic(shape);
        let k3 = CoefGradKernel::tuned().traffic(shape).scale(2.0); // J and ∇̂v̂
        let k4 = AzKernel::tuned().traffic(shape);
        let k5 = BatchedDimGemm::nn_tuned().traffic_for(shape);
        let k6 = BatchedDimGemm::nt_tuned().traffic_for(shape);
        k1.add(&k2).add(&k3).add(&k4).add(&k5).add(&k6)
    }

    /// Launches the fused kernel: same outputs as the optimized pipeline.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        dev: &GpuDevice,
        shape: &ProblemShape,
        x: &[f64],
        v: &[f64],
        e: &[f64],
        num_h1_dofs: usize,
        zone_dofs: &[usize],
        kin_grads: &[DMatrix],
        thermo_vals: &DMatrix,
        alpha: &[f64],
        rho0detj0: &[f64],
        consts: &ZoneConstants,
        use_viscosity: bool,
    ) -> Result<(AzPipelineOut, KernelStats), GpuError> {
        let cfg = self.config(shape, dev.spec().max_regs_per_thread);
        let traffic = self.traffic(shape);
        dev.launch(Self::NAME, &cfg, &traffic, || {
            compute_az_pipeline(
                shape, x, v, e, num_h1_dofs, zone_dofs, kin_grads, thermo_vals, alpha,
                rho0detj0, consts, use_viscosity,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceCatalog;
    

    #[test]
    fn base_traffic_strictly_dominates_optimized() {
        let m = MonolithicCornerForce;
        let shape = ProblemShape::new(3, 2, 512);
        let base = m.traffic(&shape);
        let opt = m.optimized_equivalent_traffic(&shape);
        assert_eq!(base.flops, opt.flops, "same math, same flops");
        assert!(base.total_dram_bytes() > 2.0 * opt.total_dram_bytes());
    }

    #[test]
    fn base_kernel_much_slower_than_kernel_sum() {
        // Fig. 6: replacing the monolith with kernels 1-6 shrinks its share
        // from 65% to 25% while total time drops ~60% => the replacement
        // runs several times faster than the monolith.
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let shape = ProblemShape::new(3, 2, 4096);
        let m = MonolithicCornerForce;
        let t_base = dev
            .model_kernel(&m.config(&shape, dev.spec().max_regs_per_thread), &m.traffic(&shape))
            .time_s;

        // Sum of the optimized kernels' modeled times.
        let mut t_opt = 0.0;
        let k1 = AdjugateDetKernel { workspace: Workspace::Registers };
        t_opt += dev.model_kernel(&k1.config(&shape), &k1.traffic(&shape)).time_s;
        let k2 = StressKernel { workspace: Workspace::Registers, use_viscosity: true };
        t_opt += dev.model_kernel(&k2.config(&shape), &k2.traffic(&shape)).time_s;
        let k3 = CoefGradKernel::tuned();
        t_opt += 2.0 * dev.model_kernel(&k3.config(&shape), &k3.traffic(&shape)).time_s;
        let k4 = AzKernel::tuned();
        t_opt += dev.model_kernel(&k4.config(&shape), &k4.traffic(&shape)).time_s;
        for k in [BatchedDimGemm::nn_tuned(), BatchedDimGemm::nt_tuned()] {
            t_opt += dev
                .model_kernel(
                    &k.config(shape.dim, shape.total_points()),
                    &k.traffic(shape.dim, shape.total_points()),
                )
                .time_s;
        }
        assert!(t_base > 2.5 * t_opt, "base {t_base} vs optimized sum {t_opt}");
    }

    #[test]
    fn optimized_phase_uses_less_power_and_energy_than_base() {
        // §5.2: the optimized code "not only runs faster, but also lowers
        // the power cost relative to the base implementation" — individual
        // optimized kernels can spike higher (they saturate the machine),
        // but the phase-average power and the total energy both drop,
        // because on-chip bytes cost ~50x less than the base kernel's
        // spilled DRAM bytes.
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let shape = ProblemShape::new(3, 2, 4096);
        let m = MonolithicCornerForce;
        let base = dev.model_kernel(&m.config(&shape, 255), &m.traffic(&shape));
        let (e_base, t_base) = (base.power_w * base.time_s, base.time_s);

        let mut e_opt = 0.0;
        let mut t_opt = 0.0;
        let mut add = |time_s: f64, power_w: f64| {
            e_opt += time_s * power_w;
            t_opt += time_s;
        };
        let k1 = AdjugateDetKernel { workspace: Workspace::Registers };
        let s = dev.model_kernel(&k1.config(&shape), &k1.traffic(&shape));
        add(s.time_s, s.power_w);
        let k2 = StressKernel { workspace: Workspace::Registers, use_viscosity: true };
        let s = dev.model_kernel(&k2.config(&shape), &k2.traffic(&shape));
        add(s.time_s, s.power_w);
        let k3 = CoefGradKernel::tuned();
        let s = dev.model_kernel(&k3.config(&shape), &k3.traffic(&shape));
        add(2.0 * s.time_s, s.power_w);
        let k4 = AzKernel::tuned();
        let s = dev.model_kernel(&k4.config(&shape), &k4.traffic(&shape));
        add(s.time_s, s.power_w);
        for k in [BatchedDimGemm::nn_tuned(), BatchedDimGemm::nt_tuned()] {
            let s = dev.model_kernel(
                &k.config(shape.dim, shape.total_points()),
                &k.traffic(shape.dim, shape.total_points()),
            );
            add(s.time_s, s.power_w);
        }

        let p_base = e_base / t_base;
        let p_opt = e_opt / t_opt;
        assert!(p_opt < p_base, "phase power: opt {p_opt} W vs base {p_base} W");
        // "10% less power required": the model lands in the 5-30% band.
        let saving = 1.0 - p_opt / p_base;
        assert!(saving > 0.05 && saving < 0.35, "power saving {saving}");
        // Energy drops much more than power (time shrinks too).
        assert!(e_opt < 0.5 * e_base, "energy: opt {e_opt} J vs base {e_base} J");
    }

    #[test]
    fn pipeline_runs_end_to_end_on_synthetic_zone() {
        // Smoke test of the full A_z math on the 2-zone synthetic setup.
        let shape = ProblemShape::new(2, 1, 2);
        let zone_dofs = vec![0usize, 1, 3, 4, 1, 2, 4, 5];
        let ndofs = 6;
        let g = 0.5 - 1.0 / (2.0 * 3.0_f64.sqrt());
        let pts = [[g, g], [1.0 - g, g], [g, 1.0 - g], [1.0 - g, 1.0 - g]];
        let mut gx = DMatrix::zeros(4, 4);
        let mut gy = DMatrix::zeros(4, 4);
        for (k, p) in pts.iter().enumerate() {
            let (xx, yy) = (p[0], p[1]);
            gx[(0, k)] = -(1.0 - yy);
            gx[(1, k)] = 1.0 - yy;
            gx[(2, k)] = -yy;
            gx[(3, k)] = yy;
            gy[(0, k)] = -(1.0 - xx);
            gy[(1, k)] = -xx;
            gy[(2, k)] = 1.0 - xx;
            gy[(3, k)] = xx;
        }
        let xs = [0.0, 1.0, 2.0, 0.0, 1.0, 2.0];
        let ys = [0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let mut x = vec![0.0; 12];
        x[..6].copy_from_slice(&xs);
        x[6..].copy_from_slice(&ys);
        let v = vec![0.0; 12];
        let e = vec![1.0; 2 * shape.nthermo];
        let thermo_vals = DMatrix::from_fn(shape.nthermo, shape.npts, |_, _| 1.0);
        let alpha = vec![0.25; shape.npts];
        let rho0detj0 = vec![1.0; shape.total_points()];
        let consts = ZoneConstants {
            gamma: vec![1.4; 2],
            h0: vec![1.0; 2],
            j0inv_diag: vec![1.0; 4],
        };
        let out = compute_az_pipeline(
            &shape, &x, &v, &e, ndofs, &zone_dofs, &[gx, gy], &thermo_vals, &alpha,
            &rho0detj0, &consts, true,
        );
        // Static gas on a unit mesh: |J| = 1 everywhere; Az finite, nonzero.
        assert!(out.detj.iter().all(|&d| (d - 1.0).abs() < 1e-12));
        assert!(out.az.as_slice().iter().any(|&a| a != 0.0));
        assert!(out.inv_dt.iter().all(|&i| i.is_finite()));
    }
}
