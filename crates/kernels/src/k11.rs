//! Kernel 11 — CSR SpMV (`csrMv_ci_kernel`, the CUSPARSE routine's name).
//!
//! Applies the precomputed block-diagonal inverse `M_E^{-1}` once per time
//! step, and serves as the inner operator of the CUDA-PCG solver (kernel 9),
//! where it is "the biggest component" — which is why its share of total
//! GPU time *grows* from 30% to 65% when everything else gets optimized
//! (Fig. 6).

use blast_la::CsrMatrix;
use gpu_sim::{GpuDevice, GpuError, KernelStats, LaunchConfig, Traffic};

/// Kernel 11 / the SpMV inside kernel 9.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpmvKernel;

impl SpmvKernel {
    /// Kernel name as it appears in the paper's Fig. 6 breakdown.
    pub const NAME: &'static str = "csrMv_ci_kernel";

    /// Launch configuration: one warp-row hybrid, 128 threads per block.
    pub fn config(&self, rows: usize) -> LaunchConfig {
        LaunchConfig::new((rows as u32).div_ceil(128).max(1), 128, 0, 24)
    }

    /// Declared traffic: CSR SpMV is memory-bound — values + column
    /// indices stream from DRAM; the gathered `x` entries hit L2 about
    /// half the time for FEM-sparsity matrices.
    pub fn traffic(&self, a: &CsrMatrix) -> Traffic {
        let nnz = a.nnz() as f64;
        let rows = a.rows() as f64;
        Traffic {
            flops: 2.0 * nnz,
            dram_bytes: nnz * (8.0 + 4.0) + rows * (8.0 + 8.0) + nnz * 8.0 * 0.5,
            l2_bytes: nnz * 8.0 * 0.5,
            ..Default::default()
        }
    }

    /// Launches `y = A x` on the simulated device.
    pub fn run(&self, dev: &GpuDevice, a: &CsrMatrix, x: &[f64], y: &mut [f64]) -> Result<KernelStats, GpuError> {
        let cfg = self.config(a.rows());
        let traffic = self.traffic(a);
        let (_, stats) = dev.launch(Self::NAME, &cfg, &traffic, || {
            a.spmv_into(x, y);
        })?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceCatalog;
    use blast_la::CsrBuilder;
    

    fn tridiag(n: usize) -> CsrMatrix {
        let mut b = CsrBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn result_matches_host_spmv() {
        let a = tridiag(50);
        let x: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut y = vec![0.0; 50];
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        SpmvKernel.run(&dev, &a, &x, &mut y).expect("no faults injected");
        assert_eq!(y, a.spmv(&x));
    }

    #[test]
    fn spmv_is_memory_bound() {
        // Arithmetic intensity of CSR SpMV is far below the K20 ridge
        // point: the kernel must be bandwidth-limited, not compute-limited.
        let a = tridiag(100_000);
        let k = SpmvKernel;
        let t = k.traffic(&a);
        let ridge = 1170.0 / 208.0; // flops/byte where K20 turns compute-bound
        assert!(t.intensity() < ridge / 10.0, "intensity {}", t.intensity());
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let stats = dev.model_kernel(&k.config(a.rows()), &t);
        assert!(stats.dram_bw_gbs > 0.5 * 208.0, "bw {}", stats.dram_bw_gbs);
        assert!(stats.gflops < 50.0, "gflops {}", stats.gflops);
    }

    #[test]
    fn spmv_power_is_dram_dominated() {
        // §5.2: the CUDA-PCG component's power is high *while its kernels
        // run* because SpMV keeps the DRAM interface (the most
        // energy-hungry resource) saturated. The board should sit well
        // above the active floor but below a flop-saturated DGEMM.
        let a = tridiag(1_000_000);
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let k = SpmvKernel;
        let spmv_stats = dev.model_kernel(&k.config(a.rows()), &k.traffic(&a));
        let floor = dev.spec().active_floor_w;
        assert!(
            spmv_stats.power_w > floor + 50.0,
            "spmv {} W barely above the {} W floor",
            spmv_stats.power_w,
            floor
        );
        assert!(spmv_stats.power_w < 180.0, "spmv {} W", spmv_stats.power_w);
        // A launch-overhead-dominated kernel (tiny dot product) draws far
        // less — the duty-cycle contrast behind Fig. 15's CF-1MPI scenario.
        let tiny = gpu_sim::Traffic {
            flops: 2e4,
            dram_bytes: 1.6e5,
            ..Default::default()
        };
        let tiny_stats = dev.model_kernel(&LaunchConfig::new(40, 256, 0, 16), &tiny);
        assert!(tiny_stats.power_w < spmv_stats.power_w);
    }
}
