//! # blast-kernels
//!
//! The paper's redesigned CUDA kernels (Table 2), implemented against the
//! simulated GPU of `gpu-sim`.
//!
//! | No. | Kernel name                    | Purpose                                   | Module |
//! |-----|--------------------------------|-------------------------------------------|--------|
//! | 1   | `kernel_CalcAjugate_det`       | SVD, eigenvalues, adjugate of `J`         | [`k1`] |
//! | 2   | `kernel_loop_grad_v`           | EOS, stress tensor `σ̂(q̂_k)`              | [`k2`] |
//! | 3   | `kernel_PzVz_Phi_F`            | Batched `∇̂v̂(q̂_k)`, `J_z(q̂_k)`           | [`k3`] |
//! | 4   | `kernel_Phi_sigma_hat_z`       | `A_z` columns from the stress             | [`k4`] |
//! | 5   | `kernel_NN_dgemmBatched`       | Auxiliary `DIM x DIM` batched DGEMM       | [`k56`] |
//! | 6   | `kernel_NT_dgemmBatched`       | Auxiliary `DIM x DIM` batched DGEMM (B^T) | [`k56`] |
//! | 7   | `kernel_loop_zones`            | `F_z = A_z B^T`                           | [`k7`] |
//! | 8   | `kernel_loop_zones_dv_dt`      | `-F · 1` (batched DGEMV)                  | [`k8_10`] |
//! | 10  | `kernel_dgemvt`                | `F^T · v` (batched DGEMV, transposed)     | [`k8_10`] |
//! | 9   | CUDA-PCG                       | Solve `M_V dv/dt = -F·1`                  | [`k9`] |
//! | 11  | SpMV (`csrMv_ci_kernel`)       | Apply `M_E^{-1}`                          | [`k11`] |
//!
//! Plus the *base implementation* the paper started from — a monolithic
//! `kernel_loop_quadrature_point` ([`base`]) whose per-thread workspaces
//! spill to local memory — and vendor-library baselines ([`cublas_like`])
//! with the documented pathologies (`cublasDgemmBatched` at ~1.3 GFLOP/s on
//! `DIM x DIM` batches; streamed `cublasDgemv` at ~0.2 GFLOP/s).
//!
//! Every kernel follows the same contract: the *math really executes* (in
//! parallel over thread blocks via rayon) and is bit-identical across
//! optimization variants; the variants differ in their declared
//! [`gpu_sim::Traffic`] and [`gpu_sim::LaunchConfig`], which is what the
//! device timing/power model consumes. Each kernel's unit tests validate
//! the math against `blast-la` and the performance ordering of its variants.

pub mod base;
pub mod cublas_like;
pub mod k1;
pub mod k11;
pub mod k2;
pub mod k3;
pub mod k4;
pub mod k56;
pub mod k7;
pub mod k8_10;
pub mod k9;
pub mod shapes;
pub mod sumfac;

pub use shapes::ProblemShape;
pub use sumfac::AssemblyMode;

/// Workspace placement for the per-thread scratch matrices of kernels 1-2
/// (the Fig. 4 ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workspace {
    /// Workspace spilled to local memory (base implementation on Fermi:
    /// "the register spill issue is serious by inspecting the PTX code").
    LocalMemory,
    /// Workspace held in register arrays (the optimized form on Kepler,
    /// which "doubles the number of physical registers per SMX").
    Registers,
}

/// Optimization level of the custom batched-DGEMM kernels 3, 4 and 7
/// (the Fig. 7 ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmVariant {
    /// v1 — straightforward: operands read from global memory (kernel 3
    /// reads `B` through the texture cache).
    V1,
    /// v2 — `A` staged through shared memory, `B` in shared (kernel 3) or
    /// constant memory (kernel 7).
    V2,
    /// v3 — v2 plus tuning: multiple `A` matrices per thread block
    /// (kernels 3/4) or column blocking (kernel 7), parameters autotuned.
    V3,
}
