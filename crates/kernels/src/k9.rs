//! Kernel 9 — the CUDA-PCG solver for the momentum system
//! `M_V (dv/dt) = -F·1`.
//!
//! "We implemented a custom CUDA-PCG solver from scratch. CUDA-PCG contains
//! a SpMV and a dot product routine only, where we call CUSPARSE SpMV and
//! cublasDdot." Kernel 9 is therefore *a set of kernels*: per iteration one
//! `csrMv_ci_kernel` launch, two `cublasDdot` reductions and three
//! `cublasDaxpy` updates — which is why the SpMV dominates the optimized
//! breakdown of Fig. 6.
//!
//! Boundary conditions: reflecting walls constrain individual velocity
//! components; the solve works in the constrained subspace by projecting
//! the operator (`P A P` with `P` the constraint projector) so the system
//! stays SPD.

use blast_la::{CsrMatrix, DiagPrecond, PcgOptions, PcgResult};
use gpu_sim::{GpuDevice, GpuError, KernelStats, LaunchConfig, Traffic};

use crate::k11::SpmvKernel;

/// Kernel 9: CUDA-PCG over the simulated device.
#[derive(Clone, Debug, Default)]
pub struct GpuPcg {
    /// Stopping options (defaults match the CPU PCG).
    pub opts: PcgOptions,
}

/// One `cublasDdot`-style reduction launch.
fn dot_launch(dev: &GpuDevice, x: &[f64], y: &[f64]) -> Result<(f64, KernelStats), GpuError> {
    let n = x.len();
    let cfg = LaunchConfig::new((n as u32).div_ceil(256).max(1), 256, 256 * 8, 16);
    let traffic = Traffic {
        flops: 2.0 * n as f64,
        dram_bytes: 2.0 * n as f64 * 8.0,
        shared_bytes: n as f64 * 8.0,
        ..Default::default()
    };
    dev.launch("cublasDdot", &cfg, &traffic, || blast_la::dense::dot(x, y))
}

/// One `cublasDaxpy`-style update launch.
fn axpy_launch(
    dev: &GpuDevice,
    alpha: f64,
    x: &[f64],
    y: &mut [f64],
) -> Result<KernelStats, GpuError> {
    let n = x.len();
    let cfg = LaunchConfig::new((n as u32).div_ceil(256).max(1), 256, 0, 12);
    let traffic = Traffic {
        flops: 2.0 * n as f64,
        dram_bytes: 3.0 * n as f64 * 8.0,
        ..Default::default()
    };
    let (_, stats) = dev.launch("cublasDaxpy", &cfg, &traffic, || {
        blast_la::dense::axpy(alpha, x, y)
    })?;
    Ok(stats)
}

impl GpuPcg {
    /// Solves `A x = b` with a diagonal preconditioner, applying the
    /// component constraint mask `constrained` (entries with `true` are
    /// held at zero — reflecting-wall DOFs). `x` carries the initial guess.
    pub fn solve(
        &self,
        dev: &GpuDevice,
        a: &CsrMatrix,
        precond: &DiagPrecond,
        b: &[f64],
        constrained: &[bool],
        x: &mut [f64],
    ) -> Result<PcgResult, GpuError> {
        let n = a.rows();
        assert_eq!(b.len(), n);
        assert_eq!(x.len(), n);
        assert_eq!(constrained.len(), n);

        let project = |v: &mut [f64]| {
            for (vi, &c) in v.iter_mut().zip(constrained) {
                if c {
                    *vi = 0.0;
                }
            }
        };

        let spmv = SpmvKernel;
        let mut r = vec![0.0; n];
        let mut z = vec![0.0; n];
        let mut p = vec![0.0; n];
        let mut ap = vec![0.0; n];

        // r = P(b) - P A P x.
        project(x);
        spmv.run(dev, a, x, &mut r)?;
        project(&mut r);
        for (ri, &bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        project(&mut r);

        let (bnorm2, _) = dot_launch(dev, b, b)?;
        let bnorm = bnorm2.sqrt().max(self.opts.abs_tol);
        let target = (self.opts.rel_tol * bnorm).max(self.opts.abs_tol);

        let (mut rr, _) = dot_launch(dev, &r, &r)?;
        if rr.sqrt() <= target {
            return Ok(PcgResult { converged: true, iterations: 0, residual: rr.sqrt() });
        }

        precond.apply(&r, &mut z);
        project(&mut z);
        p.copy_from_slice(&z);
        let (mut rz, _) = dot_launch(dev, &r, &z)?;

        for iter in 1..=self.opts.max_iter {
            spmv.run(dev, a, &p, &mut ap)?;
            project(&mut ap);
            let (pap, _) = dot_launch(dev, &p, &ap)?;
            if pap <= 0.0 || !pap.is_finite() {
                return Ok(PcgResult { converged: false, iterations: iter, residual: rr.sqrt() });
            }
            let alpha = rz / pap;
            axpy_launch(dev, alpha, &p, x)?;
            axpy_launch(dev, -alpha, &ap, &mut r)?;
            let (rr_new, _) = dot_launch(dev, &r, &r)?;
            rr = rr_new;
            if rr.sqrt() <= target {
                return Ok(PcgResult { converged: true, iterations: iter, residual: rr.sqrt() });
            }
            precond.apply(&r, &mut z);
            project(&mut z);
            let (rz_new, _) = dot_launch(dev, &r, &z)?;
            let beta = rz_new / rz;
            rz = rz_new;
            for (pi, &zi) in p.iter_mut().zip(&z) {
                *pi = zi + beta * *pi;
            }
        }
        Ok(PcgResult { converged: false, iterations: self.opts.max_iter, residual: rr.sqrt() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_la::CsrBuilder;
    use gpu_sim::GpuSpec;

    fn laplacian(n: usize) -> CsrMatrix {
        let mut b = CsrBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn gpu_pcg_matches_cpu_pcg() {
        let n = 64;
        let a = laplacian(n);
        let b: Vec<f64> = (0..n).map(|i| ((i + 1) as f64 * 0.17).sin()).collect();
        let pre = DiagPrecond::from_diagonal(&a.diagonal());
        let none = vec![false; n];

        let dev = GpuDevice::new(GpuSpec::k20());
        let mut x_gpu = vec![0.0; n];
        let res = GpuPcg::default().solve(&dev, &a, &pre, &b, &none, &mut x_gpu).expect("no faults injected");
        assert!(res.converged, "residual {}", res.residual);

        let mut x_cpu = vec![0.0; n];
        blast_la::pcg_solve(&mut (&a), &pre, &b, &mut x_cpu, &PcgOptions::default());
        for (g, c) in x_gpu.iter().zip(&x_cpu) {
            assert!((g - c).abs() < 1e-8, "{g} vs {c}");
        }
    }

    #[test]
    fn constrained_entries_stay_zero() {
        let n = 32;
        let a = laplacian(n);
        let b = vec![1.0; n];
        let pre = DiagPrecond::from_diagonal(&a.diagonal());
        let mut constrained = vec![false; n];
        constrained[0] = true;
        constrained[n - 1] = true;
        let dev = GpuDevice::new(GpuSpec::k20());
        let mut x = vec![0.0; n];
        let res = GpuPcg::default().solve(&dev, &a, &pre, &b, &constrained, &mut x).expect("no faults injected");
        assert!(res.converged);
        assert_eq!(x[0], 0.0);
        assert_eq!(x[n - 1], 0.0);
        // The interior entries satisfy the constrained system: check the
        // residual on unconstrained rows.
        let ax = a.spmv(&x);
        for i in 1..n - 1 {
            assert!((ax[i] - b[i]).abs() < 1e-8, "row {i}");
        }
    }

    /// Banded SPD matrix with FEM-like row density (high-order H1 mass
    /// matrices couple ~(2k+1)^dim neighbours per row).
    fn banded(n: usize, half_band: usize) -> CsrMatrix {
        let mut b = CsrBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0 * half_band as f64);
            for o in 1..=half_band {
                if i >= o {
                    b.add(i, i - o, -0.5);
                }
                if i + o < n {
                    b.add(i, i + o, -0.5);
                }
            }
        }
        b.build()
    }

    #[test]
    fn spmv_dominates_pcg_device_time() {
        // Fig. 6's message: within the solve, csrMv_ci_kernel is the
        // biggest component. This needs FEM-like sparsity (dozens of
        // nonzeros per row), not a tridiagonal toy.
        let n = 20_000;
        let a = banded(n, 40);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).cos()).collect();
        let pre = DiagPrecond::from_diagonal(&a.diagonal());
        let none = vec![false; n];
        let dev = GpuDevice::new(GpuSpec::k20());
        let mut x = vec![0.0; n];
        GpuPcg::default().solve(&dev, &a, &pre, &b, &none, &mut x).expect("no faults injected");
        let summary = dev.kernel_summary();
        assert_eq!(summary[0].0, SpmvKernel::NAME, "summary: {summary:?}");
        let total: f64 = summary.iter().map(|(_, t, _)| t).sum();
        assert!(summary[0].1 / total > 0.4, "spmv share {}", summary[0].1 / total);
    }

    #[test]
    fn iteration_count_reported() {
        let n = 128;
        let a = laplacian(n);
        let b = vec![1.0; n];
        let pre = DiagPrecond::from_diagonal(&a.diagonal());
        let none = vec![false; n];
        let dev = GpuDevice::new(GpuSpec::k20());
        let mut x = vec![0.0; n];
        let res = GpuPcg::default().solve(&dev, &a, &pre, &b, &none, &mut x).expect("no faults injected");
        assert!(res.converged);
        assert!(res.iterations > 1 && res.iterations <= n);
        // One SpMV launch per iteration plus the initial residual.
        let spmv_calls = dev
            .kernel_summary()
            .iter()
            .find(|(n, _, _)| *n == SpmvKernel::NAME)
            .map(|&(_, _, c)| c)
            .unwrap();
        assert_eq!(spmv_calls, res.iterations + 1);
    }
}
