//! Kernel 9 — the CUDA-PCG solver for the momentum system
//! `M_V (dv/dt) = -F·1`.
//!
//! "We implemented a custom CUDA-PCG solver from scratch. CUDA-PCG contains
//! a SpMV and a dot product routine only, where we call CUSPARSE SpMV and
//! cublasDdot." The *unfused* path models that baseline faithfully: per
//! iteration one `csrMv_ci_kernel` launch plus seven BLAS-1-style launches
//! (two `cublasDdot` reductions, a `cublasDnrm2`, two `cublasDaxpy`
//! updates, the Jacobi apply and the direction update — each a kernel on a
//! real GPU).
//!
//! The *fused* path (default) applies the streaming-kernel treatment
//! (Chalmers & Warburton, arXiv:2009.10917): **three launches per
//! iteration** — `fusedCsrMvDot_ci_kernel` (SpMV producing `p·Ap` in the
//! same sweep), `fusedAxpy2Nrm2_kernel` (both axpys + `‖r‖²`), and
//! `fusedPrecondUpdate_kernel` (Jacobi apply + `r·z` + direction update,
//! `z` never materialized). Per iteration that cuts the modeled vector DRAM
//! traffic from ~18n words to ~12n and the launch count from 8 to 3, which
//! flows straight into the §6 device time/energy model and the power
//! traces. Both paths run the same `blast_la::stream` kernels host-side,
//! **in the same order as the CPU solver's `pcg_solve_ws`**, so all three
//! trajectories are bitwise identical — the mid-run degrade-to-CPU path
//! (chaos campaign) depends on this op-for-op mirroring.
//!
//! Boundary conditions: reflecting walls constrain individual velocity
//! components; the solve works in the constrained subspace by projecting
//! the operator (`P A P` with `P` the constraint projector) so the system
//! stays SPD.

use blast_la::{stream, CsrMatrix, DiagPrecond, PcgOptions, PcgResult};
use gpu_sim::{GpuDevice, GpuError, KernelStats, LaunchConfig, Traffic};

use crate::k11::SpmvKernel;

/// Fused SpMV + dot launch name (Fig. 6 breakdown label).
pub const FUSED_SPMV_DOT: &str = "fusedCsrMvDot_ci_kernel";
/// Fused pair-update + norm launch name.
pub const FUSED_AXPY2_NRM2: &str = "fusedAxpy2Nrm2_kernel";
/// Fused precondition + dot + direction-update launch name.
pub const FUSED_PRECOND_UPDATE: &str = "fusedPrecondUpdate_kernel";

/// Kernel 9: CUDA-PCG over the simulated device.
#[derive(Clone, Debug)]
pub struct GpuPcg {
    /// Stopping options (defaults match the CPU PCG).
    pub opts: PcgOptions,
    /// Fused streaming kernels (3 launches/iteration) vs the launch-per-op
    /// baseline (8 launches/iteration). Defaults to fused.
    pub fused: bool,
}

impl Default for GpuPcg {
    fn default() -> Self {
        Self { opts: PcgOptions::default(), fused: true }
    }
}

/// One `cublasDdot`-style reduction launch.
fn dot_launch(dev: &GpuDevice, x: &[f64], y: &[f64]) -> Result<(f64, KernelStats), GpuError> {
    let n = x.len();
    let cfg = LaunchConfig::new((n as u32).div_ceil(256).max(1), 256, 256 * 8, 16);
    let traffic = Traffic {
        flops: 2.0 * n as f64,
        dram_bytes: 2.0 * n as f64 * 8.0,
        shared_bytes: n as f64 * 8.0,
        ..Default::default()
    };
    dev.launch("cublasDdot", &cfg, &traffic, || stream::dot(x, y))
}

/// One `cublasDaxpy`-style update launch.
fn axpy_launch(
    dev: &GpuDevice,
    alpha: f64,
    x: &[f64],
    y: &mut [f64],
) -> Result<KernelStats, GpuError> {
    let n = x.len();
    let cfg = LaunchConfig::new((n as u32).div_ceil(256).max(1), 256, 0, 12);
    let traffic = Traffic {
        flops: 2.0 * n as f64,
        dram_bytes: 3.0 * n as f64 * 8.0,
        ..Default::default()
    };
    let (_, stats) = dev.launch("cublasDaxpy", &cfg, &traffic, || {
        stream::axpy(alpha, x, y)
    })?;
    Ok(stats)
}

/// One `cublasDnrm2`-style reduction launch (the scaled overflow-safe
/// norm — same arithmetic as the CPU solver's convergence check).
fn nrm2_launch(dev: &GpuDevice, x: &[f64]) -> Result<(f64, KernelStats), GpuError> {
    let n = x.len();
    let cfg = LaunchConfig::new((n as u32).div_ceil(256).max(1), 256, 256 * 8, 16);
    let traffic = Traffic {
        flops: 2.0 * n as f64,
        dram_bytes: n as f64 * 8.0,
        shared_bytes: n as f64 * 8.0,
        ..Default::default()
    };
    dev.launch("cublasDnrm2", &cfg, &traffic, || stream::nrm2(x))
}

/// Jacobi-apply launch `z = M^{-1} r` (a custom kernel on a real GPU; the
/// unfused baseline previously ran this host-side for free, underbilling
/// the solve).
fn jacobi_launch(
    dev: &GpuDevice,
    precond: &DiagPrecond,
    r: &[f64],
    z: &mut [f64],
) -> Result<KernelStats, GpuError> {
    let n = r.len();
    let cfg = LaunchConfig::new((n as u32).div_ceil(256).max(1), 256, 0, 10);
    let traffic = Traffic {
        flops: n as f64,
        dram_bytes: 3.0 * n as f64 * 8.0,
        ..Default::default()
    };
    let (_, stats) = dev.launch("jacobiApply_kernel", &cfg, &traffic, || {
        precond.apply(r, z)
    })?;
    Ok(stats)
}

/// Direction-update launch `p = z + beta*p` (unfused baseline).
fn update_dir_launch(
    dev: &GpuDevice,
    beta: f64,
    z: &[f64],
    p: &mut [f64],
) -> Result<KernelStats, GpuError> {
    let n = z.len();
    let cfg = LaunchConfig::new((n as u32).div_ceil(256).max(1), 256, 0, 12);
    let traffic = Traffic {
        flops: 2.0 * n as f64,
        dram_bytes: 3.0 * n as f64 * 8.0,
        ..Default::default()
    };
    let (_, stats) = dev.launch("updateDir_kernel", &cfg, &traffic, || {
        stream::update_direction(beta, z, p)
    })?;
    Ok(stats)
}

impl GpuPcg {
    /// Solves `A x = b` with a diagonal preconditioner, applying the
    /// component constraint mask `constrained` (entries with `true` are
    /// held at zero — reflecting-wall DOFs). `x` carries the initial guess.
    pub fn solve(
        &self,
        dev: &GpuDevice,
        a: &CsrMatrix,
        precond: &DiagPrecond,
        b: &[f64],
        constrained: &[bool],
        x: &mut [f64],
    ) -> Result<PcgResult, GpuError> {
        if self.fused {
            self.solve_fused(dev, a, precond, b, constrained, x)
        } else {
            self.solve_unfused(dev, a, precond, b, constrained, x)
        }
    }

    /// The fused path: 3 launches per iteration.
    fn solve_fused(
        &self,
        dev: &GpuDevice,
        a: &CsrMatrix,
        precond: &DiagPrecond,
        b: &[f64],
        constrained: &[bool],
        x: &mut [f64],
    ) -> Result<PcgResult, GpuError> {
        let n = a.rows();
        assert_eq!(b.len(), n);
        assert_eq!(x.len(), n);
        assert_eq!(constrained.len(), n);
        let minv = precond.inv_diag();
        assert_eq!(minv.len(), n);

        let project = |v: &mut [f64]| {
            for (vi, &c) in v.iter_mut().zip(constrained) {
                if c {
                    *vi = 0.0;
                }
            }
        };

        let spmv = SpmvKernel;
        let mut r = vec![0.0; n];
        let mut p = vec![0.0; n];
        let mut ap = vec![0.0; n];

        // r = P(b) - P A P x (plain SpMV: no dot wanted for the residual).
        // Launched over the streaming SpMV — not the scalar `spmv_into` —
        // so the residual bits match the CPU solver's `op.apply`.
        project(x);
        dev.launch(SpmvKernel::NAME, &spmv.config(n), &spmv.traffic(a), || {
            stream::spmv(a, x, &mut r)
        })?;
        project(&mut r);
        for (ri, &bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        project(&mut r);

        let (bnorm, _) = nrm2_launch(dev, b)?;
        let bnorm = bnorm.max(self.opts.abs_tol);
        let target = (self.opts.rel_tol * bnorm).max(self.opts.abs_tol);

        let (mut rnorm, _) = nrm2_launch(dev, &r)?;
        if rnorm <= target {
            return Ok(PcgResult { converged: true, iterations: 0, residual: rnorm });
        }

        // Setup sweep: Jacobi apply + r·z + p = z in one launch.
        let (mut rz, _) = fused_precond_launch(dev, minv, &r, None, &mut p, &project)?;

        for iter in 1..=self.opts.max_iter {
            // SpMV producing p·Ap in the same sweep. The dot runs before
            // the Ap projection, which is exact: p is already projected,
            // so constrained entries contribute p_i * (Ap)_i = 0 either way.
            let (pap, _) = fused_spmv_dot_launch(dev, a, &p, &mut ap, &project)?;
            if pap <= 0.0 || !pap.is_finite() {
                return Ok(PcgResult { converged: false, iterations: iter, residual: rnorm });
            }
            let alpha = rz / pap;
            // x += alpha p; r -= alpha Ap; ‖r‖² — one launch. No projection
            // needed: x, r, p and Ap are all already zero on constrained
            // entries, and the updates keep them there. The norm finishing
            // (rescale on overflow) is host-side scalar work.
            let (sumsq, _) = fused_axpy2_launch(dev, alpha, &p, &ap, x, &mut r)?;
            rnorm = stream::nrm2_from_sumsq(sumsq, &r);
            if rnorm <= target {
                return Ok(PcgResult { converged: true, iterations: iter, residual: rnorm });
            }
            let (rz_new, _) = fused_precond_launch(dev, minv, &r, Some(rz), &mut p, &project)?;
            rz = rz_new;
        }
        Ok(PcgResult { converged: false, iterations: self.opts.max_iter, residual: rnorm })
    }

    /// The unfused baseline: one launch per BLAS-1 op (8 per iteration).
    fn solve_unfused(
        &self,
        dev: &GpuDevice,
        a: &CsrMatrix,
        precond: &DiagPrecond,
        b: &[f64],
        constrained: &[bool],
        x: &mut [f64],
    ) -> Result<PcgResult, GpuError> {
        let n = a.rows();
        assert_eq!(b.len(), n);
        assert_eq!(x.len(), n);
        assert_eq!(constrained.len(), n);

        let project = |v: &mut [f64]| {
            for (vi, &c) in v.iter_mut().zip(constrained) {
                if c {
                    *vi = 0.0;
                }
            }
        };

        let spmv = SpmvKernel;
        let mut r = vec![0.0; n];
        let mut z = vec![0.0; n];
        let mut p = vec![0.0; n];
        let mut ap = vec![0.0; n];

        // r = P(b) - P A P x.
        project(x);
        dev.launch(SpmvKernel::NAME, &spmv.config(n), &spmv.traffic(a), || {
            stream::spmv(a, x, &mut r)
        })?;
        project(&mut r);
        for (ri, &bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        project(&mut r);

        let (bnorm, _) = nrm2_launch(dev, b)?;
        let bnorm = bnorm.max(self.opts.abs_tol);
        let target = (self.opts.rel_tol * bnorm).max(self.opts.abs_tol);

        let (mut rnorm, _) = nrm2_launch(dev, &r)?;
        if rnorm <= target {
            return Ok(PcgResult { converged: true, iterations: 0, residual: rnorm });
        }

        jacobi_launch(dev, precond, &r, &mut z)?;
        project(&mut z);
        p.copy_from_slice(&z);
        let (mut rz, _) = dot_launch(dev, &r, &z)?;

        for iter in 1..=self.opts.max_iter {
            // Same streaming SpMV kernel as the fused path (launched under
            // the CUSPARSE name) so the two paths stay bit-identical.
            dev.launch(SpmvKernel::NAME, &spmv.config(n), &spmv.traffic(a), || {
                stream::spmv(a, &p, &mut ap)
            })?;
            project(&mut ap);
            let (pap, _) = dot_launch(dev, &p, &ap)?;
            if pap <= 0.0 || !pap.is_finite() {
                return Ok(PcgResult { converged: false, iterations: iter, residual: rnorm });
            }
            let alpha = rz / pap;
            axpy_launch(dev, alpha, &p, x)?;
            axpy_launch(dev, -alpha, &ap, &mut r)?;
            let (rnorm_new, _) = nrm2_launch(dev, &r)?;
            rnorm = rnorm_new;
            if rnorm <= target {
                return Ok(PcgResult { converged: true, iterations: iter, residual: rnorm });
            }
            jacobi_launch(dev, precond, &r, &mut z)?;
            project(&mut z);
            let (rz_new, _) = dot_launch(dev, &r, &z)?;
            let beta = rz_new / rz;
            rz = rz_new;
            update_dir_launch(dev, beta, &z, &mut p)?;
        }
        Ok(PcgResult { converged: false, iterations: self.opts.max_iter, residual: rnorm })
    }
}

/// Fused SpMV + dot launch: the SpMV's full traffic plus the reduction's
/// flops; the dot re-reads `p` and the freshly written `Ap` rows from L2
/// (they are block-local and cache-hot), not DRAM.
fn fused_spmv_dot_launch(
    dev: &GpuDevice,
    a: &CsrMatrix,
    p: &[f64],
    ap: &mut [f64],
    project: &impl Fn(&mut [f64]),
) -> Result<(f64, KernelStats), GpuError> {
    let n = a.rows() as f64;
    let spmv = SpmvKernel;
    let mut cfg = spmv.config(a.rows());
    cfg.shared_bytes = 256 * 8;
    let traffic = spmv.traffic(a).add(&Traffic {
        flops: 2.0 * n,
        l2_bytes: 2.0 * n * 8.0,
        shared_bytes: n * 8.0,
        ..Default::default()
    });
    dev.launch(FUSED_SPMV_DOT, &cfg, &traffic, || {
        let pap = stream::spmv_dot(a, p, ap);
        project(ap);
        pap
    })
}

/// Fused pair-update + norm launch: reads p, Ap, x, r; writes x, r
/// (6n words vs the baseline's 8n across three launches).
fn fused_axpy2_launch(
    dev: &GpuDevice,
    alpha: f64,
    p: &[f64],
    ap: &[f64],
    x: &mut [f64],
    r: &mut [f64],
) -> Result<(f64, KernelStats), GpuError> {
    let n = p.len() as f64;
    let cfg = LaunchConfig::new((p.len() as u32).div_ceil(256).max(1), 256, 256 * 8, 24);
    let traffic = Traffic {
        flops: 6.0 * n,
        dram_bytes: 6.0 * n * 8.0,
        shared_bytes: n * 8.0,
        ..Default::default()
    };
    dev.launch(FUSED_AXPY2_NRM2, &cfg, &traffic, || {
        stream::axpy2_nrm2(alpha, p, ap, x, r)
    })
}

/// Fused precondition + dot + direction-update launch: reads minv, r, p;
/// writes p; `z` is recomputed in registers (5n words vs the baseline's 8n
/// across three launches).
fn fused_precond_launch(
    dev: &GpuDevice,
    minv: &[f64],
    r: &[f64],
    rz_prev: Option<f64>,
    p: &mut [f64],
    project: &impl Fn(&mut [f64]),
) -> Result<(f64, KernelStats), GpuError> {
    let n = r.len() as f64;
    let cfg = LaunchConfig::new((r.len() as u32).div_ceil(256).max(1), 256, 256 * 8, 20);
    let traffic = Traffic {
        flops: 5.0 * n,
        dram_bytes: 5.0 * n * 8.0,
        l2_bytes: 2.0 * n * 8.0,
        shared_bytes: n * 8.0,
        ..Default::default()
    };
    dev.launch(FUSED_PRECOND_UPDATE, &cfg, &traffic, || {
        let rz = stream::precond_dot_update(minv, r, rz_prev, p);
        project(p);
        rz
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceCatalog;
    use blast_la::CsrBuilder;
    

    fn laplacian(n: usize) -> CsrMatrix {
        let mut b = CsrBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn gpu_pcg_matches_cpu_pcg_bitwise() {
        // The degrade-to-CPU resilience path (chaos campaign) requires the
        // device solve and `pcg_solve_ws` to produce the *same bits*: both
        // paths, fused and unfused, mirror the CPU loop op-for-op.
        let n = 64;
        let a = laplacian(n);
        let b: Vec<f64> = (0..n).map(|i| ((i + 1) as f64 * 0.17).sin()).collect();
        let pre = DiagPrecond::from_diagonal(&a.diagonal());
        let none = vec![false; n];
        let before = stream::active_stream_index();

        for fused in [true, false] {
            let idx = blast_la::stream::CANDIDATES
                .iter()
                .position(|c| c.fused == fused && !c.parallel)
                .unwrap();
            stream::set_active_stream_index(idx);
            let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
            let mut x_gpu = vec![0.0; n];
            let res = GpuPcg { opts: PcgOptions::default(), fused }
                .solve(&dev, &a, &pre, &b, &none, &mut x_gpu)
                .expect("no faults injected");
            assert!(res.converged, "residual {}", res.residual);

            let mut x_cpu = vec![0.0; n];
            let res_cpu =
                blast_la::pcg_solve(&mut (&a), &pre, &b, &mut x_cpu, &PcgOptions::default());
            assert_eq!(res.iterations, res_cpu.iterations, "fused={fused}");
            assert_eq!(res.residual.to_bits(), res_cpu.residual.to_bits(), "fused={fused}");
            assert_eq!(x_gpu, x_cpu, "fused={fused}");
        }
        stream::set_active_stream_index(before);
    }

    #[test]
    fn fused_matches_unfused_bitwise_with_fewer_launches() {
        let n = 600;
        let a = banded(n, 6);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).sin()).collect();
        let pre = DiagPrecond::from_diagonal(&a.diagonal());
        let mut constrained = vec![false; n];
        constrained[0] = true;
        constrained[n / 2] = true;

        let dev_f = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let mut x_f = vec![0.0; n];
        let res_f = GpuPcg { fused: true, ..Default::default() }
            .solve(&dev_f, &a, &pre, &b, &constrained, &mut x_f)
            .expect("no faults injected");

        let dev_u = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let mut x_u = vec![0.0; n];
        let res_u = GpuPcg { fused: false, ..Default::default() }
            .solve(&dev_u, &a, &pre, &b, &constrained, &mut x_u)
            .expect("no faults injected");

        // Same stream kernels host-side: bit-identical trajectories.
        assert!(res_f.converged && res_u.converged);
        assert_eq!(res_f.iterations, res_u.iterations);
        assert_eq!(x_f, x_u);

        // Launch-count greenup: 3 + setup launches/iter vs 8 + setup.
        let launches = |dev: &GpuDevice| -> usize {
            dev.kernel_summary().iter().map(|&(_, _, c)| c).sum()
        };
        let iters = res_f.iterations;
        assert!(
            launches(&dev_f) <= 3 * iters + 5,
            "fused launches {} for {} iterations",
            launches(&dev_f),
            iters
        );
        assert!(launches(&dev_u) >= 8 * iters, "unfused launches {}", launches(&dev_u));

        // Modeled device-time and energy greenup from fewer launches and
        // fewer DRAM transits.
        assert!(
            dev_f.now() < dev_u.now(),
            "fused device time {} must beat unfused {}",
            dev_f.now(),
            dev_u.now()
        );
        assert!(dev_f.energy_joules() < dev_u.energy_joules());
    }

    #[test]
    fn constrained_entries_stay_zero() {
        let n = 32;
        let a = laplacian(n);
        let b = vec![1.0; n];
        let pre = DiagPrecond::from_diagonal(&a.diagonal());
        let mut constrained = vec![false; n];
        constrained[0] = true;
        constrained[n - 1] = true;
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let mut x = vec![0.0; n];
        let res = GpuPcg::default().solve(&dev, &a, &pre, &b, &constrained, &mut x).expect("no faults injected");
        assert!(res.converged);
        assert_eq!(x[0], 0.0);
        assert_eq!(x[n - 1], 0.0);
        // The interior entries satisfy the constrained system: check the
        // residual on unconstrained rows.
        let ax = a.spmv(&x);
        for i in 1..n - 1 {
            assert!((ax[i] - b[i]).abs() < 1e-8, "row {i}");
        }
    }

    /// Banded SPD matrix with FEM-like row density (high-order H1 mass
    /// matrices couple ~(2k+1)^dim neighbours per row).
    fn banded(n: usize, half_band: usize) -> CsrMatrix {
        let mut b = CsrBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0 * half_band as f64);
            for o in 1..=half_band {
                if i >= o {
                    b.add(i, i - o, -0.5);
                }
                if i + o < n {
                    b.add(i, i + o, -0.5);
                }
            }
        }
        b.build()
    }

    #[test]
    fn spmv_dominates_pcg_device_time() {
        // Fig. 6's message: within the solve, the SpMV (now fused with its
        // dot) is the biggest component. This needs FEM-like sparsity
        // (dozens of nonzeros per row), not a tridiagonal toy.
        let n = 20_000;
        let a = banded(n, 40);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).cos()).collect();
        let pre = DiagPrecond::from_diagonal(&a.diagonal());
        let none = vec![false; n];
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let mut x = vec![0.0; n];
        GpuPcg::default().solve(&dev, &a, &pre, &b, &none, &mut x).expect("no faults injected");
        let summary = dev.kernel_summary();
        assert_eq!(summary[0].0, FUSED_SPMV_DOT, "summary: {summary:?}");
        let total: f64 = summary.iter().map(|(_, t, _)| t).sum();
        assert!(summary[0].1 / total > 0.4, "spmv share {}", summary[0].1 / total);
    }

    #[test]
    fn iteration_count_reported() {
        let n = 128;
        let a = laplacian(n);
        let b = vec![1.0; n];
        let pre = DiagPrecond::from_diagonal(&a.diagonal());
        let none = vec![false; n];
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let mut x = vec![0.0; n];
        let res = GpuPcg::default().solve(&dev, &a, &pre, &b, &none, &mut x).expect("no faults injected");
        assert!(res.converged);
        assert!(res.iterations > 1 && res.iterations <= n);
        // One fused SpMV+dot launch per iteration; the initial residual is
        // a plain SpMV launch.
        let calls = |name: &str| -> usize {
            dev.kernel_summary()
                .iter()
                .find(|(n, _, _)| *n == name)
                .map_or(0, |&(_, _, c)| c)
        };
        assert_eq!(calls(FUSED_SPMV_DOT), res.iterations);
        assert_eq!(calls(SpmvKernel::NAME), 1);
    }
}
