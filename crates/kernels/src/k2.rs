//! Kernel 2 — `kernel_loop_grad_v`: equation of state and total stress
//! tensor `σ̂(q̂_k)` at every quadrature point.
//!
//! This is the physics kernel: ideal-gas EOS, sound speed, and the tensor
//! artificial viscosity of Dobrev-Kolev-Rieben (the paper's reference \[1\]), which
//! needs the eigendecomposition of the symmetrized velocity gradient at each
//! point — the "Eigval" work the paper highlights. It also produces the
//! per-point timestep control `inv_dt` whose global maximum bounds the CFL
//! step (step 5 of the algorithm: "find minimum time step").
//!
//! Viscosity model (following the reference implementation of BLAST's
//! method, as in the Laghos miniapp):
//!
//! ```text
//! ε      = sym(∇v)                          (spatial velocity gradient)
//! μ, s   = smallest eigenpair of ε          (maximal compression)
//! h      = h0 |J J0^{-1} s|                 (length scale in that direction)
//! q      = 2 ρ h^2 |μ| + 0.5 ρ h c_s step(-μ)
//! σ      = -p I + q ε
//! inv_dt = c_s / h_min + 2.5 q / (ρ h_min^2),  h_min = σ_min(J)/k
//! ```

use blast_la::{sym_eig2, sym_eig3, BatchedMats, DMatrix, SmallMat};
use gpu_sim::{GpuDevice, GpuError, KernelStats, LaunchConfig, Traffic};
use rayon::prelude::*;

use crate::k1::POINT_KERNEL_BLOCK;
use crate::shapes::ProblemShape;
use crate::Workspace;

/// Per-zone material/geometry constants consumed by the stress kernel.
#[derive(Clone, Debug)]
pub struct ZoneConstants {
    /// Adiabatic index `γ` per zone (triple-point uses two materials).
    pub gamma: Vec<f64>,
    /// Initial directional length scale `h0` per zone (min initial zone
    /// extent divided by the kinematic order).
    pub h0: Vec<f64>,
    /// Diagonal of `J_0^{-1}` per zone (`zones * dim`; the initial mesh is
    /// axis-aligned so `J_0` is diagonal).
    pub j0inv_diag: Vec<f64>,
}

/// Kernel 2: EOS + artificial viscosity -> total stress per point.
#[derive(Clone, Copy, Debug)]
pub struct StressKernel {
    /// Workspace placement (Fig. 4 ablation; the paper reports a 4x speedup
    /// for this kernel from register arrays on Kepler).
    pub workspace: Workspace,
    /// Artificial viscosity on/off (off reduces to pure ideal-gas flow —
    /// useful for the Taylor-Green smooth-flow validation).
    pub use_viscosity: bool,
}

/// Smooth step that is 0 below 0 and 1 above `eps` (C1 transition) — the
/// reference implementation's differentiable "if compressing" switch.
#[inline]
fn smooth_step_01(x: f64, eps: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else if x >= eps {
        1.0
    } else {
        let y = x / eps;
        y * y * (3.0 - 2.0 * y)
    }
}

impl StressKernel {
    /// Kernel name as in Table 2.
    pub const NAME: &'static str = "kernel_loop_grad_v";

    /// Launch configuration for `shape`.
    pub fn config(&self, shape: &ProblemShape) -> LaunchConfig {
        let count = shape.total_points() as u32;
        let grid = count.div_ceil(POINT_KERNEL_BLOCK);
        let regs = match (self.workspace, shape.dim) {
            (Workspace::Registers, 2) => 56,
            (Workspace::Registers, _) => 128,
            (Workspace::LocalMemory, 2) => 30,
            (Workspace::LocalMemory, _) => 32,
        };
        LaunchConfig::new(grid, POINT_KERNEL_BLOCK, 0, regs)
    }

    /// Declared traffic for `shape`.
    pub fn traffic(&self, shape: &ProblemShape) -> Traffic {
        let n = shape.total_points() as f64;
        let d = shape.dim as f64;
        let d2 = d * d;
        // Physics flops per point: EOS ~15, eig ~(40 | 260), viscosity ~60,
        // energy interpolation 2*nthermo.
        let eig = if shape.dim == 2 { 40.0 } else { 260.0 };
        let flops_per_pt = 15.0 + eig + 60.0 + 2.0 * shape.nthermo as f64;
        // Reads: L, J, adj (3 d^2 mats), det + hmin + rho0detj0 (24 B);
        // writes: sigma (d^2) + inv_dt (8 B). e-coefficients and the B table
        // are block-cached: count them as L2.
        let dram = n * (3.0 * d2 * 8.0 + 24.0 + d2 * 8.0 + 8.0);
        let l2 = n * (shape.nthermo as f64 * 8.0);
        let local = match self.workspace {
            Workspace::Registers => 0.0,
            // Workspace: eps, eigen-vectors, sigma accumulator (~4 matrices
            // x ~5 round trips past the L1). The paper measured 4x slowdown
            // on this kernel from the spills.
            Workspace::LocalMemory => n * 4.0 * d2 * 8.0 * 5.0,
        };
        Traffic { flops: n * flops_per_pt, dram_bytes: dram, l2_bytes: l2, local_bytes: local, ..Default::default() }
    }

    /// Pure computation.
    ///
    /// Inputs (all per point unless stated): `e_coeffs` (L2 energy DOFs,
    /// zone-major), `thermo_vals` (`B` table, `nthermo x npts`), `grad_v`
    /// (spatial velocity gradient from kernels 3+5), `jac`, `det`, `hmin`
    /// (from kernels 3/1), `rho0detj0` (frozen mass density x volume),
    /// zone constants. Outputs: `sigma` per point, `inv_dt` per point.
    #[allow(clippy::too_many_arguments)]
    pub fn compute(
        &self,
        shape: &ProblemShape,
        e_coeffs: &[f64],
        thermo_vals: &DMatrix,
        grad_v: &BatchedMats,
        jac: &BatchedMats,
        det: &[f64],
        hmin: &[f64],
        rho0detj0: &[f64],
        consts: &ZoneConstants,
        sigma: &mut BatchedMats,
        inv_dt: &mut [f64],
    ) {
        let d = shape.dim;
        let npts = shape.npts;
        let nthermo = shape.nthermo;
        let total = shape.total_points();
        assert_eq!(e_coeffs.len(), shape.zones * nthermo);
        assert_eq!(thermo_vals.shape(), (nthermo, npts));
        assert_eq!(grad_v.count(), total);
        assert_eq!(jac.count(), total);
        assert_eq!(det.len(), total);
        assert_eq!(hmin.len(), total);
        assert_eq!(rho0detj0.len(), total);
        assert_eq!(consts.gamma.len(), shape.zones);
        assert_eq!(consts.h0.len(), shape.zones);
        assert_eq!(consts.j0inv_diag.len(), shape.zones * d);
        assert_eq!(sigma.count(), total);
        assert_eq!(inv_dt.len(), total);

        let stride = d * d;
        let use_visc = self.use_viscosity;
        let order = shape.order as f64;
        sigma
            .as_mut_slice()
            .par_chunks_exact_mut(stride)
            .zip(inv_dt.par_iter_mut())
            .enumerate()
            .for_each(|(p, (sig_p, invdt_p))| {
                let z = p / npts;
                let k = p % npts;
                let gamma = consts.gamma[z];
                let h0 = consts.h0[z];
                let j0inv = &consts.j0inv_diag[z * d..(z + 1) * d];

                // Thermodynamic state.
                let mut e_pt = 0.0;
                for l in 0..nthermo {
                    e_pt += e_coeffs[z * nthermo + l] * thermo_vals[(l, k)];
                }
                let e_pt = e_pt.max(0.0);
                let rho = rho0detj0[p] / det[p];
                let p_eos = (gamma - 1.0) * rho * e_pt;
                let cs = (gamma * (gamma - 1.0) * e_pt).sqrt();

                if d == 2 {
                    stress_at_point::<2>(
                        use_visc, gamma, h0, j0inv, rho, p_eos, cs, grad_v.mat(p), jac.mat(p),
                        hmin[p], order, sig_p, invdt_p,
                    );
                } else {
                    stress_at_point::<3>(
                        use_visc, gamma, h0, j0inv, rho, p_eos, cs, grad_v.mat(p), jac.mat(p),
                        hmin[p], order, sig_p, invdt_p,
                    );
                }
            });
    }

    /// Launches the kernel on the simulated device.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        dev: &GpuDevice,
        shape: &ProblemShape,
        e_coeffs: &[f64],
        thermo_vals: &DMatrix,
        grad_v: &BatchedMats,
        jac: &BatchedMats,
        det: &[f64],
        hmin: &[f64],
        rho0detj0: &[f64],
        consts: &ZoneConstants,
        sigma: &mut BatchedMats,
        inv_dt: &mut [f64],
    ) -> Result<KernelStats, GpuError> {
        let cfg = self.config(shape);
        let traffic = self.traffic(shape);
        let (_, stats) = dev.launch(Self::NAME, &cfg, &traffic, || {
            self.compute(
                shape, e_coeffs, thermo_vals, grad_v, jac, det, hmin, rho0detj0, consts, sigma,
                inv_dt,
            );
        })?;
        Ok(stats)
    }
}

/// The per-point stress/viscosity computation, monomorphic in `D`.
///
/// Public so the matrix-free pipeline ([`crate::sumfac`]) applies the
/// identical EOS/viscosity arithmetic — the two assembly modes must agree
/// point-for-point on the stress before their contractions diverge.
#[allow(clippy::too_many_arguments)]
pub fn stress_at_point<const D: usize>(
    use_visc: bool,
    _gamma: f64,
    h0: f64,
    j0inv: &[f64],
    rho: f64,
    p_eos: f64,
    cs: f64,
    grad_v_slice: &[f64],
    jac_slice: &[f64],
    hmin_jac: f64,
    order: f64,
    sig_out: &mut [f64],
    invdt_out: &mut f64,
) {
    let l = SmallMat::<D>::from_col_slice(grad_v_slice);
    let mut sigma = SmallMat::<D>::zeros();
    for i in 0..D {
        sigma[(i, i)] = -p_eos;
    }

    let mut visc_coeff = 0.0;
    if use_visc {
        let eps_t = l.sym();
        // Smallest eigenpair = maximal compression.
        let (mu, dir) = if D == 2 {
            let m = SmallMat::<2>::from_fn(|i, j| eps_t[(i, j)]);
            let e = sym_eig2(&m);
            let mut v = [0.0; D];
            for i in 0..D {
                v[i] = e.vectors[(i, 1)];
            }
            (e.values[1], v)
        } else {
            let m = SmallMat::<3>::from_fn(|i, j| eps_t[(i, j)]);
            let e = sym_eig3(&m);
            let mut v = [0.0; D];
            for i in 0..D {
                v[i] = e.vectors[(i, 2)];
            }
            (e.values[2], v)
        };
        // Directional length scale h = h0 |J J0^{-1} dir|.
        let jac = SmallMat::<D>::from_col_slice(jac_slice);
        let jpi = SmallMat::<D>::from_fn(|i, c| jac[(i, c)] * j0inv[c]);
        let ph = jpi.mul_vec(&dir);
        let h = h0 * ph.iter().map(|x| x * x).sum::<f64>().sqrt();
        visc_coeff = 2.0 * rho * h * h * mu.abs();
        // Linear term only under compression (smooth switch).
        let eps_sw = 1e-12;
        visc_coeff += 0.5 * rho * h * cs * (1.0 - smooth_step_01(mu - 2.0 * eps_sw, eps_sw));
        for j in 0..D {
            for i in 0..D {
                sigma[(i, j)] += visc_coeff * eps_t[(i, j)];
            }
        }
    }
    sigma.write_col_slice(sig_out);

    // Per-point timestep control.
    let h_min = (hmin_jac / order).max(1e-300);
    *invdt_out = cs / h_min + 2.5 * visc_coeff / (rho * h_min * h_min);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_setup(dim: usize, zones: usize) -> (ProblemShape, ZoneConstants) {
        let shape = ProblemShape::new(dim, 2, zones);
        let consts = ZoneConstants {
            gamma: vec![1.4; zones],
            h0: vec![0.1; zones],
            j0inv_diag: vec![1.0; zones * dim],
        };
        (shape, consts)
    }

    fn run_compute(
        shape: &ProblemShape,
        consts: &ZoneConstants,
        kernel: &StressKernel,
        e_val: f64,
        grad_v: &BatchedMats,
    ) -> (BatchedMats, Vec<f64>) {
        let d = shape.dim;
        let total = shape.total_points();
        let e_coeffs = vec![e_val; shape.zones * shape.nthermo];
        // Constant-1 "basis": partition of unity collapses to single dof
        // semantics when all coefficients are equal.
        let thermo_vals = DMatrix::from_fn(shape.nthermo, shape.npts, |_, _| {
            1.0 / shape.nthermo as f64
        });
        let jac = BatchedMats::from_fn(d, d, total, |_, i, j| if i == j { 1.0 } else { 0.0 });
        let det = vec![1.0; total];
        let hmin = vec![1.0; total];
        let rho0detj0 = vec![1.0; total]; // rho = 1 everywhere
        let mut sigma = BatchedMats::zeros(d, d, total);
        let mut inv_dt = vec![0.0; total];
        kernel.compute(
            shape, &e_coeffs, &thermo_vals, grad_v, &jac, &det, &hmin, &rho0detj0, consts,
            &mut sigma, &mut inv_dt,
        );
        (sigma, inv_dt)
    }

    #[test]
    fn static_gas_gives_pure_pressure() {
        // No motion: sigma = -p I with p = (gamma-1) rho e.
        let (shape, consts) = uniform_setup(2, 3);
        let k = StressKernel { workspace: Workspace::Registers, use_viscosity: true };
        let grad_v = BatchedMats::zeros(2, 2, shape.total_points());
        let (sigma, inv_dt) = run_compute(&shape, &consts, &k, 2.5, &grad_v);
        let p_expect = 0.4 * 1.0 * 2.5;
        for pt in 0..shape.total_points() {
            let s = sigma.mat(pt);
            assert!((s[0] + p_expect).abs() < 1e-12);
            assert!((s[3] + p_expect).abs() < 1e-12);
            assert!(s[1].abs() < 1e-12 && s[2].abs() < 1e-12);
        }
        // inv_dt = cs/h_min + 2.5 q_lin/(rho h_min^2): at mu = 0 the smooth
        // compression switch is fully on (matching the reference
        // implementation), so the linear viscosity enters the dt control
        // even though sigma is untouched (it multiplies sym(grad v) = 0).
        let cs = (1.4 * 0.4 * 2.5_f64).sqrt();
        let h_min = 1.0 / shape.order as f64;
        let q_lin = 0.5 * 1.0 * 0.1 * cs; // 0.5 rho h0 cs
        let expect = cs / h_min + 2.5 * q_lin / (h_min * h_min);
        for &v in &inv_dt {
            assert!((v - expect).abs() < 1e-10, "{v} vs {expect}");
        }
    }

    #[test]
    fn uniform_compression_activates_viscosity() {
        // grad v = -I (isotropic compression): mu < 0, both q1 and q2 terms
        // fire, sigma gains a negative (compressive) viscous part.
        let (shape, consts) = uniform_setup(2, 2);
        let k = StressKernel { workspace: Workspace::Registers, use_viscosity: true };
        let grad_v = BatchedMats::from_fn(2, 2, shape.total_points(), |_, i, j| {
            if i == j { -1.0 } else { 0.0 }
        });
        let (sigma, _) = run_compute(&shape, &consts, &k, 1.0, &grad_v);
        let p_eos = 0.4;
        for pt in 0..shape.total_points() {
            let s = sigma.mat(pt);
            // sigma_xx = -p + q * (-1) < -p.
            assert!(s[0] < -p_eos, "sigma_xx {} should include viscosity", s[0]);
        }
    }

    #[test]
    fn expansion_has_no_linear_viscosity() {
        // grad v = +I (expansion): mu > 0, linear term off; only the
        // quadratic |mu| term remains (small for small h).
        let (shape, consts) = uniform_setup(2, 2);
        let k = StressKernel { workspace: Workspace::Registers, use_viscosity: true };
        let grad_v = BatchedMats::from_fn(2, 2, shape.total_points(), |_, i, j| {
            if i == j { 1.0 } else { 0.0 }
        });
        let (sigma, _) = run_compute(&shape, &consts, &k, 1.0, &grad_v);
        // Quadratic term: q = 2 rho h^2 |mu| = 2 * 1 * 0.01 * 1 = 0.02.
        let p_eos = 0.4;
        for pt in 0..shape.total_points() {
            let s = sigma.mat(pt);
            assert!((s[0] - (-p_eos + 0.02)).abs() < 1e-10, "{}", s[0]);
        }
    }

    #[test]
    fn viscosity_off_reduces_to_eos() {
        let (shape, consts) = uniform_setup(3, 1);
        let k = StressKernel { workspace: Workspace::Registers, use_viscosity: false };
        let grad_v = BatchedMats::from_fn(3, 3, shape.total_points(), |p, i, j| {
            ((p + i * 3 + j) as f64 * 0.1).sin()
        });
        let (sigma, _) = run_compute(&shape, &consts, &k, 1.0, &grad_v);
        for pt in 0..shape.total_points() {
            let s = sigma.mat(pt);
            for i in 0..3 {
                for j in 0..3 {
                    let expect = if i == j { -0.4 } else { 0.0 };
                    assert!((s[i + j * 3] - expect).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn negative_energy_clamped() {
        let (shape, consts) = uniform_setup(2, 1);
        let k = StressKernel { workspace: Workspace::Registers, use_viscosity: false };
        let grad_v = BatchedMats::zeros(2, 2, shape.total_points());
        let (sigma, inv_dt) = run_compute(&shape, &consts, &k, -5.0, &grad_v);
        for pt in 0..shape.total_points() {
            assert_eq!(sigma.mat(pt)[0], 0.0, "pressure must clamp at e = 0");
        }
        // cs = 0 and no viscosity -> inv_dt = 0 (no wave speed).
        assert!(inv_dt.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn shear_flow_viscosity_is_symmetric() {
        // Pure shear: sigma must remain symmetric (viscosity uses sym(L)).
        let (shape, consts) = uniform_setup(3, 1);
        let k = StressKernel { workspace: Workspace::Registers, use_viscosity: true };
        let grad_v = BatchedMats::from_fn(3, 3, shape.total_points(), |_, i, j| {
            if i == 0 && j == 1 { 2.0 } else { 0.0 }
        });
        let (sigma, _) = run_compute(&shape, &consts, &k, 1.0, &grad_v);
        for pt in 0..shape.total_points() {
            let s = sigma.mat(pt);
            for i in 0..3 {
                for j in 0..3 {
                    assert!((s[i + j * 3] - s[j + i * 3]).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn stronger_compression_raises_inv_dt() {
        let (shape, consts) = uniform_setup(2, 1);
        let k = StressKernel { workspace: Workspace::Registers, use_viscosity: true };
        let weak = BatchedMats::from_fn(2, 2, shape.total_points(), |_, i, j| {
            if i == j { -0.5 } else { 0.0 }
        });
        let strong = BatchedMats::from_fn(2, 2, shape.total_points(), |_, i, j| {
            if i == j { -5.0 } else { 0.0 }
        });
        let (_, dt_weak) = run_compute(&shape, &consts, &k, 1.0, &weak);
        let (_, dt_strong) = run_compute(&shape, &consts, &k, 1.0, &strong);
        assert!(dt_strong[0] > dt_weak[0]);
    }

    #[test]
    fn smooth_step_properties() {
        assert_eq!(smooth_step_01(-1.0, 1e-12), 0.0);
        assert_eq!(smooth_step_01(1.0, 1e-12), 1.0);
        let eps = 1.0;
        let mid = smooth_step_01(0.5, eps);
        assert!(mid > 0.0 && mid < 1.0);
        assert!((smooth_step_01(0.5, eps) - 0.5).abs() < 1e-12); // odd symmetry at midpoint
    }
}
