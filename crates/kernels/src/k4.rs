//! Kernel 4 — `kernel_Phi_sigma_hat_z`: assembles the columns of `A_z`
//! from the transformed stress.
//!
//! With `S_{z,k} = σ̂(q̂_k) adj(J_z(q̂_k))^T` (from kernel 6; note
//! `|J| J^{-T} = adj(J)^T`), eq. (5) becomes, for the vector basis function
//! with component `c` and scalar index `m`:
//!
//! ```text
//! (A_z)_{(c,m), k} = α_k (S_{z,k} Ĝ_{m,k})_c
//! ```
//!
//! where `Ĝ_{m,k} = ∇̂ŵ_m(q̂_k)` comes from the constant gradient table.
//! Table 3: num A = zones * points (the `S` matrices), num B = points (the
//! gradient-table blocks), num C = zones * points (the `A_z` columns). The
//! variant/tuning story mirrors kernel 3.

use blast_la::{BatchedMats, DMatrix};
use gpu_sim::{GpuDevice, GpuError, KernelStats, LaunchConfig, Traffic};
use rayon::prelude::*;

use crate::shapes::ProblemShape;
use crate::GemmVariant;

/// Kernel 4: `A_z` column assembly.
#[derive(Clone, Copy, Debug)]
pub struct AzKernel {
    /// Optimization variant (v1 global, v2 shared, v3 tuned multi-`A`).
    pub variant: GemmVariant,
    /// Points packed per thread block (v3 tuning knob).
    pub pts_per_block: u32,
}

impl AzKernel {
    /// Table 2 kernel name.
    pub const NAME: &'static str = "kernel_Phi_sigma_hat_z";

    /// Tuned default.
    pub fn tuned() -> Self {
        Self { variant: GemmVariant::V3, pts_per_block: 8 }
    }

    fn pts_per_block(&self) -> u32 {
        match self.variant {
            GemmVariant::V1 | GemmVariant::V2 => 1,
            GemmVariant::V3 => self.pts_per_block.max(1),
        }
    }

    /// Launch configuration.
    pub fn config(&self, shape: &ProblemShape) -> LaunchConfig {
        let np = self.pts_per_block();
        let grid = (shape.total_points() as u32).div_ceil(np);
        let threads = (np * 64).clamp(64, 512);
        let shared = match self.variant {
            GemmVariant::V1 => 0,
            GemmVariant::V2 | GemmVariant::V3 => {
                // S matrices for the block + one gradient-table chunk.
                np * (shape.dim * shape.dim * 8) as u32
                    + (shape.nkin * shape.dim * 8) as u32
            }
        };
        LaunchConfig::new(grid, threads, shared, 36)
    }

    /// Declared traffic.
    pub fn traffic(&self, shape: &ProblemShape) -> Traffic {
        let n = shape.total_points() as f64;
        let d = shape.dim as f64;
        let nkin = shape.nkin as f64;
        let flops = n * nkin * 2.0 * d * d;
        let s_read = n * d * d * 8.0;
        let az_write = n * d * nkin * 8.0;
        let table = (shape.nkin * shape.dim * shape.npts * 8) as f64;
        let blocks = (shape.total_points() as f64 / self.pts_per_block() as f64).ceil();
        match self.variant {
            // v1: gradient table re-read from global memory by every block.
            GemmVariant::V1 => Traffic {
                flops,
                dram_bytes: s_read + az_write + table * (1.0 + 0.4 * (blocks / shape.npts as f64)),
                l2_bytes: table * 0.6 * (blocks / shape.npts as f64),
                ..Default::default()
            },
            GemmVariant::V2 | GemmVariant::V3 => Traffic {
                flops,
                dram_bytes: s_read + az_write + table,
                l2_bytes: table * (blocks / shape.npts as f64),
                shared_bytes: flops * 8.0 * 0.5,
                ..Default::default()
            },
        }
    }

    /// Pure computation.
    ///
    /// `s` holds `S_{z,k}` per point, `grads[g]` the `nkin x npts` gradient
    /// tables, `alpha` the quadrature weights. Output `az` is a batch of
    /// `nvdof x npts` matrices, one per zone, with component-major row
    /// indexing `i = c * nkin + m`.
    pub fn compute(
        shape: &ProblemShape,
        s: &BatchedMats,
        grads: &[DMatrix],
        alpha: &[f64],
        az: &mut BatchedMats,
    ) {
        let d = shape.dim;
        let nkin = shape.nkin;
        let npts = shape.npts;
        assert_eq!(s.count(), shape.total_points());
        assert_eq!(s.shape(), (d, d));
        assert_eq!(grads.len(), d);
        assert_eq!(alpha.len(), npts);
        assert_eq!(az.count(), shape.zones);
        assert_eq!(az.shape(), (shape.nvdof(), npts));

        let stride = d * d;
        az.par_mats_mut().for_each(|(z, az_z)| {
            let nvdof = d * nkin;
            for k in 0..npts {
                let sp = &s.as_slice()[(z * npts + k) * stride..(z * npts + k + 1) * stride];
                let ak = alpha[k];
                for m in 0..nkin {
                    // g_vec = Ĝ_{m,k}; y = S g_vec.
                    let mut y = [0.0f64; 3];
                    for c in 0..d {
                        let mut acc = 0.0;
                        for g in 0..d {
                            acc += sp[c + g * d] * grads[g][(m, k)];
                        }
                        y[c] = acc;
                    }
                    for c in 0..d {
                        az_z[(c * nkin + m) + k * nvdof] = ak * y[c];
                    }
                }
            }
        });
    }

    /// Launches on the simulated device.
    pub fn run(
        &self,
        dev: &GpuDevice,
        shape: &ProblemShape,
        s: &BatchedMats,
        grads: &[DMatrix],
        alpha: &[f64],
        az: &mut BatchedMats,
    ) -> Result<KernelStats, GpuError> {
        let cfg = self.config(shape);
        let traffic = self.traffic(shape);
        let (_, stats) = dev.launch(Self::NAME, &cfg, &traffic, || {
            Self::compute(shape, s, grads, alpha, az);
        })?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceCatalog;
    

    fn setup(dim: usize) -> (ProblemShape, BatchedMats, Vec<DMatrix>, Vec<f64>) {
        let shape = ProblemShape::new(dim, 1, 3);
        let s = BatchedMats::from_fn(dim, dim, shape.total_points(), |z, i, j| {
            ((z + i * 2 + j) as f64 * 0.31).cos()
        });
        let grads: Vec<DMatrix> = (0..dim)
            .map(|g| {
                DMatrix::from_fn(shape.nkin, shape.npts, |m, k| {
                    ((g * 13 + m * 5 + k) as f64 * 0.17).sin()
                })
            })
            .collect();
        let alpha: Vec<f64> = (0..shape.npts).map(|k| 0.1 + 0.01 * k as f64).collect();
        (shape, s, grads, alpha)
    }

    #[test]
    fn matches_direct_formula_2d() {
        let (shape, s, grads, alpha) = setup(2);
        let mut az = BatchedMats::zeros(shape.nvdof(), shape.npts, shape.zones);
        AzKernel::compute(&shape, &s, &grads, &alpha, &mut az);
        let d = 2;
        for z in 0..shape.zones {
            for k in 0..shape.npts {
                let sp = s.mat(z * shape.npts + k);
                for m in 0..shape.nkin {
                    for c in 0..d {
                        let mut expect = 0.0;
                        for g in 0..d {
                            expect += sp[c + g * d] * grads[g][(m, k)];
                        }
                        expect *= alpha[k];
                        let got = az.get(z, c * shape.nkin + m, k);
                        assert!((got - expect).abs() < 1e-13, "z={z} k={k} m={m} c={c}");
                    }
                }
            }
        }
    }

    #[test]
    fn identity_stress_projects_gradients() {
        // S = I: A_z entries are alpha_k * Ĝ components.
        let (shape, _, grads, alpha) = setup(3);
        let s = BatchedMats::from_fn(3, 3, shape.total_points(), |_, i, j| {
            if i == j { 1.0 } else { 0.0 }
        });
        let mut az = BatchedMats::zeros(shape.nvdof(), shape.npts, shape.zones);
        AzKernel::compute(&shape, &s, &grads, &alpha, &mut az);
        for k in 0..shape.npts {
            for m in 0..shape.nkin {
                for c in 0..3 {
                    let got = az.get(0, c * shape.nkin + m, k);
                    let expect = alpha[k] * grads[c][(m, k)];
                    assert!((got - expect).abs() < 1e-13);
                }
            }
        }
    }

    #[test]
    fn variants_identical_and_ordered() {
        let (shape, s, grads, alpha) = setup(2);
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let mut results = Vec::new();
        let mut times = Vec::new();
        for k in [
            AzKernel { variant: GemmVariant::V1, pts_per_block: 1 },
            AzKernel { variant: GemmVariant::V2, pts_per_block: 1 },
            AzKernel::tuned(),
        ] {
            let mut az = BatchedMats::zeros(shape.nvdof(), shape.npts, shape.zones);
            k.run(&dev, &shape, &s, &grads, &alpha, &mut az).expect("no faults injected");
            results.push(az);
            // Model at realistic scale for the ordering check.
            let big = ProblemShape::new(3, 2, 4096);
            times.push(dev.model_kernel(&k.config(&big), &k.traffic(&big)).time_s);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
        assert!(times[1] < times[0], "v2 {} !< v1 {}", times[1], times[0]);
        assert!(times[2] <= times[1], "v3 {} !<= v2 {}", times[2], times[1]);
    }

    #[test]
    fn az_shape_matches_paper() {
        // Q2-Q1 3D: A_z is 81 x 64 per zone.
        let shape = ProblemShape::new(3, 2, 10);
        let az = BatchedMats::zeros(shape.nvdof(), shape.npts, shape.zones);
        assert_eq!(az.shape(), (81, 64));
    }
}
