//! Problem shapes: the operand dimensions every kernel derives its launch
//! configuration and traffic from.

/// Sizes of one `Q_k`-`Q_{k-1}` corner-force problem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProblemShape {
    /// Spatial dimension (2 or 3).
    pub dim: usize,
    /// Finite element order `k` of the kinematic basis.
    pub order: usize,
    /// Number of zones in this task's subdomain.
    pub zones: usize,
    /// Quadrature points per zone (`(2k)^dim`).
    pub npts: usize,
    /// Scalar kinematic basis functions per zone (`(k+1)^dim`).
    pub nkin: usize,
    /// Thermodynamic basis functions per zone (`k^dim`).
    pub nthermo: usize,
}

impl ProblemShape {
    /// Builds the shape of a `Q_k`-`Q_{k-1}` method on `zones` zones.
    pub fn new(dim: usize, order: usize, zones: usize) -> Self {
        assert!(dim == 2 || dim == 3, "only 2D and 3D are supported");
        assert!(order >= 1, "Q_k-Q_{{k-1}} needs k >= 1");
        let p = |b: usize| b.pow(dim as u32);
        Self {
            dim,
            order,
            zones,
            npts: p(2 * order),
            nkin: p(order + 1),
            nthermo: p(order),
        }
    }

    /// Vector kinematic DOFs per zone (`dim * nkin`) — the row count of
    /// `A_z` and `F_z`.
    pub fn nvdof(&self) -> usize {
        self.dim * self.nkin
    }

    /// Total quadrature points in the subdomain.
    pub fn total_points(&self) -> usize {
        self.zones * self.npts
    }

    /// Table 3 row: `(num A, num B, num C)` matrices for kernels 3, 4, 7.
    pub fn table3_row(&self, kernel: u32) -> (usize, usize, usize) {
        match kernel {
            3 => (self.zones, self.npts, self.zones * self.npts),
            4 => (self.zones * self.npts, self.npts, self.zones * self.npts),
            7 => (self.zones, 1, self.zones),
            _ => panic!("Table 3 covers kernels 3, 4 and 7"),
        }
    }

    /// Bytes of the `(v, e, x)` state shipped host-to-device per evaluation
    /// (§3.1.2) for this subdomain, assuming non-shared DOF counting
    /// (upper bound: `zones * per-zone DOFs`).
    pub fn state_bytes_upper(&self) -> usize {
        let vdofs = self.zones * self.nvdof();
        let edofs = self.zones * self.nthermo;
        (2 * vdofs + edofs) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q2q1_3d_matches_paper() {
        // "ŵ_i(q̂_k) is 81 x 64 for Q2-Q1" and Table 4's 81x8 F_z matrices.
        let s = ProblemShape::new(3, 2, 4096);
        assert_eq!(s.nvdof(), 81);
        assert_eq!(s.npts, 64);
        assert_eq!(s.nthermo, 8);
    }

    #[test]
    fn q4q3_3d_matches_paper() {
        // "375 x 512 for Q4-Q3 finite elements in 3D".
        let s = ProblemShape::new(3, 4, 16 * 16 * 16);
        assert_eq!(s.nvdof(), 375);
        assert_eq!(s.npts, 512);
        assert_eq!(s.nthermo, 64);
    }

    #[test]
    fn table3_rows() {
        let s = ProblemShape::new(3, 2, 100);
        assert_eq!(s.table3_row(3), (100, 64, 6400));
        assert_eq!(s.table3_row(4), (6400, 64, 6400));
        assert_eq!(s.table3_row(7), (100, 1, 100));
    }

    #[test]
    #[should_panic(expected = "Table 3 covers")]
    fn table3_other_kernels_panic() {
        ProblemShape::new(2, 2, 1).table3_row(5);
    }

    #[test]
    fn q3q2_2d() {
        let s = ProblemShape::new(2, 3, 10);
        assert_eq!(s.nkin, 16);
        assert_eq!(s.nthermo, 9);
        assert_eq!(s.npts, 36);
        assert_eq!(s.nvdof(), 32);
    }

    #[test]
    fn state_bytes_scale_with_zones() {
        let a = ProblemShape::new(3, 2, 100);
        let b = ProblemShape::new(3, 2, 200);
        assert_eq!(2 * a.state_bytes_upper(), b.state_bytes_upper());
    }
}
