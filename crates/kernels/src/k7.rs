//! Kernel 7 — `kernel_loop_zones`: the per-zone corner-force product
//! `F_z = A_z B^T`.
//!
//! "One thread block works on one zone. Each thread block does a
//! matrix-matrix transpose multiplication ... this kernel can also be
//! expressed as a batched DGEMM, with the number of batches being the
//! number of zones." `B` (`nthermo x npts`) is shared by every zone, so:
//!
//! - **v1** loads both `A_z` and `B` straight from global memory;
//! - **v2** stages `A_z` in shared memory and reads `B` from constant
//!   memory ("since B is globally shared by all thread blocks");
//! - **v3** adds column **blocking**: dividing `A_z` into 1D column blocks
//!   cuts the shared memory per block, letting more blocks reside per SM —
//!   "blocking can deliver a second benefit [on GPU]: ... enhance the
//!   parallelism." The block size is autotuned.

use blast_la::{BatchedMats, DMatrix};
use gpu_sim::{GpuDevice, GpuError, KernelStats, LaunchConfig, Traffic};
use rayon::prelude::*;

use crate::shapes::ProblemShape;
use crate::GemmVariant;

/// Kernel 7: batched `F_z = A_z B^T` over zones.
#[derive(Clone, Copy, Debug)]
pub struct FzKernel {
    /// Optimization variant.
    pub variant: GemmVariant,
    /// Column block size for v3 (autotuned).
    pub col_block: u32,
}

impl FzKernel {
    /// Table 2 kernel name.
    pub const NAME: &'static str = "kernel_loop_zones";

    /// Tuned default.
    pub fn tuned() -> Self {
        Self { variant: GemmVariant::V3, col_block: 16 }
    }

    /// Launch configuration.
    pub fn config(&self, shape: &ProblemShape) -> LaunchConfig {
        let nvdof = shape.nvdof() as u32;
        let npts = shape.npts as u32;
        let grid = shape.zones as u32;
        let threads = 256;
        let shared = match self.variant {
            GemmVariant::V1 => 0,
            // Whole A_z staged per block: nvdof x npts doubles (this is
            // what chokes residency and motivates v3's blocking).
            GemmVariant::V2 => (nvdof * npts * 8).min(48 * 1024),
            // Column-blocked: only `col_block` columns of A_z at a time.
            GemmVariant::V3 => nvdof * self.col_block.max(1) * 8,
        };
        LaunchConfig::new(grid, threads, shared, 32)
    }

    /// Declared traffic.
    pub fn traffic(&self, shape: &ProblemShape) -> Traffic {
        let z = shape.zones as f64;
        let nvdof = shape.nvdof() as f64;
        let npts = shape.npts as f64;
        let nth = shape.nthermo as f64;
        let flops = z * 2.0 * nvdof * npts * nth;
        let az_bytes = z * nvdof * npts * 8.0;
        let b_bytes = nth * npts * 8.0;
        let fz_bytes = z * nvdof * nth * 8.0;
        match self.variant {
            // v1: every output element walks a row of A_z and a row of B in
            // global memory — A_z is re-read once per thermodynamic basis
            // function with no on-chip reuse.
            GemmVariant::V1 => Traffic {
                flops,
                dram_bytes: az_bytes * nth + fz_bytes + z * b_bytes,
                l2_bytes: z * b_bytes * 0.5,
                ..Default::default()
            },
            // v2/v3: A_z read once from DRAM, streamed through shared;
            // B lives in constant memory (L2-class traffic per zone).
            GemmVariant::V2 | GemmVariant::V3 => Traffic {
                flops,
                dram_bytes: az_bytes + fz_bytes + b_bytes,
                l2_bytes: z * b_bytes,
                shared_bytes: az_bytes + flops * 8.0 * 0.25,
                ..Default::default()
            },
        }
    }

    /// Pure computation: `fz[z] = az[z] * b^T` (batched; `b` is
    /// `nthermo x npts`, shared by all zones).
    pub fn compute(shape: &ProblemShape, az: &BatchedMats, b: &DMatrix, fz: &mut BatchedMats) {
        let nvdof = shape.nvdof();
        let npts = shape.npts;
        let nth = shape.nthermo;
        assert_eq!(az.shape(), (nvdof, npts));
        assert_eq!(az.count(), shape.zones);
        assert_eq!(b.shape(), (nth, npts));
        assert_eq!(fz.shape(), (nvdof, nth));
        assert_eq!(fz.count(), shape.zones);

        let sa = az.stride();
        fz.par_mats_mut().for_each(|(z, fz_z)| {
            let az_z = &az.as_slice()[z * sa..(z + 1) * sa];
            // F = A B^T: A (nvdof x npts) col-major, B (nth x npts).
            blast_la::dense::gemm_nt_raw(nvdof, nth, npts, 1.0, az_z, b.as_slice(), 0.0, fz_z);
        });
    }

    /// Launches on the simulated device.
    pub fn run(
        &self,
        dev: &GpuDevice,
        shape: &ProblemShape,
        az: &BatchedMats,
        b: &DMatrix,
        fz: &mut BatchedMats,
    ) -> Result<KernelStats, GpuError> {
        let cfg = self.config(shape);
        let traffic = self.traffic(shape);
        let (_, stats) = dev.launch(Self::NAME, &cfg, &traffic, || {
            Self::compute(shape, az, b, fz);
        })?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceCatalog;
    use blast_la::dense::gemm_nt;
    

    fn setup(zones: usize) -> (ProblemShape, BatchedMats, DMatrix) {
        let shape = ProblemShape::new(2, 2, zones);
        let az = BatchedMats::from_fn(shape.nvdof(), shape.npts, zones, |z, i, j| {
            ((z * 31 + i * 7 + j) as f64 * 0.11).sin()
        });
        let b = DMatrix::from_fn(shape.nthermo, shape.npts, |i, j| {
            ((i * 3 + j) as f64 * 0.23).cos()
        });
        (shape, az, b)
    }

    #[test]
    fn matches_dense_gemm_nt() {
        let (shape, az, b) = setup(4);
        let mut fz = BatchedMats::zeros(shape.nvdof(), shape.nthermo, 4);
        FzKernel::compute(&shape, &az, &b, &mut fz);
        for z in 0..4 {
            let a = DMatrix::from_col_major(shape.nvdof(), shape.npts, az.mat(z).to_vec());
            let mut expect = DMatrix::zeros(shape.nvdof(), shape.nthermo);
            gemm_nt(1.0, &a, &b, 0.0, &mut expect);
            for i in 0..shape.nvdof() {
                for j in 0..shape.nthermo {
                    assert!((fz.get(z, i, j) - expect[(i, j)]).abs() < 1e-13);
                }
            }
        }
    }

    #[test]
    fn fz_shape_is_81x8_for_q2q1_3d() {
        // Table 4: "each small matrix is 81 by 8".
        let shape = ProblemShape::new(3, 2, 1);
        let fz = BatchedMats::zeros(shape.nvdof(), shape.nthermo, 1);
        assert_eq!(fz.shape(), (81, 8));
    }

    #[test]
    fn variant_ordering_v3_best() {
        let shape = ProblemShape::new(3, 2, 4096);
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let t = |k: FzKernel| dev.model_kernel(&k.config(&shape), &k.traffic(&shape)).time_s;
        let t1 = t(FzKernel { variant: GemmVariant::V1, col_block: 0 });
        let t2 = t(FzKernel { variant: GemmVariant::V2, col_block: 0 });
        let t3 = t(FzKernel::tuned());
        assert!(t2 < t1, "v2 {t2} !< v1 {t1}");
        assert!(t3 < t2, "v3 {t3} !< v2 {t2}");
        // "v2 is a substantial improvement": at least 2x over v1.
        assert!(t1 / t2 > 2.0, "v1/v2 = {}", t1 / t2);
    }

    #[test]
    fn blocking_raises_occupancy() {
        // v2 stages all of A_z (up to 48 KB): 1 block/SM. v3's column
        // blocking shrinks the footprint and lifts residency.
        let shape = ProblemShape::new(3, 2, 4096);
        let spec = DeviceCatalog::gpu("k20");
        let occ2 = gpu_sim::occupancy(&spec, &FzKernel { variant: GemmVariant::V2, col_block: 0 }.config(&shape));
        let occ3 = gpu_sim::occupancy(&spec, &FzKernel::tuned().config(&shape));
        assert!(occ3.fraction > occ2.fraction, "{} vs {}", occ3.fraction, occ2.fraction);
    }

    #[test]
    fn col_block_tuning_has_tradeoff() {
        // Very small blocks re-read; very large blocks kill occupancy —
        // there is an interior optimum for the autotuner to find.
        let shape = ProblemShape::new(3, 4, 512); // Q4-Q3: big A_z
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let mut times = Vec::new();
        for cb in [1u32, 4, 8, 16, 32, 64] {
            let k = FzKernel { variant: GemmVariant::V3, col_block: cb };
            let cfg = k.config(&shape);
            if gpu_sim::occupancy(dev.spec(), &cfg).fraction == 0.0 {
                continue;
            }
            times.push(dev.model_kernel(&cfg, &k.traffic(&shape)).time_s);
        }
        assert!(times.len() >= 3, "most configs must be feasible");
    }

    #[test]
    fn zero_az_gives_zero_force() {
        let (shape, _, b) = setup(2);
        let az = BatchedMats::zeros(shape.nvdof(), shape.npts, 2);
        let mut fz = BatchedMats::from_fn(shape.nvdof(), shape.nthermo, 2, |_, _, _| 9.9);
        FzKernel::compute(&shape, &az, &b, &mut fz);
        assert!(fz.as_slice().iter().all(|&x| x == 0.0));
    }
}
