//! Kernel 3 — `kernel_PzVz_Phi_F`: custom batched DGEMM evaluating
//! `∇̂v̂(q̂_k)` and `J_z(q̂_k)`.
//!
//! Per zone `z` and point `k` it computes the `DIM x DIM` product
//! `C_{z,k} = Coef_z * Ĝ_k`, where `Coef_z` (`DIM x nkin`) gathers the
//! zone's H1 vector coefficients (positions for `J`, velocities for `∇̂v̂`)
//! and `Ĝ_k` (`nkin x DIM`) is the k-th block of the constant gradient
//! table. Table 3: num A = zones, num B = points, num C = zones * points —
//! "the number of matrices B is much smaller compared to that of A", which
//! drives the optimization story:
//!
//! - **v1** reads `B` through the texture cache ("we hope they fit the
//!   cache"), `A` through shared memory;
//! - **v2** stages `B` in shared memory too ("reading B via cached texture
//!   memory is still not as fast as shared memory");
//! - **v3** additionally packs several `A` matrices per thread block, which
//!   raises occupancy *and* amortizes each `B` load across more zones; the
//!   pack count is autotuned (Fig. 5: 60% of the theoretical batched-DGEMM
//!   peak on K20).

use blast_la::{BatchedMats, DMatrix};
use gpu_sim::{GpuDevice, GpuError, KernelStats, LaunchConfig, Traffic};
use rayon::prelude::*;

use crate::shapes::ProblemShape;
use crate::GemmVariant;

/// Kernel 3: coefficient-gradient batched DGEMM.
#[derive(Clone, Copy, Debug)]
pub struct CoefGradKernel {
    /// Optimization variant.
    pub variant: GemmVariant,
    /// Zones (A matrices) packed per thread block — the Fig. 5 tuning knob.
    /// Only meaningful for `V3`; v1/v2 process one zone per block.
    pub zones_per_block: u32,
}

impl CoefGradKernel {
    /// Kernel name as in Table 2.
    pub const NAME: &'static str = "kernel_PzVz_Phi_F";

    /// Tuned default (the autotuner refines this per order).
    pub fn tuned() -> Self {
        Self { variant: GemmVariant::V3, zones_per_block: 8 }
    }

    fn zones_per_block(&self) -> u32 {
        match self.variant {
            GemmVariant::V1 | GemmVariant::V2 => 1,
            GemmVariant::V3 => self.zones_per_block.max(1),
        }
    }

    /// Bytes of the shared gradient table (`B`: nkin x DIM per point).
    fn table_bytes(shape: &ProblemShape) -> f64 {
        (shape.nkin * shape.dim * shape.npts * 8) as f64
    }

    /// Launch configuration for `shape`.
    pub fn config(&self, shape: &ProblemShape) -> LaunchConfig {
        let na = self.zones_per_block();
        let grid = (shape.zones as u32).div_ceil(na);
        // One warp-friendly thread per (zone-in-block, point) tile.
        let threads = (na * 64).clamp(64, 512);
        let coef_bytes = na * (shape.dim * shape.nkin * 8) as u32;
        let shared = match self.variant {
            // v1: only A staged in shared.
            GemmVariant::V1 => coef_bytes,
            // v2/v3: A plus a double-buffered chunk of B.
            GemmVariant::V2 | GemmVariant::V3 => {
                coef_bytes + 2 * (shape.nkin * shape.dim * 8) as u32
            }
        };
        LaunchConfig::new(grid, threads, shared, 40)
    }

    /// Declared traffic for one invocation over the whole subdomain.
    pub fn traffic(&self, shape: &ProblemShape) -> Traffic {
        let z = shape.zones as f64;
        let d = shape.dim as f64;
        let flops = z * shape.npts as f64 * 2.0 * d * d * shape.nkin as f64;
        let coef = z * (d * shape.nkin as f64 * 8.0 + shape.nkin as f64 * 4.0);
        let table = Self::table_bytes(shape);
        let out = z * shape.npts as f64 * d * d * 8.0;
        let blocks = (shape.zones as f64 / self.zones_per_block() as f64).ceil();
        match self.variant {
            // v1: the texture cache misses on about half of each block's B
            // re-reads at these working-set sizes, and misses fall through
            // to DRAM.
            GemmVariant::V1 => Traffic {
                flops,
                dram_bytes: coef + out + table * (1.0 + 0.5 * (blocks - 1.0)),
                l2_bytes: table * 0.5 * (blocks - 1.0).max(0.0),
                shared_bytes: coef,
                ..Default::default()
            },
            // v2/v3: B loaded once per block (first touch from DRAM, later
            // blocks from L2); operands stream through shared memory with
            // register-level reuse inside the tile.
            GemmVariant::V2 | GemmVariant::V3 => Traffic {
                flops,
                dram_bytes: coef + out + table,
                l2_bytes: table * (blocks - 1.0).max(0.0),
                shared_bytes: flops * 8.0 * 0.125,
                ..Default::default()
            },
        }
    }

    /// Pure computation: gathers `Coef_z` from the global component-major
    /// vector `u` (via `zone_dofs`, `nkin` indices per zone) and multiplies
    /// against the gradient tables (`grads[g]` is `nkin x npts`).
    ///
    /// Output: `c[(i, g)]` of batch member `z * npts + k` is
    /// `∂ u_i / ∂ x̂_g` at point `k` of zone `z`.
    pub fn compute(
        shape: &ProblemShape,
        u: &[f64],
        num_h1_dofs: usize,
        zone_dofs: &[usize],
        grads: &[DMatrix],
        c: &mut BatchedMats,
    ) {
        let d = shape.dim;
        let nkin = shape.nkin;
        let npts = shape.npts;
        assert_eq!(u.len(), d * num_h1_dofs);
        assert_eq!(zone_dofs.len(), shape.zones * nkin);
        assert_eq!(grads.len(), d);
        for g in grads {
            assert_eq!(g.shape(), (nkin, npts));
        }
        assert_eq!(c.count(), shape.total_points());
        assert_eq!(c.shape(), (d, d));

        let stride = d * d;
        let zone_stride = npts * stride;
        c.as_mut_slice()
            .par_chunks_exact_mut(zone_stride)
            .enumerate()
            .for_each(|(z, cz)| {
                let dofs = &zone_dofs[z * nkin..(z + 1) * nkin];
                for k in 0..npts {
                    let out = &mut cz[k * stride..(k + 1) * stride];
                    out.iter_mut().for_each(|v| *v = 0.0);
                    for (i, &dof) in dofs.iter().enumerate() {
                        for g in 0..d {
                            let dw = grads[g][(i, k)];
                            if dw != 0.0 {
                                for comp in 0..d {
                                    out[comp + g * d] += u[comp * num_h1_dofs + dof] * dw;
                                }
                            }
                        }
                    }
                }
            });
    }

    /// Launches the kernel on the simulated device.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        dev: &GpuDevice,
        shape: &ProblemShape,
        u: &[f64],
        num_h1_dofs: usize,
        zone_dofs: &[usize],
        grads: &[DMatrix],
        c: &mut BatchedMats,
    ) -> Result<KernelStats, GpuError> {
        let cfg = self.config(shape);
        let traffic = self.traffic(shape);
        let (_, stats) = dev.launch(Self::NAME, &cfg, &traffic, || {
            Self::compute(shape, u, num_h1_dofs, zone_dofs, grads, c);
        })?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceCatalog;
    

    /// A tiny synthetic "space": 2 zones in 1 row, Q1, with a shared face.
    fn synthetic_2d() -> (ProblemShape, Vec<usize>, Vec<DMatrix>, usize) {
        let shape = ProblemShape::new(2, 1, 2);
        // Global lattice 3 x 2 = 6 dofs; zone 0: {0,1,3,4}, zone 1: {1,2,4,5}.
        let zone_dofs = vec![0, 1, 3, 4, 1, 2, 4, 5];
        // Q1 gradient tables at the 2x2 Gauss points of [0,1]^2 — use exact
        // bilinear derivatives: w00 = (1-x)(1-y) etc. with dof order
        // (axis0 fastest): [w00, w10, w01, w11].
        let g = 0.5 - 1.0 / (2.0 * 3.0_f64.sqrt());
        let pts = [[g, g], [1.0 - g, g], [g, 1.0 - g], [1.0 - g, 1.0 - g]];
        let mut gx = DMatrix::zeros(4, 4);
        let mut gy = DMatrix::zeros(4, 4);
        for (k, p) in pts.iter().enumerate() {
            let (x, y) = (p[0], p[1]);
            gx[(0, k)] = -(1.0 - y);
            gx[(1, k)] = 1.0 - y;
            gx[(2, k)] = -y;
            gx[(3, k)] = y;
            gy[(0, k)] = -(1.0 - x);
            gy[(1, k)] = -x;
            gy[(2, k)] = 1.0 - x;
            gy[(3, k)] = x;
        }
        (shape, zone_dofs, vec![gx, gy], 6)
    }

    #[test]
    fn linear_field_gradient_exact() {
        let (shape, zone_dofs, grads, ndofs) = synthetic_2d();
        // Node coordinates of the 3x2 lattice on [0,2]x[0,1].
        let xs = [0.0, 1.0, 2.0, 0.0, 1.0, 2.0];
        let ys = [0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        // u = (3x + y, -2y): reference gradient of component i w.r.t. ref
        // axis g equals d u_i / d ref = J^T-weighted; on zone [0,1]^2 the
        // map is identity in x (zone 0), so ref grad = spatial grad.
        let mut u = vec![0.0; 2 * ndofs];
        for i in 0..ndofs {
            u[i] = 3.0 * xs[i] + ys[i];
            u[ndofs + i] = -2.0 * ys[i];
        }
        let mut c = BatchedMats::zeros(2, 2, shape.total_points());
        CoefGradKernel::compute(&shape, &u, ndofs, &zone_dofs, &grads, &mut c);
        // Zone 0 occupies [0,1]x[0,1] with unit mapping: ∇̂u = [[3,1],[0,-2]].
        for k in 0..shape.npts {
            let m = c.mat(k);
            assert!((m[0] - 3.0).abs() < 1e-12); // d u_0/d x̂
            assert!((m[1] - 0.0).abs() < 1e-12); // d u_1/d x̂
            assert!((m[2] - 1.0).abs() < 1e-12); // d u_0/d ŷ
            assert!((m[3] + 2.0).abs() < 1e-12); // d u_1/d ŷ
        }
    }

    #[test]
    fn position_field_gives_jacobian() {
        let (shape, zone_dofs, grads, ndofs) = synthetic_2d();
        let xs = [0.0, 1.0, 2.0, 0.0, 1.0, 2.0];
        let ys = [0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let mut x = vec![0.0; 2 * ndofs];
        x[..6].copy_from_slice(&xs);
        x[6..].copy_from_slice(&ys);
        let mut c = BatchedMats::zeros(2, 2, shape.total_points());
        CoefGradKernel::compute(&shape, &x, ndofs, &zone_dofs, &grads, &mut c);
        // Both zones are unit squares: J = I.
        for p in 0..shape.total_points() {
            let m = c.mat(p);
            assert!((m[0] - 1.0).abs() < 1e-12);
            assert!((m[3] - 1.0).abs() < 1e-12);
            assert!(m[1].abs() < 1e-12 && m[2].abs() < 1e-12);
        }
    }

    #[test]
    fn variants_bitwise_identical() {
        let (shape, zone_dofs, grads, ndofs) = synthetic_2d();
        let u: Vec<f64> = (0..2 * ndofs).map(|i| (i as f64 * 0.7).sin()).collect();
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let mut results = Vec::new();
        for k in [
            CoefGradKernel { variant: GemmVariant::V1, zones_per_block: 1 },
            CoefGradKernel { variant: GemmVariant::V2, zones_per_block: 1 },
            CoefGradKernel { variant: GemmVariant::V3, zones_per_block: 4 },
        ] {
            let mut c = BatchedMats::zeros(2, 2, shape.total_points());
            k.run(&dev, &shape, &u, ndofs, &zone_dofs, &grads, &mut c).expect("no faults injected");
            results.push(c);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn v3_faster_than_v2_faster_than_v1() {
        // The Fig. 7 ordering on a realistically sized 3D Q2-Q1 subdomain.
        let shape = ProblemShape::new(3, 2, 4096);
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let time = |k: CoefGradKernel| {
            let cfg = k.config(&shape);
            let traffic = k.traffic(&shape);
            dev.model_kernel(&cfg, &traffic).time_s
        };
        let t1 = time(CoefGradKernel { variant: GemmVariant::V1, zones_per_block: 1 });
        let t2 = time(CoefGradKernel { variant: GemmVariant::V2, zones_per_block: 1 });
        let t3 = time(CoefGradKernel::tuned());
        assert!(t2 < t1, "v2 {t2} !< v1 {t1}");
        assert!(t3 < t2, "v3 {t3} !< v2 {t2}");
    }

    #[test]
    fn tuning_the_pack_count_pays_off() {
        // Packing several zones per block amortizes the B loads (Fig. 5).
        // The tuner's search space spans feasible pack counts; the best one
        // must clearly beat the naive single-zone block.
        let shape = ProblemShape::new(3, 2, 4096);
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let mut times = Vec::new();
        for na in [1u32, 2, 4, 8, 16, 32] {
            let k = CoefGradKernel { variant: GemmVariant::V3, zones_per_block: na };
            let cfg = k.config(&shape);
            let occ = gpu_sim::occupancy(dev.spec(), &cfg);
            if occ.fraction == 0.0 {
                continue; // pruned by the tuner ("artificial values ... eliminated")
            }
            times.push((na, dev.model_kernel(&cfg, &k.traffic(&shape)).time_s));
        }
        assert!(times.len() >= 3, "most pack counts must be feasible");
        let best = times.iter().min_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap();
        let naive = times.iter().find(|&&(na, _)| na == 1).unwrap();
        assert!(best.0 > 1, "best pack count {} should exceed 1", best.0);
        assert!(
            naive.1 / best.1 > 1.5,
            "tuning gain {} too small",
            naive.1 / best.1
        );
    }
}
