//! Kernel 1 — `kernel_CalcAjugate_det`: per-quadrature-point adjugate,
//! determinant, and SVD-based length scale of the zone Jacobian.
//!
//! "Independent operations are performed on each quadrature point (thread).
//! Each thread implements routines for computing SVDs and eigenvalues for
//! DIM x DIM matrices." The per-thread `DIM x DIM` workspaces are the
//! subject of the Fig. 4 ablation: kept in register arrays they are free;
//! spilled to local memory every access pays DRAM bandwidth and energy.

use blast_la::{svd2, svd3, BatchedMats, SmallMat};
use gpu_sim::{GpuDevice, GpuError, KernelStats, LaunchConfig, Traffic};
use rayon::prelude::*;

use crate::shapes::ProblemShape;
use crate::Workspace;

/// Kernel 1: adjugate + determinant + minimum singular value of `J`.
#[derive(Clone, Copy, Debug)]
pub struct AdjugateDetKernel {
    /// Workspace placement (the Fig. 4 ablation knob).
    pub workspace: Workspace,
}

/// Threads per block used by the per-point kernels.
pub const POINT_KERNEL_BLOCK: u32 = 128;

impl AdjugateDetKernel {
    /// Kernel name as it appears in the paper's Table 2.
    pub const NAME: &'static str = "kernel_CalcAjugate_det";

    /// Launch configuration for `shape`.
    pub fn config(&self, shape: &ProblemShape) -> LaunchConfig {
        let count = shape.total_points() as u32;
        let grid = count.div_ceil(POINT_KERNEL_BLOCK);
        let regs = match (self.workspace, shape.dim) {
            // Register arrays: the whole workspace lives in registers.
            (Workspace::Registers, 2) => 48,
            (Workspace::Registers, _) => 110,
            // The local-memory variant keeps register pressure low.
            (Workspace::LocalMemory, 2) => 28,
            (Workspace::LocalMemory, _) => 32,
        };
        LaunchConfig::new(grid, POINT_KERNEL_BLOCK, 0, regs)
    }

    /// Declared traffic for `shape`.
    pub fn traffic(&self, shape: &ProblemShape) -> Traffic {
        let n = shape.total_points() as f64;
        let d = shape.dim as f64;
        let d2 = d * d;
        // Adjugate + det: ~2 flops per cofactor entry; SVD via eig(J^T J):
        // operation counts of the blast-la routines.
        let flops_per_pt = if shape.dim == 2 { 90.0 } else { 520.0 };
        // Useful data: read J, write adj + det + svd-min.
        let dram = n * (d2 * 8.0 + d2 * 8.0 + 16.0);
        // In the local-memory variant the workspace spills: J copy, J^T J,
        // rotation accumulators — ~3 matrices re-touched ~4 times each
        // (the L1 absorbs the hottest re-reads even when spilled).
        let local = match self.workspace {
            Workspace::Registers => 0.0,
            Workspace::LocalMemory => n * 3.0 * d2 * 8.0 * 4.0,
        };
        Traffic { flops: n * flops_per_pt, dram_bytes: dram, local_bytes: local, ..Default::default() }
    }

    /// Pure computation (shared by GPU launch body and CPU reference).
    ///
    /// Inputs: `jac` (`dim x dim`, one per point). Outputs per point: `adj`
    /// (adjugate of `J`), `det` (`|J|`), and `hmin` (minimum singular value
    /// of `J` — the reference-to-physical compression scale driving the CFL
    /// timestep as `h_min = sigma_min(J) / k` at the hydro level).
    pub fn compute(
        shape: &ProblemShape,
        jac: &BatchedMats,
        adj: &mut BatchedMats,
        det: &mut [f64],
        hmin: &mut [f64],
    ) {
        let d = shape.dim;
        assert_eq!(jac.shape(), (d, d));
        assert_eq!(jac.count(), shape.total_points());
        assert_eq!(adj.shape(), (d, d));
        assert_eq!(det.len(), shape.total_points());
        assert_eq!(hmin.len(), shape.total_points());

        let jac_data = jac.as_slice();
        let stride = d * d;
        adj.as_mut_slice()
            .par_chunks_exact_mut(stride)
            .zip(det.par_iter_mut())
            .zip(hmin.par_iter_mut())
            .enumerate()
            .for_each(|(p, ((adj_p, det_p), hmin_p))| {
                let jp = &jac_data[p * stride..(p + 1) * stride];
                if d == 2 {
                    let j = SmallMat::<2>::from_col_slice(jp);
                    j.adjugate().write_col_slice(adj_p);
                    *det_p = j.det();
                    *hmin_p = svd2(&j).min_singular();
                } else {
                    let j = SmallMat::<3>::from_col_slice(jp);
                    j.adjugate().write_col_slice(adj_p);
                    *det_p = j.det();
                    *hmin_p = svd3(&j).min_singular();
                }
            });
    }

    /// Launches the kernel on the simulated device.
    pub fn run(
        &self,
        dev: &GpuDevice,
        shape: &ProblemShape,
        jac: &BatchedMats,
        adj: &mut BatchedMats,
        det: &mut [f64],
        hmin: &mut [f64],
    ) -> Result<KernelStats, GpuError> {
        let cfg = self.config(shape);
        let traffic = self.traffic(shape);
        let (_, stats) = dev.launch(Self::NAME, &cfg, &traffic, || {
            Self::compute(shape, jac, adj, det, hmin);
        })?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceCatalog;
    use gpu_sim::GpuSpec;

    fn shape2d() -> ProblemShape {
        ProblemShape::new(2, 2, 5)
    }

    fn sample_jacobians(shape: &ProblemShape) -> BatchedMats {
        let d = shape.dim;
        BatchedMats::from_fn(d, d, shape.total_points(), |p, i, j| {
            // Diagonal-dominant, well-conditioned "mesh-like" Jacobians.
            if i == j {
                1.0 + 0.1 * ((p + i) as f64 * 0.7).sin()
            } else {
                0.15 * ((p * 3 + i * 5 + j) as f64 * 0.3).cos()
            }
        })
    }

    #[test]
    fn adjugate_det_identity_relation_2d() {
        let shape = shape2d();
        let jac = sample_jacobians(&shape);
        let mut adj = BatchedMats::zeros(2, 2, shape.total_points());
        let mut det = vec![0.0; shape.total_points()];
        let mut hmin = vec![0.0; shape.total_points()];
        AdjugateDetKernel::compute(&shape, &jac, &mut adj, &mut det, &mut hmin);
        for p in 0..shape.total_points() {
            let j = SmallMat::<2>::from_col_slice(jac.mat(p));
            let a = SmallMat::<2>::from_col_slice(adj.mat(p));
            let prod = j * a;
            assert!((prod[(0, 0)] - det[p]).abs() < 1e-13);
            assert!(prod[(0, 1)].abs() < 1e-13);
            assert!(hmin[p] > 0.0);
        }
    }

    #[test]
    fn hmin_is_min_singular_value_3d() {
        // Diagonal Jacobian: singular values are |diagonal| entries.
        let shape = ProblemShape::new(3, 1, 4);
        let n = shape.total_points();
        let h = [0.5, 0.25, 2.0];
        let jac = BatchedMats::from_fn(3, 3, n, |_, i, j| if i == j { h[i] } else { 0.0 });
        let mut adj = BatchedMats::zeros(3, 3, n);
        let mut det = vec![0.0; n];
        let mut hmin = vec![0.0; n];
        AdjugateDetKernel::compute(&shape, &jac, &mut adj, &mut det, &mut hmin);
        for p in 0..n {
            assert!((hmin[p] - 0.25).abs() < 1e-12);
            assert!((det[p] - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn compression_reduces_hmin() {
        // Compress the zone along y to 40%: hmin drops to 0.4.
        let shape = ProblemShape::new(2, 1, 1);
        let n = shape.total_points();
        let jac = BatchedMats::from_fn(2, 2, n, |_, i, j| match (i, j) {
            (0, 0) => 1.0,
            (1, 1) => 0.4,
            _ => 0.0,
        });
        let mut adj = BatchedMats::zeros(2, 2, n);
        let mut det = vec![0.0; n];
        let mut hmin = vec![0.0; n];
        AdjugateDetKernel::compute(&shape, &jac, &mut adj, &mut det, &mut hmin);
        assert!((hmin[0] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn register_variant_faster_than_local() {
        // The Fig. 4 mechanism on the simulated K20.
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let shape = ProblemShape::new(3, 2, 512);
        let jac = sample_jacobians(&shape);
        let n = shape.total_points();

        let run = |ws: Workspace| {
            let k = AdjugateDetKernel { workspace: ws };
            let mut adj = BatchedMats::zeros(3, 3, n);
            let mut det = vec![0.0; n];
            let mut hmin = vec![0.0; n];
            k.run(&dev, &shape, &jac, &mut adj, &mut det, &mut hmin).expect("no faults injected")
        };
        let reg = run(Workspace::Registers);
        let loc = run(Workspace::LocalMemory);
        assert!(loc.time_s > 1.5 * reg.time_s, "{} vs {}", loc.time_s, reg.time_s);
    }

    #[test]
    fn variants_produce_identical_results() {
        let shape = shape2d();
        let jac = sample_jacobians(&shape);
        let n = shape.total_points();
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let mut outs = Vec::new();
        for ws in [Workspace::Registers, Workspace::LocalMemory] {
            let k = AdjugateDetKernel { workspace: ws };
            let mut adj = BatchedMats::zeros(2, 2, n);
            let mut det = vec![0.0; n];
            let mut hmin = vec![0.0; n];
            k.run(&dev, &shape, &jac, &mut adj, &mut det, &mut hmin).expect("no faults injected");
            outs.push((adj, det, hmin));
        }
        assert_eq!(outs[0].0, outs[1].0);
        assert_eq!(outs[0].1, outs[1].1);
        assert_eq!(outs[0].2, outs[1].2);
    }

    #[test]
    fn fermi_cannot_hold_3d_workspace_in_registers() {
        // On C2050 (63 regs/thread max) the 3D register variant exceeds the
        // per-thread register file -> the occupancy calculator rejects it,
        // which is why the base implementation spilled on Fermi.
        let shape = ProblemShape::new(3, 2, 64);
        let k = AdjugateDetKernel { workspace: Workspace::Registers };
        let cfg = k.config(&shape);
        let occ = gpu_sim::occupancy(&GpuSpec::c2050(), &cfg);
        assert_eq!(occ.fraction, 0.0);
        // On K20 it runs fine.
        let occ_k20 = gpu_sim::occupancy(&DeviceCatalog::gpu("k20"), &cfg);
        assert!(occ_k20.fraction > 0.0);
    }
}
