//! Kernels 8 and 10 — batched DGEMV.
//!
//! Kernel 8 (`kernel_loop_zones_dv_dt`) computes the momentum right-hand
//! side `-F · 1` and kernel 10 (`kernel_dgemvt`) the energy right-hand side
//! `F^T · v`; "each thread block does a matrix-vector multiplication
//! (DGEMV) and computes part of a big vector. All thread blocks assemble
//! the result vector. The two kernels can be expressed as batched DGEMV."
//!
//! CUBLAS has **no** batched DGEMV; the recommended workaround — one
//! `cublasDgemv` per zone in its own stream — collapses under per-call
//! launch overhead (Table 4: 0.2 vs 18 GFLOP/s; see
//! [`crate::cublas_like::StreamedDgemv`]).
//!
//! These kernels also perform the local-to-global assembly: kernel 8
//! scatter-adds zone contributions into the global kinematic RHS (shared H1
//! DOFs receive several zones' contributions — on the real GPU via atomics,
//! here via a deterministic serial scatter after the parallel per-zone
//! products); kernel 10's L2 outputs are zone-local so they assemble
//! trivially.

use blast_la::BatchedMats;
use gpu_sim::{GpuDevice, GpuError, KernelStats, LaunchConfig, Traffic};
use rayon::prelude::*;

use crate::shapes::ProblemShape;

/// Kernel 8: `rhs_v = -Σ_z scatter(F_z · 1)` (momentum RHS).
#[derive(Clone, Copy, Debug, Default)]
pub struct MomentumRhsKernel;

impl MomentumRhsKernel {
    /// Table 2 kernel name.
    pub const NAME: &'static str = "kernel_loop_zones_dv_dt";

    /// Launch configuration: one block per zone.
    pub fn config(&self, shape: &ProblemShape) -> LaunchConfig {
        LaunchConfig::new(shape.zones as u32, (shape.nvdof() as u32).clamp(64, 512), 0, 24)
    }

    /// Declared traffic: read every `F_z`, write the local results, plus
    /// the scatter traffic into the global vector.
    pub fn traffic(&self, shape: &ProblemShape) -> Traffic {
        let z = shape.zones as f64;
        let nvdof = shape.nvdof() as f64;
        let nth = shape.nthermo as f64;
        Traffic {
            flops: z * 2.0 * nvdof * nth,
            dram_bytes: z * (nvdof * nth * 8.0 + nvdof * 8.0 * 2.0),
            shared_bytes: z * nvdof * 8.0,
            ..Default::default()
        }
    }

    /// Pure computation. `fz` is the corner-force batch; `zone_dofs` maps
    /// zone-local scalar kinematic DOFs to global ones (`nkin` per zone);
    /// the output `rhs` is component-major over `num_h1_dofs` and is
    /// **accumulated** (callers zero it first).
    pub fn compute(
        shape: &ProblemShape,
        fz: &BatchedMats,
        zone_dofs: &[usize],
        num_h1_dofs: usize,
        rhs: &mut [f64],
    ) {
        let mut local = Vec::new();
        Self::compute_with(shape, fz, zone_dofs, num_h1_dofs, rhs, &mut local);
    }

    /// Like [`MomentumRhsKernel::compute`], but stages the per-zone row sums
    /// in the caller-provided `local` buffer (grown once, reused across
    /// timesteps) so the hot path stays allocation-free.
    pub fn compute_with(
        shape: &ProblemShape,
        fz: &BatchedMats,
        zone_dofs: &[usize],
        num_h1_dofs: usize,
        rhs: &mut [f64],
        local: &mut Vec<f64>,
    ) {
        let d = shape.dim;
        let nkin = shape.nkin;
        let nvdof = shape.nvdof();
        let nth = shape.nthermo;
        assert_eq!(fz.shape(), (nvdof, nth));
        assert_eq!(fz.count(), shape.zones);
        assert_eq!(zone_dofs.len(), shape.zones * nkin);
        assert_eq!(rhs.len(), d * num_h1_dofs);

        // Parallel per-zone row sums (the DGEMV against the ones vector)...
        local.truncate(shape.zones * nvdof);
        local.iter_mut().for_each(|x| *x = 0.0);
        local.resize(shape.zones * nvdof, 0.0);
        local
            .par_chunks_exact_mut(nvdof)
            .enumerate()
            .for_each(|(z, out)| {
                let m = fz.mat(z);
                for j in 0..nth {
                    let col = &m[j * nvdof..(j + 1) * nvdof];
                    for (o, &v) in out.iter_mut().zip(col) {
                        *o += v;
                    }
                }
            });
        // ...then a deterministic scatter-add into shared global DOFs.
        for z in 0..shape.zones {
            let dofs = &zone_dofs[z * nkin..(z + 1) * nkin];
            let loc = &local[z * nvdof..(z + 1) * nvdof];
            for c in 0..d {
                for (m, &dof) in dofs.iter().enumerate() {
                    rhs[c * num_h1_dofs + dof] -= loc[c * nkin + m];
                }
            }
        }
    }

    /// Launches on the simulated device.
    pub fn run(
        &self,
        dev: &GpuDevice,
        shape: &ProblemShape,
        fz: &BatchedMats,
        zone_dofs: &[usize],
        num_h1_dofs: usize,
        rhs: &mut [f64],
    ) -> Result<KernelStats, GpuError> {
        let cfg = self.config(shape);
        let traffic = self.traffic(shape);
        let (_, stats) = dev.launch(Self::NAME, &cfg, &traffic, || {
            Self::compute(shape, fz, zone_dofs, num_h1_dofs, rhs);
        })?;
        Ok(stats)
    }
}

/// Kernel 10: `rhs_e = F^T · v` (energy RHS; zone-local L2 output).
#[derive(Clone, Copy, Debug, Default)]
pub struct EnergyRhsKernel;

impl EnergyRhsKernel {
    /// Table 2 kernel name.
    pub const NAME: &'static str = "kernel_dgemvt";

    /// Launch configuration: one block per zone.
    pub fn config(&self, shape: &ProblemShape) -> LaunchConfig {
        LaunchConfig::new(shape.zones as u32, (shape.nvdof() as u32).clamp(64, 512), 0, 24)
    }

    /// Declared traffic.
    pub fn traffic(&self, shape: &ProblemShape) -> Traffic {
        let z = shape.zones as f64;
        let nvdof = shape.nvdof() as f64;
        let nth = shape.nthermo as f64;
        Traffic {
            flops: z * 2.0 * nvdof * nth,
            dram_bytes: z * (nvdof * nth * 8.0 + nvdof * 8.0 + nth * 8.0),
            shared_bytes: z * nvdof * 8.0,
            ..Default::default()
        }
    }

    /// Pure computation: for each zone, gathers the local velocity from the
    /// global component-major vector `v` and computes `F_z^T v_z` into the
    /// zone's slice of the L2-global `rhs_e`.
    pub fn compute(
        shape: &ProblemShape,
        fz: &BatchedMats,
        v: &[f64],
        zone_dofs: &[usize],
        num_h1_dofs: usize,
        rhs_e: &mut [f64],
    ) {
        let d = shape.dim;
        let nkin = shape.nkin;
        let nvdof = shape.nvdof();
        let nth = shape.nthermo;
        assert_eq!(fz.shape(), (nvdof, nth));
        assert_eq!(fz.count(), shape.zones);
        assert_eq!(v.len(), d * num_h1_dofs);
        assert_eq!(rhs_e.len(), shape.zones * nth);

        rhs_e
            .par_chunks_exact_mut(nth)
            .enumerate()
            .for_each(|(z, out)| {
                let dofs = &zone_dofs[z * nkin..(z + 1) * nkin];
                let m = fz.mat(z);
                // v_z gathered on the fly (component-major local layout).
                for j in 0..nth {
                    let col = &m[j * nvdof..(j + 1) * nvdof];
                    let mut acc = 0.0;
                    for c in 0..d {
                        for (mm, &dof) in dofs.iter().enumerate() {
                            acc += col[c * nkin + mm] * v[c * num_h1_dofs + dof];
                        }
                    }
                    out[j] = acc;
                }
            });
    }

    /// Launches on the simulated device.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        dev: &GpuDevice,
        shape: &ProblemShape,
        fz: &BatchedMats,
        v: &[f64],
        zone_dofs: &[usize],
        num_h1_dofs: usize,
        rhs_e: &mut [f64],
    ) -> Result<KernelStats, GpuError> {
        let cfg = self.config(shape);
        let traffic = self.traffic(shape);
        let (_, stats) = dev.launch(Self::NAME, &cfg, &traffic, || {
            Self::compute(shape, fz, v, zone_dofs, num_h1_dofs, rhs_e);
        })?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuSpec;

    /// Two Q1 zones sharing a face (same synthetic layout as k3 tests).
    fn setup() -> (ProblemShape, Vec<usize>, usize) {
        let shape = ProblemShape::new(2, 1, 2);
        let zone_dofs = vec![0, 1, 3, 4, 1, 2, 4, 5];
        (shape, zone_dofs, 6)
    }

    #[test]
    fn momentum_rhs_row_sums_and_scatter() {
        let (shape, zone_dofs, ndofs) = setup();
        let nvdof = shape.nvdof();
        let fz = BatchedMats::from_fn(nvdof, shape.nthermo, 2, |z, i, j| {
            (z * 100 + i * 10 + j) as f64
        });
        let mut rhs = vec![0.0; 2 * ndofs];
        MomentumRhsKernel::compute(&shape, &fz, &zone_dofs, ndofs, &mut rhs);
        // Hand-check: zone 0, local kinematic dof 0, comp 0 = row 0 sum.
        let row0: f64 = (0..shape.nthermo).map(|j| fz.get(0, 0, j)).sum();
        // DOF 0 only belongs to zone 0.
        assert!((rhs[0] + row0).abs() < 1e-13);
        // Shared DOF 1: local 1 of zone 0 + local 0 of zone 1.
        let r01: f64 = (0..shape.nthermo).map(|j| fz.get(0, 1, j)).sum();
        let r10: f64 = (0..shape.nthermo).map(|j| fz.get(1, 0, j)).sum();
        assert!((rhs[1] + r01 + r10).abs() < 1e-12);
    }

    #[test]
    fn energy_rhs_matches_manual_gemv_t() {
        let (shape, zone_dofs, ndofs) = setup();
        let nvdof = shape.nvdof();
        let fz = BatchedMats::from_fn(nvdof, shape.nthermo, 2, |z, i, j| {
            ((z * 13 + i * 3 + j) as f64 * 0.21).sin()
        });
        let v: Vec<f64> = (0..2 * ndofs).map(|i| (i as f64 * 0.4).cos()).collect();
        let mut rhs_e = vec![0.0; 2 * shape.nthermo];
        EnergyRhsKernel::compute(&shape, &fz, &v, &zone_dofs, ndofs, &mut rhs_e);
        for z in 0..2 {
            let dofs = &zone_dofs[z * shape.nkin..(z + 1) * shape.nkin];
            for j in 0..shape.nthermo {
                let mut expect = 0.0;
                for c in 0..2 {
                    for (m, &dof) in dofs.iter().enumerate() {
                        expect += fz.get(z, c * shape.nkin + m, j) * v[c * ndofs + dof];
                    }
                }
                assert!((rhs_e[z * shape.nthermo + j] - expect).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn duality_energy_vs_momentum() {
        // The discrete energy-conservation identity: 1^T (F^T v) summed over
        // zones equals -v^T rhs_v where rhs_v = -scatter(F 1). This is the
        // core of Table 6's machine-precision conservation.
        let (shape, zone_dofs, ndofs) = setup();
        let nvdof = shape.nvdof();
        let fz = BatchedMats::from_fn(nvdof, shape.nthermo, 2, |z, i, j| {
            ((z * 17 + i * 5 + j * 2) as f64 * 0.13).sin()
        });
        let v: Vec<f64> = (0..2 * ndofs).map(|i| (i as f64 * 0.7).sin()).collect();

        let mut rhs_v = vec![0.0; 2 * ndofs];
        MomentumRhsKernel::compute(&shape, &fz, &zone_dofs, ndofs, &mut rhs_v);
        let mut rhs_e = vec![0.0; 2 * shape.nthermo];
        EnergyRhsKernel::compute(&shape, &fz, &v, &zone_dofs, ndofs, &mut rhs_e);

        let vt_rhs: f64 = v.iter().zip(&rhs_v).map(|(a, b)| a * b).sum();
        let ones_e: f64 = rhs_e.iter().sum();
        assert!((vt_rhs + ones_e).abs() < 1e-12, "{vt_rhs} vs {ones_e}");
    }

    #[test]
    fn kernel8_hits_table4_performance_class() {
        // Table 4 setup: 4096 batches of 81x8 on one C2050. The custom
        // kernel reaches ~18 GFLOP/s = ~50% of the 35.5 theoretical peak.
        let shape = ProblemShape::new(3, 2, 4096);
        let dev = GpuDevice::new(GpuSpec::c2050());
        let k = MomentumRhsKernel;
        let stats = dev.model_kernel(&k.config(&shape), &k.traffic(&shape));
        assert!(
            stats.gflops > 10.0 && stats.gflops < 36.0,
            "kernel 8 at {} GFLOP/s",
            stats.gflops
        );
    }

    #[test]
    fn rhs_accumulates_not_overwrites() {
        let (shape, zone_dofs, ndofs) = setup();
        let fz = BatchedMats::from_fn(shape.nvdof(), shape.nthermo, 2, |_, _, _| 1.0);
        let mut rhs = vec![5.0; 2 * ndofs];
        MomentumRhsKernel::compute(&shape, &fz, &zone_dofs, ndofs, &mut rhs);
        // Prior contents remain (accumulation semantics).
        assert!(rhs.iter().all(|&x| x != 0.0));
        assert!((rhs[0] - (5.0 - shape.nthermo as f64)).abs() < 1e-13);
    }
}
