//! Kernels 5 and 6 — `kernel_NN_dgemmBatched` / `kernel_NT_dgemmBatched`:
//! auxiliary batched DGEMM where **all matrices are `DIM x DIM`**.
//!
//! "These kernels multiply Jacobian matrices `J_z`, gradients of basis
//! functions and stress tensor values together." In the corner-force
//! pipeline, the NN form builds the spatial velocity gradient
//! `∇v = ∇̂v̂ · adj(J)/|J|` and the NT form builds `S = σ̂ · adj(J)^T`
//! (since `|J| J^{-T} = adj(J)^T`).
//!
//! Optimization: "each thread block performed multiple matrix operations.
//! This avoided an unaligned memory access problem in the case of one
//! thread block reading one matrix size of 4 or 9" — the matrices-per-block
//! count is the autotuned parameter (98.3% occupancy at N = 32), and small
//! N pays an uncoalesced-access replay on its DRAM traffic.

use blast_la::BatchedMats;
use gpu_sim::{GpuDevice, GpuError, KernelStats, LaunchConfig, Traffic};
use rayon::prelude::*;

use crate::shapes::ProblemShape;

/// Transpose mode of the second operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transpose {
    /// `C_i = A_i B_i` (kernel 5).
    NN,
    /// `C_i = A_i B_i^T` (kernel 6).
    NT,
}

/// Kernels 5/6: `DIM x DIM` batched DGEMM with optional per-element scale
/// (`C_i = s_i * A_i op(B_i)` — the `1/|J|` factor rides along for free).
#[derive(Clone, Copy, Debug)]
pub struct BatchedDimGemm {
    /// NN (kernel 5) or NT (kernel 6).
    pub transpose: Transpose,
    /// Matrices processed per thread block (autotuned; paper found 32).
    pub mats_per_block: u32,
}

impl BatchedDimGemm {
    /// Kernel 5 (NN) with the paper's tuned batch factor.
    pub fn nn_tuned() -> Self {
        Self { transpose: Transpose::NN, mats_per_block: 32 }
    }

    /// Kernel 6 (NT) with the paper's tuned batch factor.
    pub fn nt_tuned() -> Self {
        Self { transpose: Transpose::NT, mats_per_block: 32 }
    }

    /// Table 2 kernel name.
    pub fn name(&self) -> &'static str {
        match self.transpose {
            Transpose::NN => "kernel_NN_dgemmBatched",
            Transpose::NT => "kernel_NT_dgemmBatched",
        }
    }

    /// Uncoalesced-access replay factor: one `DIM x DIM` matrix per block
    /// loads 32-128 B out of each 128 B transaction; packing N >= 8
    /// matrices restores full-width coalesced loads.
    fn replay(&self) -> f64 {
        let n = self.mats_per_block.max(1) as f64;
        if n >= 8.0 {
            1.0
        } else {
            1.0 + 3.0 * (8.0 - n) / 7.0
        }
    }

    /// Launch configuration for a batch of `count` matrices of size `dim`.
    pub fn config(&self, dim: usize, count: usize) -> LaunchConfig {
        let n = self.mats_per_block.max(1);
        let grid = (count as u32).div_ceil(n);
        // Reading/writing: threads organized 1D over the packed data;
        // multiplication: 2D `dim x dim` per matrix.
        let threads = (n * (dim * dim) as u32).clamp(32, 1024);
        let shared = n * (3 * dim * dim * 8) as u32;
        LaunchConfig::new(grid, threads, shared, 28)
    }

    /// Declared traffic for a batch of `count` matrices of size `dim`.
    pub fn traffic(&self, dim: usize, count: usize) -> Traffic {
        let d = dim as f64;
        let n = count as f64;
        let flops = n * 2.0 * d * d * d;
        let useful = n * 3.0 * d * d * 8.0;
        Traffic {
            flops,
            dram_bytes: useful * self.replay(),
            shared_bytes: useful,
            ..Default::default()
        }
    }

    /// Pure computation: `C_i = s_i * A_i op(B_i)`; `scale` may be `None`
    /// (all ones) or one factor per matrix.
    pub fn compute(
        &self,
        a: &BatchedMats,
        b: &BatchedMats,
        scale: Option<&[f64]>,
        c: &mut BatchedMats,
    ) {
        let (d, d2) = a.shape();
        assert_eq!(d, d2, "kernels 5/6 take square DIM x DIM matrices");
        assert_eq!(b.shape(), (d, d));
        assert_eq!(c.shape(), (d, d));
        assert!(a.count() == b.count() && b.count() == c.count(), "batch count mismatch");
        if let Some(s) = scale {
            assert_eq!(s.len(), a.count());
        }
        let transpose = self.transpose;
        let sa = a.stride();
        c.par_mats_mut().for_each(|(i, ci)| {
            let ai = &a.as_slice()[i * sa..(i + 1) * sa];
            let bi = &b.as_slice()[i * sa..(i + 1) * sa];
            let s = scale.map_or(1.0, |s| s[i]);
            for col in 0..d {
                for row in 0..d {
                    let mut acc = 0.0;
                    for p in 0..d {
                        let bval = match transpose {
                            Transpose::NN => bi[p + col * d],
                            Transpose::NT => bi[col + p * d],
                        };
                        acc += ai[row + p * d] * bval;
                    }
                    ci[row + col * d] = s * acc;
                }
            }
        });
    }

    /// Launches on the simulated device.
    pub fn run(
        &self,
        dev: &GpuDevice,
        a: &BatchedMats,
        b: &BatchedMats,
        scale: Option<&[f64]>,
        c: &mut BatchedMats,
    ) -> Result<KernelStats, GpuError> {
        let (d, _) = a.shape();
        let cfg = self.config(d, a.count());
        let traffic = self.traffic(d, a.count());
        let (_, stats) = dev.launch(self.name(), &cfg, &traffic, || {
            self.compute(a, b, scale, c);
        })?;
        Ok(stats)
    }

    /// Convenience: shape-level traffic for the corner-force pipeline
    /// (one product per quadrature point).
    pub fn traffic_for(&self, shape: &ProblemShape) -> Traffic {
        self.traffic(shape.dim, shape.total_points())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceCatalog;
    use blast_la::batched_gemm_nn;
    

    fn batch(d: usize, n: usize, seed: f64) -> BatchedMats {
        BatchedMats::from_fn(d, d, n, |z, i, j| ((z * 7 + i * 3 + j) as f64 * seed).sin())
    }

    #[test]
    fn nn_matches_blast_la_reference() {
        let a = batch(3, 20, 0.37);
        let b = batch(3, 20, 0.81);
        let mut c = BatchedMats::zeros(3, 3, 20);
        BatchedDimGemm::nn_tuned().compute(&a, &b, None, &mut c);
        let mut expect = BatchedMats::zeros(3, 3, 20);
        batched_gemm_nn(1.0, &a, &b, 0.0, &mut expect);
        for (x, y) in c.as_slice().iter().zip(expect.as_slice()) {
            assert!((x - y).abs() < 1e-13);
        }
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let a = batch(2, 15, 0.41);
        let b = batch(2, 15, 0.67);
        let bt = BatchedMats::from_fn(2, 2, 15, |z, i, j| b.get(z, j, i));
        let mut c_nt = BatchedMats::zeros(2, 2, 15);
        let mut c_nn = BatchedMats::zeros(2, 2, 15);
        BatchedDimGemm::nt_tuned().compute(&a, &b, None, &mut c_nt);
        BatchedDimGemm::nn_tuned().compute(&a, &bt, None, &mut c_nn);
        assert_eq!(c_nt, c_nn);
    }

    #[test]
    fn per_element_scale_applied() {
        let a = batch(2, 4, 0.3);
        let b = batch(2, 4, 0.6);
        let scale = [1.0, 2.0, -0.5, 0.0];
        let mut c1 = BatchedMats::zeros(2, 2, 4);
        let mut c2 = BatchedMats::zeros(2, 2, 4);
        let k = BatchedDimGemm::nn_tuned();
        k.compute(&a, &b, None, &mut c1);
        k.compute(&a, &b, Some(&scale), &mut c2);
        for z in 0..4 {
            for e in 0..4 {
                assert!((c2.mat(z)[e] - scale[z] * c1.mat(z)[e]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn small_batch_factor_pays_replay() {
        let k1 = BatchedDimGemm { transpose: Transpose::NN, mats_per_block: 1 };
        let k32 = BatchedDimGemm { transpose: Transpose::NN, mats_per_block: 32 };
        let t1 = k1.traffic(3, 100_000);
        let t32 = k32.traffic(3, 100_000);
        assert!(t1.dram_bytes > 3.0 * t32.dram_bytes);
        assert_eq!(t1.flops, t32.flops);
    }

    #[test]
    fn tuned_kernel_reaches_bandwidth_bound_fraction() {
        // Fig. 5: the tuned kernel reaches ~60% of the theoretical
        // (bandwidth-bound) peak of batched DIM x DIM DGEMM on K20.
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let k = BatchedDimGemm::nn_tuned();
        let count = 4096 * 64; // Q2-Q1 3D: zones * points
        let stats = dev.model_kernel(&k.config(3, count), &k.traffic(3, count));
        let theoretical = dev.spec().bandwidth_bound_gflops(2.0 * 3.0 / (3.0 * 8.0));
        let frac = stats.gflops / theoretical;
        assert!(frac > 0.45 && frac <= 1.0, "fraction {frac} ({} GF/s)", stats.gflops);
    }

    #[test]
    fn occupancy_at_tuned_config_is_high() {
        // "We find 32 delivered the best performance with an occupancy
        // 98.3%."
        let k = BatchedDimGemm::nn_tuned();
        let occ = gpu_sim::occupancy(&DeviceCatalog::gpu("k20"), &k.config(3, 100_000));
        assert!(occ.fraction > 0.85, "occupancy {}", occ.fraction);
    }

    #[test]
    fn scale_vector_length_checked() {
        let a = batch(2, 4, 0.3);
        let b = batch(2, 4, 0.6);
        let mut c = BatchedMats::zeros(2, 2, 4);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            BatchedDimGemm::nn_tuned().compute(&a, &b, Some(&[1.0, 2.0]), &mut c);
        }));
        assert!(res.is_err());
    }
}
