//! Integration test: a *functionally executed* distributed corner-force
//! assembly — each rank computes the momentum RHS contributions of its own
//! zones (corner forces are local, §3.4), then the shared-DOF sums are
//! combined across ranks; the result must equal the serial assembly
//! exactly.

use blast_fem::{CartMesh, H1Space};
use blast_kernels::k8_10::MomentumRhsKernel;
use blast_kernels::ProblemShape;
use blast_la::BatchedMats;
use cluster_sim::{run_ranks, Partition};

/// Builds a deterministic corner-force batch for the test mesh.
fn test_forces(shape: &ProblemShape) -> BatchedMats {
    BatchedMats::from_fn(shape.nvdof(), shape.nthermo, shape.zones, |z, i, j| {
        ((z * 31 + i * 7 + j * 3) as f64 * 0.113).sin()
    })
}

#[test]
fn distributed_rhs_assembly_matches_serial() {
    let mesh = CartMesh::<2>::unit(6);
    let order = 2;
    let space = H1Space::new(mesh.clone(), order);
    let shape = ProblemShape::new(2, order, mesh.num_zones());
    let n = space.num_dofs();
    let zone_dofs: Vec<usize> = (0..mesh.num_zones())
        .flat_map(|z| space.zone_dofs(z).iter().copied())
        .collect();
    let fz = test_forces(&shape);

    // Serial reference.
    let mut serial = vec![0.0; 2 * n];
    MomentumRhsKernel::compute(&shape, &fz, &zone_dofs, n, &mut serial);

    // Distributed: 4 ranks in a 2x2 grid, each assembles only its zones,
    // then the shared contributions are summed across the group.
    let part = Partition::new(&mesh, [2, 2]);
    let results = run_ranks(4, |mut comm| {
        let rank = comm.rank();
        let mut local = vec![0.0; 2 * n];
        // Per-zone DGEMV + scatter, restricted to this rank's zones
        // (the same math as kernel 8, zone by zone).
        for &z in part.zones_of_rank(rank) {
            let dofs = space.zone_dofs(z);
            let m = fz.mat(z);
            let nvdof = shape.nvdof();
            for j in 0..shape.nthermo {
                let col = &m[j * nvdof..(j + 1) * nvdof];
                for c in 0..2 {
                    for (mm, &dof) in dofs.iter().enumerate() {
                        local[c * n + dof] -= col[c * shape.nkin + mm];
                    }
                }
            }
        }
        // Group-sum the shared DOFs (MFEM's local-to-global translation).
        comm.allreduce_sum_vec(&mut local).expect("healthy group");
        local
    });

    for (rank, got) in results.iter().enumerate() {
        for (i, (a, b)) in got.iter().zip(&serial).enumerate() {
            assert!(
                (a - b).abs() < 1e-12,
                "rank {rank} dof {i}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn distributed_min_dt_matches_serial_min() {
    // Step 5 of the algorithm: after the corner force, an MPI reduction
    // finds the global minimum time step.
    let local_dts = [0.013, 0.0071, 0.019, 0.0093];
    let results =
        run_ranks(4, |mut comm| comm.allreduce_min(local_dts[comm.rank()]).expect("healthy group"));
    let expect = local_dts.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(results.iter().all(|&v| v == expect));
}

#[test]
fn owners_partition_shared_dofs_consistently() {
    // Every DOF has exactly one master; masters of interior DOFs are the
    // owning rank itself.
    let mesh = CartMesh::<2>::unit(4);
    let space = H1Space::new(mesh.clone(), 3);
    let part = Partition::new(&mesh, [2, 2]);
    let owners = part.dof_owners(&space);
    let groups = part.dof_groups(&space);
    assert_eq!(owners.len(), space.num_dofs());
    for (dof, group) in groups.iter().enumerate() {
        assert!(!group.is_empty(), "dof {dof} belongs to no rank");
        assert!(group.contains(&owners[dof]));
    }
    // The four-way corner DOF exists (Fig. 10's deepest group).
    assert!(groups.iter().any(|g| g.len() == 4));
}
