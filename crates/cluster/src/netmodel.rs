//! Interconnect cost models for the paper's machines.
//!
//! §4.3 runs weak scaling on ORNL Titan (Cray XK7, Gemini 3D-torus
//! interconnect, 16 AMD cores + 1 K20m per node, up to 4096 nodes) and
//! strong scaling on SNL Shannon (30 nodes, dual E5-2670 + dual K20m,
//! InfiniBand). "The limiting factor is the MPI global reduction to find
//! the minimum time step ... and MPI communication in MFEM."

/// Point-to-point and collective cost model of an interconnect.
#[derive(Clone, Copy, Debug)]
pub struct NetworkModel {
    /// One-way message latency, seconds.
    pub latency_s: f64,
    /// Effective point-to-point bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// Extra per-hop software/system overhead applied per collective stage
    /// (OS noise, progression) — the term that makes huge allreduces hurt.
    pub collective_overhead_s: f64,
}

impl NetworkModel {
    /// ORNL Titan: Gemini interconnect. The collective stage overhead is
    /// the *effective at-scale* value (progression + OS noise on a shared
    /// torus), calibrated against Fig. 12's base point; it implies a full
    /// 64k-rank allreduce of ~2.3 ms, consistent with measured Titan
    /// MPI_Allreduce latencies at that scale.
    pub fn titan_gemini() -> Self {
        Self { latency_s: 1.5e-6, bandwidth_gbs: 6.0, collective_overhead_s: 7.0e-5 }
    }

    /// SNL Shannon: QDR InfiniBand.
    pub fn shannon_ib() -> Self {
        Self { latency_s: 1.3e-6, bandwidth_gbs: 4.0, collective_overhead_s: 4.0e-6 }
    }

    /// Point-to-point time for `bytes`.
    pub fn p2p_time(&self, bytes: usize) -> f64 {
        self.latency_s + bytes as f64 / (self.bandwidth_gbs * 1e9)
    }

    /// Log-tree allreduce across `ranks` of a `bytes` payload: two tree
    /// traversals (reduce + broadcast) of `ceil(log2 ranks)` stages.
    pub fn allreduce_time(&self, ranks: usize, bytes: usize) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        let stages = (ranks as f64).log2().ceil();
        2.0 * stages * (self.p2p_time(bytes) + self.collective_overhead_s)
    }

    /// Nearest-neighbor halo exchange: up to `neighbors` simultaneous
    /// pairwise exchanges of `bytes` each (posted concurrently; serialized
    /// injection charges a fraction per extra neighbor).
    pub fn halo_exchange_time(&self, neighbors: usize, bytes: usize) -> f64 {
        if neighbors == 0 {
            return 0.0;
        }
        // Concurrent messages share injection bandwidth.
        self.latency_s + neighbors as f64 * bytes as f64 / (self.bandwidth_gbs * 1e9)
    }
}

/// A named machine: nodes with CPUs/GPUs plus the interconnect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Machine {
    /// ORNL Titan (Cray XK7): 16 AMD cores + 1 K20m per node.
    Titan,
    /// SNL Shannon: dual E5-2670 + dual K20m per node.
    Shannon,
}

impl Machine {
    /// The interconnect model.
    pub fn network(&self) -> NetworkModel {
        match self {
            Machine::Titan => NetworkModel::titan_gemini(),
            Machine::Shannon => NetworkModel::shannon_ib(),
        }
    }

    /// MPI ranks per node in the paper's runs.
    pub fn ranks_per_node(&self) -> usize {
        match self {
            Machine::Titan => 16,
            Machine::Shannon => 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_time_has_latency_floor() {
        let n = NetworkModel::titan_gemini();
        assert!(n.p2p_time(0) >= 1.5e-6);
        // 6 MB at 6 GB/s = 1 ms.
        assert!((n.p2p_time(6_000_000) - 1e-3 - 1.5e-6).abs() < 1e-9);
    }

    #[test]
    fn allreduce_grows_logarithmically() {
        let n = NetworkModel::titan_gemini();
        let t8 = n.allreduce_time(8, 8);
        let t4096 = n.allreduce_time(4096, 8);
        // log2(4096)/log2(8) = 4.
        assert!((t4096 / t8 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn allreduce_trivial_for_one_rank() {
        assert_eq!(NetworkModel::shannon_ib().allreduce_time(1, 8), 0.0);
    }

    #[test]
    fn halo_scales_with_neighbors_and_bytes() {
        let n = NetworkModel::shannon_ib();
        let one = n.halo_exchange_time(1, 1000);
        let six = n.halo_exchange_time(6, 1000);
        assert!(six > one);
        assert_eq!(n.halo_exchange_time(0, 1000), 0.0);
    }

    #[test]
    fn machines_expose_their_networks() {
        assert_eq!(Machine::Titan.ranks_per_node(), 16);
        let t = Machine::Titan.network();
        let s = Machine::Shannon.network();
        assert!(t.bandwidth_gbs > s.bandwidth_gbs);
    }
}
