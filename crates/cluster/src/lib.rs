//! # cluster-sim
//!
//! The MPI level of the reproduction (§3.4 and §4.3).
//!
//! BLAST's MPI parallelism comes from MFEM: the domain is split into
//! per-task subdomains (Fig. 9); finite element DOFs shared by several
//! tasks are grouped, each group owned by a *master* task (Fig. 10); corner
//! forces are local, while matrix assembly and the global minimum-timestep
//! reduction need communication.
//!
//! Without a physical cluster, this crate provides:
//!
//! - [`comm`]: a functional message-passing runtime — one OS thread per
//!   rank, crossbeam channels underneath — with `send`/`recv`,
//!   `allreduce_min/sum`, `barrier`, used to *really execute* distributed
//!   algorithms (the tests run a distributed corner-force assembly and
//!   compare against the serial reference).
//! - [`partition`]: structured domain splitting and the shared-DOF group
//!   structure of Fig. 10.
//! - [`netmodel`]: interconnect cost models (ORNL Titan's Gemini, SNL
//!   Shannon's InfiniBand) for point-to-point and log-tree collectives.
//! - [`scaling`]: the weak/strong scaling harness reproducing Figs. 12-13,
//!   combining per-node compute costs from `gpu-sim` with the network
//!   model.

//! - [`recovery`]: coordinated checkpoint/restart plus rank-death recovery
//!   under a chaos campaign — the coordinator detects dead ranks through
//!   consecutive receive timeouts, survivors agree, shrink the partition,
//!   and restore from the last coordinated checkpoint.

pub mod comm;
pub mod detector;
pub mod netmodel;
pub mod partition;
pub mod recovery;
pub mod scaling;

pub use comm::{
    run_ranks, try_run_ranks_with_faults, ClusterFaultPlan, CommError, Communicator, RankDeath,
};
pub use detector::FailureDetector;
pub use netmodel::{Machine, NetworkModel};
pub use partition::Partition;
pub use recovery::{
    campaign_overhead_pct, run_chaos_campaign, CampaignConfig, RankOutcome, RankResult,
};
pub use scaling::{strong_scaling, weak_scaling, ScalingPoint};
