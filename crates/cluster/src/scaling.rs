//! Weak and strong scaling models (Figs. 12-13).
//!
//! Per-node compute times come from the `gpu-sim` kernel models (the same
//! ones the single-node results use); communication comes from
//! [`crate::netmodel`]. The weak-scaling growth is driven by the global
//! collectives — "the limiting factor is the MPI global reduction to find
//! the minimum time step after corner force computation and MPI
//! communication in MFEM" — whose cost rises with `log2(ranks)` while the
//! per-node work stays fixed.

use blast_kernels::k1::AdjugateDetKernel;
use blast_kernels::k2::StressKernel;
use blast_kernels::k3::CoefGradKernel;
use blast_kernels::k4::AzKernel;
use blast_kernels::k56::BatchedDimGemm;
use blast_kernels::k7::FzKernel;
use blast_kernels::k8_10::{EnergyRhsKernel, MomentumRhsKernel};
use blast_kernels::{ProblemShape, Workspace};
use gpu_sim::GpuDevice;

use crate::netmodel::Machine;
use gpu_sim::DeviceCatalog;

/// One point of a scaling curve.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    /// Compute nodes.
    pub nodes: usize,
    /// Modeled time, seconds (for the stated number of cycles).
    pub time_s: f64,
}

/// Modeled device time of one optimized corner-force evaluation over
/// `shape` (two kernel-3 calls, kernels 1/5/2/6/4/7/8/10).
pub fn corner_force_gpu_time(dev: &GpuDevice, shape: &ProblemShape) -> f64 {
    let mut t = 0.0;
    let k3 = CoefGradKernel::tuned();
    t += 2.0 * dev.model_kernel(&k3.config(shape), &k3.traffic(shape)).time_s;
    let k1 = AdjugateDetKernel { workspace: Workspace::Registers };
    t += dev.model_kernel(&k1.config(shape), &k1.traffic(shape)).time_s;
    for k in [BatchedDimGemm::nn_tuned(), BatchedDimGemm::nt_tuned()] {
        t += dev
            .model_kernel(
                &k.config(shape.dim, shape.total_points()),
                &k.traffic(shape.dim, shape.total_points()),
            )
            .time_s;
    }
    let k2 = StressKernel { workspace: Workspace::Registers, use_viscosity: true };
    t += dev.model_kernel(&k2.config(shape), &k2.traffic(shape)).time_s;
    let k4 = AzKernel::tuned();
    t += dev.model_kernel(&k4.config(shape), &k4.traffic(shape)).time_s;
    let k7 = FzKernel::tuned();
    t += dev.model_kernel(&k7.config(shape), &k7.traffic(shape)).time_s;
    let k8 = MomentumRhsKernel;
    t += dev.model_kernel(&k8.config(shape), &k8.traffic(shape)).time_s;
    let k10 = EnergyRhsKernel;
    t += dev.model_kernel(&k10.config(shape), &k10.traffic(shape)).time_s;
    t
}

/// Collective operations per time step charged by the scaling model: the
/// minimum-dt reduction plus the distributed PCG's dot products and the
/// MFEM local-to-global translations (step 5 of §2). Calibrated against
/// the Fig. 12 base point.
pub const COLLECTIVES_PER_STEP: usize = 150;

/// Per-node, per-step host-side cost that does not shrink with scale
/// (MFEM form translations, integration, launch orchestration), seconds.
/// Calibrated against the Fig. 12 base point (8 nodes, 0.85 s / 5 cycles).
pub const NODE_STEP_OVERHEAD_S: f64 = 0.012;

/// Weak scaling on Titan (Fig. 12): 512 zones per node in 3D `Q2`-`Q1`
/// (the paper: "we fixed a domain size of 512 for each computing node, and
/// used 8x more nodes for every refinement"), 5 cycles, starting at 8
/// nodes.
pub fn weak_scaling(levels: usize) -> Vec<ScalingPoint> {
    let machine = Machine::Titan;
    let net = machine.network();
    let dev = GpuDevice::new(DeviceCatalog::gpu("k20m"));
    // Per-node subdomain: 512 zones, shared by the node's 16 MPI ranks
    // through Hyper-Q.
    dev.set_active_queues(machine.ranks_per_node() as u32);
    let shape = ProblemShape::new(3, 2, 512);
    // Two force evaluations per RK2-average step.
    let cf = 2.0 * corner_force_gpu_time(&dev, &shape);
    // CG on the node's share of the kinematic system.
    let n_node = 4913; // (2*8+1)^3 lattice of one node's subdomain
    let nnz = n_node * 125;
    let cg_iters = 60.0;
    let cg = cg_iters * (nnz as f64 * 20.0) / (51.2e9);
    let steps = 5.0;

    (0..levels)
        .map(|l| {
            let nodes = 8usize * 8usize.pow(l as u32);
            let ranks = nodes * machine.ranks_per_node();
            let comm_per_step =
                COLLECTIVES_PER_STEP as f64 * net.allreduce_time(ranks, 8)
                    + net.halo_exchange_time(6, 9 * 289 * 8); // 6 faces x Q2 face DOFs
            ScalingPoint {
                nodes,
                time_s: steps * (cf + cg + NODE_STEP_OVERHEAD_S + comm_per_step),
            }
        })
        .collect()
}

/// Strong scaling on Shannon (Fig. 13): a fixed `32^3` 3D `Q2`-`Q1` domain
/// split across 1..=`max_nodes` nodes (two K20m per node).
pub fn strong_scaling(node_counts: &[usize]) -> Vec<ScalingPoint> {
    let machine = Machine::Shannon;
    let net = machine.network();
    let total_zones = 32usize.pow(3);
    let steps = 5.0;
    node_counts
        .iter()
        .map(|&nodes| {
            let gpus = nodes * 2;
            let zones_per_gpu = (total_zones / gpus).max(1);
            let dev = GpuDevice::new(DeviceCatalog::gpu("k20m"));
            dev.set_active_queues(8);
            let shape = ProblemShape::new(3, 2, zones_per_gpu);
            let cf = 2.0 * corner_force_gpu_time(&dev, &shape);
            let n_local = shape.zones * 27; // ~local kinematic DOFs
            let cg = 60.0 * (n_local as f64 * 125.0 * 20.0) / 51.2e9;
            let ranks = nodes * machine.ranks_per_node();
            let comm = COLLECTIVES_PER_STEP as f64 * net.allreduce_time(ranks, 8)
                + net.halo_exchange_time(6, 2 * 1156 * 8);
            ScalingPoint { nodes, time_s: steps * (cf + cg + NODE_STEP_OVERHEAD_S / 4.0 + comm) }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_scaling_matches_fig12_endpoints() {
        // Fig. 12: 8 nodes -> 0.85 s, 4096 nodes -> 1.83 s for 5 cycles.
        let pts = weak_scaling(4);
        assert_eq!(pts[0].nodes, 8);
        assert_eq!(pts[3].nodes, 4096);
        let t8 = pts[0].time_s;
        let t4096 = pts[3].time_s;
        assert!((t8 - 0.85).abs() / 0.85 < 0.25, "8-node time {t8}");
        assert!((t4096 - 1.83).abs() / 1.83 < 0.25, "4096-node time {t4096}");
        // The defining shape: growth factor ~2.15x across three octuplings.
        let ratio = t4096 / t8;
        assert!(ratio > 1.7 && ratio < 2.7, "growth ratio {ratio}");
    }

    #[test]
    fn weak_scaling_monotonically_degrades() {
        let pts = weak_scaling(4);
        for w in pts.windows(2) {
            assert!(w[1].time_s > w[0].time_s);
            assert_eq!(w[1].nodes, 8 * w[0].nodes);
        }
    }

    #[test]
    fn weak_scaling_growth_is_logarithmic_not_linear() {
        // Each octupling adds a roughly constant increment (log-tree
        // collectives), unlike linear-in-nodes degradation.
        let pts = weak_scaling(4);
        let d1 = pts[1].time_s - pts[0].time_s;
        let d2 = pts[2].time_s - pts[1].time_s;
        let d3 = pts[3].time_s - pts[2].time_s;
        assert!((d2 / d1 - 1.0).abs() < 0.3, "{d1} {d2} {d3}");
        assert!((d3 / d2 - 1.0).abs() < 0.3);
    }

    #[test]
    fn strong_scaling_is_near_linear_then_flattens() {
        // Fig. 13: linear strong scaling over Shannon's node counts.
        let pts = strong_scaling(&[1, 2, 4, 8, 16]);
        // Speedup from 1 to 16 nodes should be substantial (> 6x) but
        // sub-ideal (< 16x).
        let speedup = pts[0].time_s / pts[4].time_s;
        assert!(speedup > 6.0 && speedup < 16.0, "speedup {speedup}");
        // Monotone decreasing.
        for w in pts.windows(2) {
            assert!(w[1].time_s < w[0].time_s);
        }
    }

    #[test]
    fn corner_force_time_scales_with_zones() {
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20m"));
        let t512 = corner_force_gpu_time(&dev, &ProblemShape::new(3, 2, 512));
        let t4096 = corner_force_gpu_time(&dev, &ProblemShape::new(3, 2, 4096));
        let ratio = t4096 / t512;
        assert!(ratio > 4.0 && ratio < 9.0, "ratio {ratio}");
    }
}
