//! A functional MPI-like runtime: ranks as threads, std channels as the
//! wire, with deterministic fault injection.
//!
//! This is the execution substrate for the distributed algorithms; the
//! *cost* of communication is modeled separately in [`crate::netmodel`]
//! (the two are decoupled exactly like the functional/performance split of
//! the GPU simulator).
//!
//! ## Fault model
//!
//! A [`ClusterFaultPlan`] injects three MPI failure classes, all drawn from
//! a seeded counter-based RNG so a given `(seed, rank, message index)`
//! always produces the same faults regardless of thread interleaving:
//!
//! - **dropped messages** — the send is charged but never delivered; the
//!   receiver surfaces it as [`CommError::Timeout`] instead of hanging,
//! - **corrupted messages** — payload bits are flipped in flight; every
//!   message carries an FNV checksum and the receiver reports
//!   [`CommError::Corrupted`],
//! - **rank stalls** — a rank sleeps before a scheduled send, modeling OS
//!   jitter / a dying node; peers see a timeout naming the stalled rank,
//! - **rank deaths** — from a scheduled send index onward the rank stops
//!   transmitting *permanently*. Peers cannot distinguish a dead rank from
//!   an unlucky run of drops by one timeout alone, so the communicator
//!   carries an optional failure detector: `K` consecutive timeouts against
//!   the same peer escalate to [`CommError::PeerDead`] (off by default —
//!   [`Communicator::set_suspicion_threshold`] arms it).

use crate::detector::FailureDetector;
use blast_telemetry::{names, TelemetrySink};
use std::cell::{Cell, RefCell};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default bound on how long a `recv` waits before declaring the peer
/// stalled. Generous for healthy in-process ranks (microseconds of real
/// latency), small enough that a genuinely lost message fails a test run
/// rather than deadlocking it.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(10);

/// A communication failure, attributed to the peer rank that caused it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// No matching message arrived in time: the peer is stalled, dead, or
    /// its message was dropped in flight.
    Timeout {
        /// The rank whose message never arrived.
        from: usize,
        /// The tag being waited for.
        tag: u64,
    },
    /// A matching message arrived but its checksum does not cover its
    /// payload (in-flight corruption).
    Corrupted {
        /// The sending rank.
        from: usize,
        /// The message tag.
        tag: u64,
    },
    /// The failure detector declared the peer permanently dead: `K`
    /// consecutive receive timeouts against it with no arrival evidence in
    /// between (see [`Communicator::set_suspicion_threshold`]).
    PeerDead {
        /// The rank declared dead.
        from: usize,
        /// The tag being waited for when suspicion crossed the threshold.
        tag: u64,
    },
    /// All peer ranks have exited while messages were still expected.
    Disconnected {
        /// The rank being waited for when the wire went away.
        from: usize,
        /// The tag being waited for.
        tag: u64,
    },
    /// A rank's body panicked before returning a result, so the harness
    /// has no value for it (see [`try_run_ranks_with_faults`]).
    RankPanicked {
        /// The rank whose thread panicked.
        rank: usize,
        /// The panic payload when it was a string, else a placeholder.
        detail: String,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout { from, tag } => {
                write!(f, "timeout waiting for rank {from} (tag {tag}): rank stalled or message dropped")
            }
            CommError::Corrupted { from, tag } => {
                write!(f, "corrupted message from rank {from} (tag {tag}): checksum mismatch")
            }
            CommError::PeerDead { from, tag } => {
                write!(f, "rank {from} declared dead (tag {tag}): consecutive timeouts crossed the suspicion threshold")
            }
            CommError::Disconnected { from, tag } => {
                write!(f, "rank {from} disconnected while waiting on tag {tag}")
            }
            CommError::RankPanicked { rank, detail } => {
                write!(f, "rank {rank} panicked: {detail}")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// A message: raw `f64` payload plus a tag and an integrity checksum.
#[derive(Clone, Debug)]
struct Message {
    from: usize,
    tag: u64,
    data: Vec<f64>,
    checksum: u64,
}

/// FNV-1a over the payload bit patterns.
fn payload_checksum(data: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in data {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Counter-based deterministic draw in `[0, 1)`: the same
/// `(seed, rank, counter)` triple always yields the same value, independent
/// of scheduling.
fn fault_draw(seed: u64, rank: usize, counter: u64) -> f64 {
    let mut z = seed ^ (rank as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ counter.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A scheduled stall of one rank: before its `before_send`-th send, the
/// rank sleeps for `delay` (real time — keep it short in tests).
#[derive(Clone, Copy, Debug)]
pub struct RankStall {
    /// The stalled rank.
    pub rank: usize,
    /// The 0-based send index before which the stall happens.
    pub before_send: u64,
    /// The stall duration.
    pub delay: Duration,
}

/// A scheduled permanent rank death: from the rank's `after_sends`-th send
/// onward, nothing it transmits reaches the wire. The thread keeps running
/// (the harness body checks [`Communicator::is_dead`] and exits), but to
/// every peer the rank has gone silent for good.
#[derive(Clone, Copy, Debug)]
pub struct RankDeath {
    /// The dying rank.
    pub rank: usize,
    /// The 0-based send index at which it dies (0 = never sends anything).
    pub after_sends: u64,
}

/// Seeded fault-injection plan for a [`run_ranks_with_faults`] execution.
#[derive(Clone, Debug, Default)]
pub struct ClusterFaultPlan {
    /// RNG seed; the same seed reproduces the same faults.
    pub seed: u64,
    /// Probability each sent message is silently dropped.
    pub drop_rate: f64,
    /// Probability each delivered message has payload bits flipped.
    pub corrupt_rate: f64,
    /// Scheduled per-rank stalls.
    pub stalls: Vec<RankStall>,
    /// Scheduled permanent rank deaths.
    pub deaths: Vec<RankDeath>,
}

impl ClusterFaultPlan {
    /// A plan that injects nothing (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// Seeded plan with message drop and corruption rates.
    pub fn seeded(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// Like [`ClusterFaultPlan::seeded`], but the `BLAST_FAULT_SEED`
    /// environment variable overrides `default_seed` when set (the same
    /// single parse point as the device plans: [`gpu_sim::fault_seed_from_env`]).
    pub fn seeded_from_env(default_seed: u64) -> Self {
        Self::seeded(gpu_sim::fault_seed_from_env().unwrap_or(default_seed))
    }

    /// Sets the message drop rate.
    pub fn with_drop_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "drop rate out of [0,1]");
        self.drop_rate = rate;
        self
    }

    /// Sets the message corruption rate.
    pub fn with_corrupt_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "corrupt rate out of [0,1]");
        self.corrupt_rate = rate;
        self
    }

    /// Adds a scheduled rank stall.
    pub fn with_stall(mut self, rank: usize, before_send: u64, delay: Duration) -> Self {
        self.stalls.push(RankStall { rank, before_send, delay });
        self
    }

    /// Adds a scheduled permanent rank death.
    pub fn with_rank_death(mut self, rank: usize, after_sends: u64) -> Self {
        self.deaths.push(RankDeath { rank, after_sends });
        self
    }

    fn is_active(&self) -> bool {
        self.drop_rate > 0.0
            || self.corrupt_rate > 0.0
            || !self.stalls.is_empty()
            || !self.deaths.is_empty()
    }
}

/// Per-rank fault counters, reported after a faulty run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommFaultStats {
    /// Messages silently dropped on this rank's sends.
    pub dropped: usize,
    /// Messages corrupted on this rank's sends.
    pub corrupted: usize,
    /// Stalls this rank served.
    pub stalls: usize,
    /// Sends suppressed because this rank was scheduled dead.
    pub suppressed: usize,
}

/// Per-rank communicator handle.
pub struct Communicator {
    rank: usize,
    size: usize,
    /// `senders[j]` delivers into rank j's inbox.
    senders: Vec<Sender<Message>>,
    inbox: Receiver<Message>,
    /// Messages received but not yet matched by a `recv`.
    stash: Vec<Message>,
    /// Bound on how long a `recv` waits for a matching message.
    timeout: Duration,
    /// Shared fault plan (empty plan when faults are off).
    faults: Arc<ClusterFaultPlan>,
    /// This rank's send counter (drives deterministic fault draws).
    sends: Cell<u64>,
    /// Observed fault statistics for this rank.
    stats: Cell<CommFaultStats>,
    /// Consecutive receive-timeout failure detector (disarmed by default —
    /// a plain timeout keeps surfacing as [`CommError::Timeout`]). The
    /// same [`FailureDetector`] component backs the job supervisor's
    /// worker-death declarations.
    detector: RefCell<FailureDetector>,
    /// Optional telemetry sink: message/byte/drop/death counters (see
    /// `blast_telemetry::names::counters::MSGS_*`).
    sink: Option<TelemetrySink>,
}

impl Communicator {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Sets the receive timeout (default [`DEFAULT_RECV_TIMEOUT`]).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Fault statistics observed on this rank's sends.
    pub fn fault_stats(&self) -> CommFaultStats {
        self.stats.get()
    }

    /// Attaches a telemetry sink: subsequent sends and failure-detector
    /// verdicts are accumulated into its monotonic counters (messages,
    /// payload bytes, drops, rank deaths). The sink is shared, so all
    /// ranks of a job may feed one recorder.
    pub fn attach_telemetry(&mut self, sink: TelemetrySink) {
        self.sink = Some(sink);
    }

    /// Arms the failure detector: `k` consecutive receive timeouts against
    /// the same peer (with no message from it in between) escalate the
    /// `k`-th to [`CommError::PeerDead`]. Pass `u32::MAX` to disarm.
    pub fn set_suspicion_threshold(&mut self, k: u32) {
        self.detector.borrow_mut().set_threshold(k);
    }

    /// Whether this rank's scheduled death has already triggered (its sends
    /// are being suppressed). The harness body checks this to exit a dead
    /// rank's loop.
    pub fn is_dead(&self) -> bool {
        let idx = self.sends.get();
        self.faults.deaths.iter().any(|d| d.rank == self.rank && idx >= d.after_sends)
    }

    /// Sends `data` to rank `to` under `tag` (non-blocking, buffered).
    ///
    /// Under an active fault plan the message may be dropped or corrupted
    /// in flight, and scheduled stalls are served here (the send side is
    /// where a dying rank stops making progress).
    pub fn send(&self, to: usize, tag: u64, data: Vec<f64>) {
        assert!(to < self.size, "send to out-of-range rank {to}");
        let idx = self.sends.get();
        self.sends.set(idx + 1);
        let mut stats = self.stats.get();
        if let Some(sink) = &self.sink {
            sink.counter_add(names::counters::MSGS_SENT, 1);
            sink.counter_add(names::counters::MSG_BYTES, (data.len() * 8) as u64);
        }

        // A dead rank transmits nothing, ever again. Checked against the
        // pre-increment index so `after_sends: 0` means "never sent once".
        if self.faults.deaths.iter().any(|d| d.rank == self.rank && idx >= d.after_sends) {
            stats.suppressed += 1;
            self.stats.set(stats);
            return;
        }

        if self.faults.is_active() {
            for stall in &self.faults.stalls {
                if stall.rank == self.rank && stall.before_send == idx {
                    stats.stalls += 1;
                    std::thread::sleep(stall.delay);
                }
            }
            // Counter-based draws: stream 0 decides drops, stream 1 decides
            // corruption, so the two rates are independent.
            if fault_draw(self.faults.seed, self.rank, idx * 2) < self.faults.drop_rate {
                stats.dropped += 1;
                self.stats.set(stats);
                if let Some(sink) = &self.sink {
                    sink.counter_add(names::counters::MSGS_DROPPED, 1);
                }
                return; // charged but never delivered
            }
            if fault_draw(self.faults.seed, self.rank, idx * 2 + 1) < self.faults.corrupt_rate {
                stats.corrupted += 1;
                self.stats.set(stats);
                let checksum = payload_checksum(&data);
                let mut data = data;
                if let Some(v) = data.first_mut() {
                    *v = f64::from_bits(v.to_bits() ^ 0x1); // single bit flip
                } else {
                    // Empty payload: corrupt the checksum instead.
                    let msg = Message { from: self.rank, tag, data, checksum: checksum ^ 1 };
                    let _ = self.senders[to].send(msg);
                    return;
                }
                let _ = self.senders[to].send(Message { from: self.rank, tag, data, checksum });
                return;
            }
        }
        self.stats.set(stats);
        let checksum = payload_checksum(&data);
        // A receiver that already exited is not this rank's failure.
        let _ = self.senders[to].send(Message { from: self.rank, tag, data, checksum });
    }

    /// Receives the next message from `from` with `tag`, waiting at most
    /// the communicator timeout (out-of-order messages are stashed).
    pub fn recv(&mut self, from: usize, tag: u64) -> Result<Vec<f64>, CommError> {
        self.recv_timeout(from, tag, self.timeout)
    }

    /// Receives the next message from `from` with `tag`, waiting at most
    /// `timeout`. A missing message surfaces as [`CommError::Timeout`]
    /// naming the stalled peer instead of blocking forever; a checksum
    /// mismatch surfaces as [`CommError::Corrupted`].
    pub fn recv_timeout(
        &mut self,
        from: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<f64>, CommError> {
        if let Some(pos) = self.stash.iter().position(|m| m.from == from && m.tag == tag) {
            self.detector.borrow_mut().record_evidence(from);
            return Self::verify(self.stash.swap_remove(pos));
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let msg = match self.inbox.recv_timeout(remaining) {
                Ok(msg) => msg,
                Err(RecvTimeoutError::Timeout) => {
                    if self.detector.borrow_mut().record_miss(from) {
                        if let Some(sink) = &self.sink {
                            sink.counter_add(names::counters::RANK_DEATHS, 1);
                        }
                        return Err(CommError::PeerDead { from, tag });
                    }
                    return Err(CommError::Timeout { from, tag });
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::Disconnected { from, tag })
                }
            };
            // Any arrival — matching, stashed, or even corrupted — is
            // liveness evidence for its sender.
            self.detector.borrow_mut().record_evidence(msg.from);
            if msg.from == from && msg.tag == tag {
                return Self::verify(msg);
            }
            self.stash.push(msg);
        }
    }

    fn verify(msg: Message) -> Result<Vec<f64>, CommError> {
        if payload_checksum(&msg.data) != msg.checksum {
            return Err(CommError::Corrupted { from: msg.from, tag: msg.tag });
        }
        Ok(msg.data)
    }

    /// Reduction to rank 0 then broadcast — functionally exact; the
    /// log-tree *cost* is modeled by
    /// [`crate::netmodel::NetworkModel::allreduce_time`]. On failure the
    /// error names the rank whose contribution never arrived.
    fn allreduce(&mut self, value: f64, op: impl Fn(f64, f64) -> f64) -> Result<f64, CommError> {
        const TAG_GATHER: u64 = u64::MAX - 1;
        const TAG_BCAST: u64 = u64::MAX - 2;
        if self.rank == 0 {
            let mut acc = value;
            for r in 1..self.size {
                let v = self.recv(r, TAG_GATHER)?;
                acc = op(acc, v[0]);
            }
            for r in 1..self.size {
                self.send(r, TAG_BCAST, vec![acc]);
            }
            Ok(acc)
        } else {
            self.send(0, TAG_GATHER, vec![value]);
            Ok(self.recv(0, TAG_BCAST)?[0])
        }
    }

    /// Global minimum — the paper's step 5: "An MPI reduction is used to
    /// find the global minimum time step."
    pub fn allreduce_min(&mut self, value: f64) -> Result<f64, CommError> {
        self.allreduce(value, f64::min)
    }

    /// Global sum (dot products of the distributed PCG).
    pub fn allreduce_sum(&mut self, value: f64) -> Result<f64, CommError> {
        self.allreduce(value, |a, b| a + b)
    }

    /// Element-wise global sum of a vector (shared-DOF assembly).
    pub fn allreduce_sum_vec(&mut self, values: &mut [f64]) -> Result<(), CommError> {
        const TAG_VGATHER: u64 = u64::MAX - 3;
        const TAG_VBCAST: u64 = u64::MAX - 4;
        if self.rank == 0 {
            for r in 1..self.size {
                let v = self.recv(r, TAG_VGATHER)?;
                assert_eq!(v.len(), values.len(), "vector allreduce length mismatch");
                for (a, b) in values.iter_mut().zip(v) {
                    *a += b;
                }
            }
            for r in 1..self.size {
                self.send(r, TAG_VBCAST, values.to_vec());
            }
        } else {
            self.send(0, TAG_VGATHER, values.to_vec());
            let v = self.recv(0, TAG_VBCAST)?;
            values.copy_from_slice(&v);
        }
        Ok(())
    }

    /// Barrier (allreduce of a dummy value). A stalled rank turns the
    /// barrier into an error rather than a hang.
    pub fn barrier(&mut self) -> Result<(), CommError> {
        self.allreduce_sum(0.0).map(|_| ())
    }
}

/// Spawns `size` ranks, each running `body(comm)`, and returns their
/// results in rank order (no fault injection).
pub fn run_ranks<R: Send>(size: usize, body: impl Fn(Communicator) -> R + Sync) -> Vec<R> {
    run_ranks_with_faults(size, ClusterFaultPlan::none(), body)
}

/// Spawns `size` ranks under a fault plan; each runs `body(comm)`.
///
/// The body observes injected faults as `CommError`s from its receive /
/// collective calls and decides how to react (retry, abort, report) — the
/// harness itself never hangs on a dropped message.
pub fn run_ranks_with_faults<R: Send>(
    size: usize,
    plan: ClusterFaultPlan,
    body: impl Fn(Communicator) -> R + Sync,
) -> Vec<R> {
    try_run_ranks_with_faults(size, plan, body).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_ranks_with_faults`] with a typed failure path: a rank body that
/// panics surfaces as [`CommError::RankPanicked`] (with the rank id and
/// the panic message) instead of tearing down the caller with a bare
/// `expect` — resilience drivers want to bill the failure, not inherit it.
pub fn try_run_ranks_with_faults<R: Send>(
    size: usize,
    plan: ClusterFaultPlan,
    body: impl Fn(Communicator) -> R + Sync,
) -> Result<Vec<R>, CommError> {
    assert!(size >= 1, "need at least one rank");
    let plan = Arc::new(plan);
    let mut senders = Vec::with_capacity(size);
    let mut inboxes = Vec::with_capacity(size);
    for _ in 0..size {
        let (tx, rx) = channel();
        senders.push(tx);
        inboxes.push(rx);
    }
    let body = &body;
    let comms: Vec<Communicator> = inboxes
        .into_iter()
        .enumerate()
        .map(|(rank, inbox)| Communicator {
            rank,
            size,
            senders: senders.clone(),
            inbox,
            stash: Vec::new(),
            timeout: DEFAULT_RECV_TIMEOUT,
            faults: plan.clone(),
            sends: Cell::new(0),
            stats: Cell::new(CommFaultStats::default()),
            detector: RefCell::new(FailureDetector::disarmed(size)),
            sink: None,
        })
        .collect();
    drop(senders);

    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| scope.spawn(move || body(comm)))
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| {
                h.join().map_err(|payload| {
                    let detail = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    CommError::RankPanicked { rank, detail }
                })
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_know_their_ids() {
        let ids = run_ranks(4, |c| (c.rank(), c.size()));
        assert_eq!(ids, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn rank_panic_surfaces_as_typed_error_with_rank_and_message() {
        let res = try_run_ranks_with_faults(3, ClusterFaultPlan::none(), |c| {
            if c.rank() == 1 {
                panic!("rank 1 exploded");
            }
            c.rank()
        });
        match res {
            Err(CommError::RankPanicked { rank, detail }) => {
                assert_eq!(rank, 1);
                assert!(detail.contains("rank 1 exploded"), "detail: {detail}");
            }
            other => panic!("expected RankPanicked, got {other:?}"),
        }
    }

    #[test]
    fn healthy_ranks_return_ok_through_the_typed_path() {
        let res = try_run_ranks_with_faults(3, ClusterFaultPlan::none(), |c| c.rank() * 2)
            .expect("no rank panicked");
        assert_eq!(res, vec![0, 2, 4]);
    }

    #[test]
    fn ring_pass() {
        // Each rank sends its id to the next; total received = sum of ids.
        let got = run_ranks(5, |mut c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 7, vec![c.rank() as f64]);
            c.recv(prev, 7).expect("healthy ring")[0]
        });
        let sum: f64 = got.iter().sum();
        assert_eq!(sum, 10.0);
    }

    #[test]
    fn allreduce_min_finds_global_minimum() {
        let results = run_ranks(6, |mut c| {
            let local_dt = 0.1 + c.rank() as f64; // rank 0 has the minimum
            c.allreduce_min(local_dt).unwrap()
        });
        assert!(results.iter().all(|&v| v == 0.1));
    }

    #[test]
    fn allreduce_sum_is_exactly_the_sum() {
        let results = run_ranks(8, |mut c| c.allreduce_sum((c.rank() + 1) as f64).unwrap());
        assert!(results.iter().all(|&v| v == 36.0));
    }

    #[test]
    fn vector_allreduce_assembles_contributions() {
        let results = run_ranks(3, |mut c| {
            let mut v = vec![0.0; 4];
            v[c.rank()] = 1.0;
            v[3] = c.rank() as f64;
            c.allreduce_sum_vec(&mut v).unwrap();
            v
        });
        for v in results {
            assert_eq!(v, vec![1.0, 1.0, 1.0, 3.0]);
        }
    }

    #[test]
    fn out_of_order_messages_are_stashed() {
        let results = run_ranks(2, |mut c| {
            if c.rank() == 0 {
                // Send tag 2 first, then tag 1; receiver asks for 1 first.
                c.send(1, 2, vec![2.0]);
                c.send(1, 1, vec![1.0]);
                0.0
            } else {
                let first = c.recv(0, 1).unwrap()[0];
                let second = c.recv(0, 2).unwrap()[0];
                first * 10.0 + second
            }
        });
        assert_eq!(results[1], 12.0);
    }

    #[test]
    fn single_rank_degenerates_gracefully() {
        let r = run_ranks(1, |mut c| {
            c.barrier().unwrap();
            c.allreduce_min(0.5).unwrap()
        });
        assert_eq!(r, vec![0.5]);
    }

    #[test]
    fn barrier_synchronizes() {
        // No deadlock across repeated barriers.
        let r = run_ranks(4, |mut c| {
            for _ in 0..10 {
                c.barrier().unwrap();
            }
            c.rank()
        });
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn recv_times_out_instead_of_hanging() {
        let results = run_ranks(2, |mut c| {
            if c.rank() == 1 {
                // Rank 0 never sends: rank 1 must get a timeout, not hang.
                c.recv_timeout(0, 9, Duration::from_millis(20))
            } else {
                Err(CommError::Timeout { from: 99, tag: 0 }) // placeholder
            }
        });
        assert_eq!(results[1], Err(CommError::Timeout { from: 0, tag: 9 }));
    }

    #[test]
    fn dropped_message_surfaces_as_timeout_naming_the_rank() {
        let plan = ClusterFaultPlan::seeded(42).with_drop_rate(1.0);
        let results = run_ranks_with_faults(2, plan, |mut c| {
            if c.rank() == 0 {
                c.send(1, 5, vec![1.0]);
                Ok(vec![])
            } else {
                c.recv_timeout(0, 5, Duration::from_millis(20))
            }
        });
        assert_eq!(results[1], Err(CommError::Timeout { from: 0, tag: 5 }));
    }

    #[test]
    fn corrupted_message_detected_by_checksum() {
        let plan = ClusterFaultPlan::seeded(7).with_corrupt_rate(1.0);
        let results = run_ranks_with_faults(2, plan, |mut c| {
            if c.rank() == 0 {
                c.send(1, 5, vec![3.25, -1.5]);
                Ok(vec![])
            } else {
                c.recv_timeout(0, 5, Duration::from_millis(200))
            }
        });
        assert_eq!(results[1], Err(CommError::Corrupted { from: 0, tag: 5 }));
    }

    #[test]
    fn allreduce_reports_the_failed_rank() {
        // Rank 2's gather contribution is dropped (drop every send from
        // rank 2 only, via a stall long past the timeout is avoided — use
        // drop_rate 1 but only rank 2 sends before the reduce finishes).
        let plan = ClusterFaultPlan::seeded(3).with_drop_rate(1.0);
        let results = run_ranks_with_faults(3, plan, |mut c| {
            c.set_timeout(Duration::from_millis(30));
            c.allreduce_sum(c.rank() as f64)
        });
        // Rank 0 times out waiting for rank 1's (dropped) contribution.
        assert_eq!(results[0], Err(CommError::Timeout { from: 1, tag: u64::MAX - 1 }));
        // Non-root ranks time out on the broadcast that never comes.
        assert_eq!(results[1], Err(CommError::Timeout { from: 0, tag: u64::MAX - 2 }));
    }

    #[test]
    fn stalled_rank_delays_but_completes() {
        let plan =
            ClusterFaultPlan::seeded(1).with_stall(1, 0, Duration::from_millis(30));
        let t0 = Instant::now();
        let results = run_ranks_with_faults(2, plan, |mut c| {
            if c.rank() == 1 {
                c.send(0, 2, vec![7.0]);
                1.0
            } else {
                c.recv(1, 2).unwrap()[0]
            }
        });
        assert_eq!(results[0], 7.0);
        assert!(t0.elapsed() >= Duration::from_millis(25), "stall not served");
    }

    #[test]
    fn dead_rank_stops_transmitting_permanently() {
        // Rank 1 dies after 2 sends: the first two arrive, the rest never do.
        let plan = ClusterFaultPlan::none().with_rank_death(1, 2);
        let results = run_ranks_with_faults(2, plan, |mut c| {
            if c.rank() == 1 {
                assert!(!c.is_dead(), "alive before the scheduled point");
                for i in 0..5 {
                    c.send(0, i, vec![i as f64]);
                }
                assert!(c.is_dead(), "dead after the scheduled point");
                c.fault_stats().suppressed as f64
            } else {
                let a = c.recv_timeout(1, 0, Duration::from_millis(100)).unwrap()[0];
                let b = c.recv_timeout(1, 1, Duration::from_millis(100)).unwrap()[0];
                let lost = c.recv_timeout(1, 2, Duration::from_millis(20));
                assert_eq!(lost, Err(CommError::Timeout { from: 1, tag: 2 }));
                a + b
            }
        });
        assert_eq!(results[0], 1.0, "pre-death sends delivered");
        assert_eq!(results[1], 3.0, "three post-death sends suppressed");
    }

    #[test]
    fn suspicion_threshold_escalates_to_peer_dead() {
        let plan = ClusterFaultPlan::none().with_rank_death(0, 0);
        let results = run_ranks_with_faults(2, plan, |mut c| {
            if c.rank() == 1 {
                c.set_suspicion_threshold(3);
                let mut last = Ok(vec![]);
                for _ in 0..3 {
                    last = c.recv_timeout(0, 9, Duration::from_millis(10));
                }
                last
            } else {
                Ok(vec![])
            }
        });
        assert_eq!(results[1], Err(CommError::PeerDead { from: 0, tag: 9 }));
    }

    #[test]
    fn arrival_evidence_resets_suspicion() {
        // Two timeouts, then a real message, then two more timeouts: with
        // threshold 3 the counter must have reset, so no PeerDead.
        let results = run_ranks(2, |mut c| {
            if c.rank() == 1 {
                c.set_suspicion_threshold(3);
                for _ in 0..2 {
                    let e = c.recv_timeout(0, 9, Duration::from_millis(10));
                    assert_eq!(e, Err(CommError::Timeout { from: 0, tag: 9 }));
                }
                let v = c.recv_timeout(0, 1, Duration::from_millis(200)).unwrap();
                for _ in 0..2 {
                    let e = c.recv_timeout(0, 9, Duration::from_millis(10));
                    assert_eq!(e, Err(CommError::Timeout { from: 0, tag: 9 }), "counter reset");
                }
                v[0]
            } else {
                std::thread::sleep(Duration::from_millis(30));
                c.send(1, 1, vec![5.0]);
                0.0
            }
        });
        assert_eq!(results[1], 5.0);
    }

    #[test]
    fn detector_off_by_default_keeps_plain_timeouts() {
        let results = run_ranks(2, |mut c| {
            if c.rank() == 1 {
                let mut last = Ok(vec![]);
                for _ in 0..5 {
                    last = c.recv_timeout(0, 9, Duration::from_millis(5));
                }
                last
            } else {
                Ok(vec![])
            }
        });
        assert_eq!(results[1], Err(CommError::Timeout { from: 0, tag: 9 }));
    }

    #[test]
    fn env_seed_reaches_the_cluster_plan() {
        // No env mutation here (racy across test binaries): the default
        // path must just pass through.
        let p = ClusterFaultPlan::seeded_from_env(123);
        if gpu_sim::fault_seed_from_env().is_none() {
            assert_eq!(p.seed, 123);
        }
    }

    #[test]
    fn attached_sink_counts_messages_bytes_and_drops() {
        let sink = blast_telemetry::Telemetry::sink();
        let plan = ClusterFaultPlan::seeded(11).with_drop_rate(0.5);
        let sink2 = sink.clone();
        let dropped = run_ranks_with_faults(2, plan, move |mut c| {
            if c.rank() == 0 {
                c.attach_telemetry(sink2.clone());
                for i in 0..16 {
                    c.send(1, i, vec![i as f64; 4]);
                }
                c.fault_stats().dropped
            } else {
                0
            }
        })[0];
        assert_eq!(sink.counter(names::counters::MSGS_SENT), 16);
        assert_eq!(sink.counter(names::counters::MSG_BYTES), 16 * 4 * 8);
        assert_eq!(sink.counter(names::counters::MSGS_DROPPED), dropped as u64);
    }

    #[test]
    fn attached_sink_counts_rank_deaths() {
        let sink = blast_telemetry::Telemetry::sink();
        let plan = ClusterFaultPlan::none().with_rank_death(0, 0);
        let sink2 = sink.clone();
        run_ranks_with_faults(2, plan, move |mut c| {
            if c.rank() == 1 {
                c.attach_telemetry(sink2.clone());
                c.set_suspicion_threshold(2);
                for _ in 0..2 {
                    let _ = c.recv_timeout(0, 9, Duration::from_millis(5));
                }
            }
        });
        assert_eq!(sink.counter(names::counters::RANK_DEATHS), 1);
    }

    #[test]
    fn fault_injection_is_deterministic_under_a_seed() {
        let run = |seed: u64| {
            let plan = ClusterFaultPlan::seeded(seed).with_drop_rate(0.5);
            run_ranks_with_faults(2, plan, |c| {
                if c.rank() == 0 {
                    for i in 0..32 {
                        c.send(1, i, vec![i as f64]);
                    }
                    c.fault_stats().dropped
                } else {
                    0
                }
            })[0]
        };
        let a = run(11);
        let b = run(11);
        let c = run(12);
        assert_eq!(a, b, "same seed must drop the same messages");
        assert!(a > 0 && a < 32, "rate 0.5 should drop some but not all: {a}");
        assert_ne!(a, c, "different seeds should differ (w.h.p.)");
    }
}
