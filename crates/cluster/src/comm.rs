//! A functional MPI-like runtime: ranks as threads, channels as the wire.
//!
//! This is the execution substrate for the distributed algorithms; the
//! *cost* of communication is modeled separately in [`crate::netmodel`]
//! (the two are decoupled exactly like the functional/performance split of
//! the GPU simulator).

use crossbeam::channel::{unbounded, Receiver, Sender};

/// A message: raw `f64` payload plus a tag.
#[derive(Clone, Debug)]
struct Message {
    from: usize,
    tag: u64,
    data: Vec<f64>,
}

/// Per-rank communicator handle.
pub struct Communicator {
    rank: usize,
    size: usize,
    /// `senders[j]` delivers into rank j's inbox.
    senders: Vec<Sender<Message>>,
    inbox: Receiver<Message>,
    /// Messages received but not yet matched by a `recv`.
    stash: Vec<Message>,
}

impl Communicator {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Sends `data` to rank `to` under `tag` (non-blocking, buffered).
    pub fn send(&self, to: usize, tag: u64, data: Vec<f64>) {
        assert!(to < self.size, "send to out-of-range rank {to}");
        self.senders[to]
            .send(Message { from: self.rank, tag, data })
            .expect("receiver alive");
    }

    /// Receives the next message from `from` with `tag` (blocking,
    /// out-of-order messages are stashed).
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<f64> {
        if let Some(pos) = self.stash.iter().position(|m| m.from == from && m.tag == tag) {
            return self.stash.swap_remove(pos).data;
        }
        loop {
            let msg = self.inbox.recv().expect("senders alive");
            if msg.from == from && msg.tag == tag {
                return msg.data;
            }
            self.stash.push(msg);
        }
    }

    /// Reduction to rank 0 then broadcast — functionally exact; the
    /// log-tree *cost* is modeled by
    /// [`crate::netmodel::NetworkModel::allreduce_time`].
    fn allreduce(&mut self, value: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        const TAG_GATHER: u64 = u64::MAX - 1;
        const TAG_BCAST: u64 = u64::MAX - 2;
        if self.rank == 0 {
            let mut acc = value;
            for r in 1..self.size {
                let v = self.recv(r, TAG_GATHER);
                acc = op(acc, v[0]);
            }
            for r in 1..self.size {
                self.send(r, TAG_BCAST, vec![acc]);
            }
            acc
        } else {
            self.send(0, TAG_GATHER, vec![value]);
            self.recv(0, TAG_BCAST)[0]
        }
    }

    /// Global minimum — the paper's step 5: "An MPI reduction is used to
    /// find the global minimum time step."
    pub fn allreduce_min(&mut self, value: f64) -> f64 {
        self.allreduce(value, f64::min)
    }

    /// Global sum (dot products of the distributed PCG).
    pub fn allreduce_sum(&mut self, value: f64) -> f64 {
        self.allreduce(value, |a, b| a + b)
    }

    /// Element-wise global sum of a vector (shared-DOF assembly).
    pub fn allreduce_sum_vec(&mut self, values: &mut [f64]) {
        const TAG_VGATHER: u64 = u64::MAX - 3;
        const TAG_VBCAST: u64 = u64::MAX - 4;
        if self.rank == 0 {
            for r in 1..self.size {
                let v = self.recv(r, TAG_VGATHER);
                assert_eq!(v.len(), values.len(), "vector allreduce length mismatch");
                for (a, b) in values.iter_mut().zip(v) {
                    *a += b;
                }
            }
            for r in 1..self.size {
                self.send(r, TAG_VBCAST, values.to_vec());
            }
        } else {
            self.send(0, TAG_VGATHER, values.to_vec());
            let v = self.recv(0, TAG_VBCAST);
            values.copy_from_slice(&v);
        }
    }

    /// Barrier (allreduce of a dummy value).
    pub fn barrier(&mut self) {
        self.allreduce_sum(0.0);
    }
}

/// Spawns `size` ranks, each running `body(comm)`, and returns their
/// results in rank order.
pub fn run_ranks<R: Send>(
    size: usize,
    body: impl Fn(Communicator) -> R + Sync,
) -> Vec<R> {
    assert!(size >= 1, "need at least one rank");
    let mut senders = Vec::with_capacity(size);
    let mut inboxes = Vec::with_capacity(size);
    for _ in 0..size {
        let (tx, rx) = unbounded();
        senders.push(tx);
        inboxes.push(rx);
    }
    let body = &body;
    let mut comms: Vec<Communicator> = inboxes
        .into_iter()
        .enumerate()
        .map(|(rank, inbox)| Communicator {
            rank,
            size,
            senders: senders.clone(),
            inbox,
            stash: Vec::new(),
        })
        .collect();
    drop(senders);

    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(size);
        for comm in comms.drain(..) {
            handles.push(scope.spawn(move |_| body(comm)));
        }
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    })
    .expect("scope")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_know_their_ids() {
        let ids = run_ranks(4, |c| (c.rank(), c.size()));
        assert_eq!(ids, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn ring_pass() {
        // Each rank sends its id to the next; total received = sum of ids.
        let got = run_ranks(5, |mut c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 7, vec![c.rank() as f64]);
            c.recv(prev, 7)[0]
        });
        let sum: f64 = got.iter().sum();
        assert_eq!(sum, 10.0);
    }

    #[test]
    fn allreduce_min_finds_global_minimum() {
        let results = run_ranks(6, |mut c| {
            let local_dt = 0.1 + c.rank() as f64; // rank 0 has the minimum
            c.allreduce_min(local_dt)
        });
        assert!(results.iter().all(|&v| v == 0.1));
    }

    #[test]
    fn allreduce_sum_is_exactly_the_sum() {
        let results = run_ranks(8, |mut c| c.allreduce_sum((c.rank() + 1) as f64));
        assert!(results.iter().all(|&v| v == 36.0));
    }

    #[test]
    fn vector_allreduce_assembles_contributions() {
        let results = run_ranks(3, |mut c| {
            let mut v = vec![0.0; 4];
            v[c.rank()] = 1.0;
            v[3] = c.rank() as f64;
            c.allreduce_sum_vec(&mut v);
            v
        });
        for v in results {
            assert_eq!(v, vec![1.0, 1.0, 1.0, 3.0]);
        }
    }

    #[test]
    fn out_of_order_messages_are_stashed() {
        let results = run_ranks(2, |mut c| {
            if c.rank() == 0 {
                // Send tag 2 first, then tag 1; receiver asks for 1 first.
                c.send(1, 2, vec![2.0]);
                c.send(1, 1, vec![1.0]);
                0.0
            } else {
                let first = c.recv(0, 1)[0];
                let second = c.recv(0, 2)[0];
                first * 10.0 + second
            }
        });
        assert_eq!(results[1], 12.0);
    }

    #[test]
    fn single_rank_degenerates_gracefully() {
        let r = run_ranks(1, |mut c| {
            c.barrier();
            c.allreduce_min(0.5)
        });
        assert_eq!(r, vec![0.5]);
    }

    #[test]
    fn barrier_synchronizes() {
        // No deadlock across repeated barriers.
        let r = run_ranks(4, |mut c| {
            for _ in 0..10 {
                c.barrier();
            }
            c.rank()
        });
        assert_eq!(r.len(), 4);
    }
}
