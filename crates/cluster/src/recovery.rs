//! Rank-failure recovery: coordinated checkpoint/restart under a chaos
//! campaign.
//!
//! The campaign runs one replicated Sedov solve per rank (functional
//! replication — every rank holds the full state, exactly like the
//! distributed tests compare against the serial reference), with a
//! dt-consensus round between accepted steps. The interesting part is what
//! happens when a rank dies:
//!
//! 1. **Detection.** Rank 0 is the immortal coordinator (asserted). It
//!    gathers every survivor's dt candidate each round through the
//!    `recv_timeout` path with the failure detector armed: `K` consecutive
//!    timeouts against one peer escalate to [`CommError::PeerDead`].
//!    Exhausted patience (all redundant copies dropped) is treated the
//!    same way — a rank the coordinator cannot hear from is dead.
//! 2. **Agreement.** The coordinator broadcasts `[dt_min, n_dead,
//!    dead...]`. Survivors learn the dead set from the payload, so the
//!    whole cluster agrees without any peer-to-peer detection. A rank that
//!    finds *itself* in the dead list (a false positive whose messages all
//!    drowned) exits — agreement stays consistent either way.
//! 3. **Recovery.** Every survivor: notes the deaths and bills a quiesce
//!    barrier at idle watts, shrinks the partition onto the survivor set
//!    ([`Partition::shrink_to_fit`] re-runs the balanced split for the new
//!    rank count), resets the autotune balancer when the executor carries
//!    one, restores the newest valid generation from its local
//!    [`CheckpointStore`] (bit-identical across ranks — checkpoints are
//!    written at the same accepted-step numbers with the same consensus
//!    trajectory), and resumes. The epoch counter in the message tags
//!    bumps so replayed step numbers cannot consume stale messages.
//!
//! Because every rank computes bit-identical physics (CPU degrade is
//! bit-identical, PR 1) and dt consensus is a min over identical values,
//! the final state of a chaos run matches the fault-free run *exactly*;
//! the chaos test asserts a tolerance of 0 (documented in DESIGN.md §9).

use std::sync::Arc;
use std::time::Duration;

use autotune::AutoBalancer;
use blast_core::checkpoint::CheckpointStore;
use blast_core::exec::RECOVERY_QUIESCE_S;
use blast_core::{ExecMode, Executor, Hydro, HydroState, Sedov};
use blast_fem::CartMesh;
use gpu_sim::{CpuSpec, FaultPlan, GpuDevice};
use powermon::ResilienceReport;

use crate::comm::{
    run_ranks_with_faults, ClusterFaultPlan, CommError, CommFaultStats, Communicator,
};
use crate::partition::Partition;
use gpu_sim::DeviceCatalog;

/// Shape and patience knobs of one chaos campaign.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Ranks to spawn (>= 1; rank 0 must stay alive).
    pub ranks: usize,
    /// Zones per axis of the 2D Sedov mesh.
    pub zones: usize,
    /// Simulation end time.
    pub t_final: f64,
    /// Accepted-step budget.
    pub max_steps: usize,
    /// Coordinated checkpoint cadence, in accepted steps.
    pub checkpoint_every: usize,
    /// Per-attempt receive timeout of the consensus links.
    pub link_timeout: Duration,
    /// `K`: receive attempts before the coordinator declares a peer dead
    /// (also the failure detector's suspicion threshold).
    pub link_attempts: u32,
    /// Copies of each consensus message (redundant transmission rides out
    /// message drops without an ack channel).
    pub redundancy: usize,
    /// CFL safety factor of the solver (smaller = more, shorter steps —
    /// the campaign wants enough rounds for deaths and checkpoints to
    /// land mid-run).
    pub cfl: f64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            ranks: 3,
            zones: 4,
            t_final: 0.03,
            max_steps: 60,
            checkpoint_every: 3,
            link_timeout: Duration::from_millis(25),
            link_attempts: 4,
            redundancy: 4,
            cfl: 0.08,
        }
    }
}

/// How one rank's campaign ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RankOutcome {
    /// Reached `t_final` (or the step budget) alive.
    Completed,
    /// Stopped sending: scheduled death, or evicted by the coordinator.
    Died {
        /// Accepted steps when the rank went silent.
        at_step: usize,
    },
    /// An unrecoverable solver/protocol error (should not happen on the
    /// verified seeds; carried for diagnosis instead of a panic).
    Failed {
        /// What broke.
        detail: String,
    },
}

/// One rank's view of the campaign.
#[derive(Clone, Debug)]
pub struct RankResult {
    /// The rank id.
    pub rank: usize,
    /// How it ended.
    pub outcome: RankOutcome,
    /// Final state (survivors only carry a meaningful one).
    pub state: HydroState,
    /// Accepted steps (after any checkpoint rewinds).
    pub steps: usize,
    /// Step redos (rollback + CFL), matching `RunStats::retries`.
    pub retries: usize,
    /// Resilience counters and energy attribution of this rank's executor.
    pub report: ResilienceReport,
    /// Whole-run energy (host + device traces), J.
    pub energy_j: f64,
    /// Communication fault counters observed on this rank's sends.
    pub comm_stats: CommFaultStats,
    /// Ranks this rank saw declared dead, in detection order.
    pub dead_seen: Vec<usize>,
    /// Zones owned before the first death.
    pub zones_before: usize,
    /// Zones owned at the end (after any shrink-to-fit).
    pub zones_after: usize,
    /// The cluster fault seed the campaign ran under.
    pub seed: u64,
}

/// Aggregate resilience overhead across survivors: joules attributed to
/// checkpoints, restores, quiesce, and retry backoff, as a percentage of
/// the whole campaign's energy.
pub fn campaign_overhead_pct(results: &[RankResult]) -> f64 {
    let resilience: f64 = results.iter().map(|r| r.report.total_resilience_energy_j()).sum();
    let total: f64 = results.iter().map(|r| r.energy_j).sum();
    if total <= 0.0 {
        return 0.0;
    }
    100.0 * resilience / total
}

const P_GATHER: u64 = 0;
const P_BCAST: u64 = 1;

/// Consensus-round tag: epoch (bumped on every recovery so replayed step
/// numbers cannot consume stale traffic), step, and purpose bit. Bit 63
/// keeps the space disjoint from the reserved collective tags.
fn round_tag(epoch: u32, step: usize, purpose: u64) -> u64 {
    (1u64 << 63) | ((epoch as u64) << 44) | ((step as u64) << 1) | purpose
}

/// Fires `copies` identical messages; any one getting through is enough.
fn send_redundant(comm: &Communicator, to: usize, tag: u64, data: &[f64], copies: usize) {
    for _ in 0..copies.max(1) {
        comm.send(to, tag, data.to_vec());
    }
}

/// Receives one copy, riding out corrupt arrivals and up to `attempts`
/// timeouts. Surfaces [`CommError::PeerDead`] as soon as the communicator's
/// failure detector escalates.
fn recv_robust(
    comm: &mut Communicator,
    from: usize,
    tag: u64,
    timeout: Duration,
    attempts: u32,
    corrupt_patience: u32,
) -> Result<Vec<f64>, CommError> {
    let mut budget = attempts + corrupt_patience;
    loop {
        match comm.recv_timeout(from, tag, timeout) {
            Ok(v) => return Ok(v),
            Err(e @ CommError::PeerDead { .. }) => return Err(e),
            Err(e) => {
                budget = budget.saturating_sub(1);
                if budget == 0 {
                    return Err(e);
                }
            }
        }
    }
}

fn reset_balancer(exec: &mut Executor) {
    if let Some(b) = exec.balancer.as_mut() {
        // Re-run the convergence loop from the current ratio: the old
        // optimum was found for the pre-death rank count.
        *b = AutoBalancer::new(b.ratio());
    }
}

/// Runs the chaos campaign: `cfg.ranks` threads, each solving the same
/// Sedov problem under `plan`'s message faults and `device_plan(rank)`'s
/// device faults, with coordinated checkpoints and rank-death recovery.
///
/// Returns one [`RankResult`] per rank, in rank order.
pub fn run_chaos_campaign(
    cfg: &CampaignConfig,
    plan: ClusterFaultPlan,
    device_plan: impl Fn(usize) -> FaultPlan + Sync,
) -> Vec<RankResult> {
    assert!(cfg.ranks >= 1, "need at least one rank");
    assert!(cfg.checkpoint_every >= 1, "checkpoint cadence must be >= 1");
    assert!(
        plan.deaths.iter().all(|d| d.rank != 0),
        "rank 0 is the immortal coordinator; schedule deaths elsewhere"
    );
    let seed = plan.seed;
    run_ranks_with_faults(cfg.ranks, plan, |comm| {
        let device = device_plan(comm.rank());
        campaign_rank(cfg, comm, device, seed)
    })
}

fn campaign_rank(
    cfg: &CampaignConfig,
    mut comm: Communicator,
    device: FaultPlan,
    seed: u64,
) -> RankResult {
    let rank = comm.rank();
    comm.set_timeout(cfg.link_timeout);
    if rank == 0 {
        comm.set_suspicion_threshold(cfg.link_attempts);
    }

    let dev = Arc::new(GpuDevice::new(DeviceCatalog::gpu("k20")));
    dev.set_fault_plan(device);
    let exec = Executor::new(
        ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 },
        CpuSpec::e5_2670(),
        Some(dev),
    );
    let problem = Sedov::default();
    let mut hydro = Hydro::<2>::builder(&problem, [cfg.zones, cfg.zones])
        .cfl(cfg.cfl)
        .executor(exec)
        .build()
        .expect("campaign problem setup");
    // One sink per rank: comm counters land next to the solver's spans.
    comm.attach_telemetry(hydro.executor().telemetry().clone());
    let mut state = hydro.initial_state();
    let mesh = CartMesh::<2>::unit(cfg.zones);
    let mut partition = Partition::balanced(&mesh, cfg.ranks);
    let zones_before = partition.zones_of_rank(rank).len();
    let mut my_slot = rank;
    let mut store = CheckpointStore::in_memory();
    let mut alive: Vec<usize> = (0..cfg.ranks).collect();
    let mut dead_seen: Vec<usize> = Vec::new();
    let mut epoch: u32 = 0;
    let mut steps = 0usize;
    let mut retries = 0usize;
    let mut steps_since = 0usize;

    let finish = |outcome: RankOutcome,
                  hydro: &Hydro<2>,
                  state: HydroState,
                  steps: usize,
                  retries: usize,
                  comm: &Communicator,
                  dead_seen: Vec<usize>,
                  zones_after: usize| {
        let exec = hydro.executor();
        let host_trace = exec.host.power_trace();
        let mut energy = host_trace.energy(0.0, host_trace.end_time());
        if let Some(g) = &exec.gpu {
            let t = g.power_trace();
            energy += t.energy(0.0, t.end_time());
        }
        RankResult {
            rank,
            outcome,
            state,
            steps,
            retries,
            report: exec.resilience_report(retries),
            energy_j: energy,
            comm_stats: comm.fault_stats(),
            dead_seen,
            zones_before,
            zones_after,
            seed,
        }
    };

    // Generation 0: checkpoint the initial state so recovery always has a
    // restore target, even before the first cadence point.
    let mut dt = match hydro.try_suggest_dt(&state) {
        Ok(d) => d,
        Err(e) => {
            let zones = partition.zones_of_rank(my_slot).len();
            return finish(
                RankOutcome::Failed { detail: e.to_string() },
                &hydro,
                state,
                0,
                0,
                &comm,
                dead_seen,
                zones,
            );
        }
    };
    if let Err(e) = hydro.write_checkpoint(&state, dt, 0, 0, &mut store) {
        let zones = partition.zones_of_rank(my_slot).len();
        return finish(
            RankOutcome::Failed { detail: e.to_string() },
            &hydro,
            state,
            0,
            0,
            &comm,
            dead_seen,
            zones,
        );
    }

    while state.t < cfg.t_final - 1e-14 && steps < cfg.max_steps {
        // ---- dt-consensus round (also the failure-detection heartbeat) --
        let (dt_min, newly_dead) = if rank == 0 {
            let mut dt_min = dt;
            let mut newly_dead: Vec<usize> = Vec::new();
            let peers: Vec<usize> = alive.iter().copied().filter(|&p| p != 0).collect();
            for &peer in &peers {
                match recv_robust(
                    &mut comm,
                    peer,
                    round_tag(epoch, steps, P_GATHER),
                    cfg.link_timeout,
                    cfg.link_attempts,
                    cfg.redundancy as u32,
                ) {
                    Ok(v) => dt_min = dt_min.min(v[0]),
                    Err(CommError::PeerDead { .. }) | Err(CommError::Timeout { .. }) => {
                        newly_dead.push(peer);
                    }
                    Err(e) => {
                        let zones = partition.zones_of_rank(my_slot).len();
                        return finish(
                            RankOutcome::Failed { detail: e.to_string() },
                            &hydro,
                            state,
                            steps,
                            retries,
                            &comm,
                            dead_seen,
                            zones,
                        );
                    }
                }
            }
            let mut payload = vec![dt_min, newly_dead.len() as f64];
            payload.extend(newly_dead.iter().map(|&d| d as f64));
            // Broadcast to everyone still believed alive at round start:
            // truly dead ranks never read it, falsely-accused ones take it
            // as their eviction notice.
            for &peer in &peers {
                send_redundant(
                    &comm,
                    peer,
                    round_tag(epoch, steps, P_BCAST),
                    &payload,
                    cfg.redundancy,
                );
            }
            (dt_min, newly_dead)
        } else {
            send_redundant(
                &comm,
                0,
                round_tag(epoch, steps, P_GATHER),
                &[dt],
                cfg.redundancy,
            );
            if comm.is_dead() {
                let zones = partition.zones_of_rank(my_slot).len();
                return finish(
                    RankOutcome::Died { at_step: steps },
                    &hydro,
                    state,
                    steps,
                    retries,
                    &comm,
                    dead_seen,
                    zones,
                );
            }
            let v = match recv_robust(
                &mut comm,
                0,
                round_tag(epoch, steps, P_BCAST),
                cfg.link_timeout,
                cfg.link_attempts * 4,
                cfg.redundancy as u32,
            ) {
                Ok(v) => v,
                Err(e) => {
                    let zones = partition.zones_of_rank(my_slot).len();
                    return finish(
                        RankOutcome::Failed { detail: format!("lost the coordinator: {e}") },
                        &hydro,
                        state,
                        steps,
                        retries,
                        &comm,
                        dead_seen,
                        zones,
                    );
                }
            };
            let n_dead = v[1] as usize;
            let newly_dead: Vec<usize> = v[2..2 + n_dead].iter().map(|&x| x as usize).collect();
            if newly_dead.contains(&rank) {
                // The coordinator gave up on us; exit to keep agreement.
                let zones = partition.zones_of_rank(my_slot).len();
                return finish(
                    RankOutcome::Died { at_step: steps },
                    &hydro,
                    state,
                    steps,
                    retries,
                    &comm,
                    dead_seen,
                    zones,
                );
            }
            (v[0], newly_dead)
        };

        // ---- rank-death recovery -------------------------------------
        if !newly_dead.is_empty() {
            dead_seen.extend_from_slice(&newly_dead);
            alive.retain(|r| !newly_dead.contains(r));
            let exec = hydro.executor();
            exec.note_rank_deaths(newly_dead.len() as u64);
            exec.bill_recovery_quiesce(RECOVERY_QUIESCE_S);
            let (shrunk, slots) = partition.shrink_to_fit(&mesh, &alive);
            partition = shrunk;
            my_slot = slots[rank].expect("survivors keep a slot");
            reset_balancer(hydro.executor_mut());
            let loaded = store.latest_valid().expect("generation 0 always exists");
            hydro.restore_checkpoint(&loaded.checkpoint, &mut state);
            steps = loaded.checkpoint.steps as usize;
            retries = loaded.checkpoint.retries as usize;
            dt = loaded.checkpoint.dt;
            hydro.executor().bill_checkpoint_restore(loaded.bytes);
            {
                // Mark the end of the recovery window on the cluster lane.
                let exec = hydro.executor();
                exec.telemetry().instant(
                    blast_telemetry::Track::Cluster,
                    blast_telemetry::names::phases::RECOVERY_COMPLETE,
                    exec.host.now(),
                );
            }
            steps_since = 0;
            epoch += 1;
            continue;
        }

        // ---- one accepted step at the consensus dt -------------------
        dt = dt_min;
        let dt_step = dt.min(cfg.t_final - state.t);
        let adv = match hydro.try_advance(&mut state, dt_step) {
            Ok(a) => a,
            Err(e) => {
                let zones = partition.zones_of_rank(my_slot).len();
                return finish(
                    RankOutcome::Failed { detail: e.to_string() },
                    &hydro,
                    state,
                    steps,
                    retries,
                    &comm,
                    dead_seen,
                    zones,
                );
            }
        };
        retries += adv.redos;
        steps += 1;
        steps_since += 1;
        dt = adv.dt_next;
        if steps_since >= cfg.checkpoint_every {
            if let Err(e) = hydro.write_checkpoint(&state, dt, steps, retries, &mut store) {
                let zones = partition.zones_of_rank(my_slot).len();
                return finish(
                    RankOutcome::Failed { detail: e.to_string() },
                    &hydro,
                    state,
                    steps,
                    retries,
                    &comm,
                    dead_seen,
                    zones,
                );
            }
            steps_since = 0;
        }
    }

    let zones = partition.zones_of_rank(my_slot).len();
    finish(RankOutcome::Completed, &hydro, state, steps, retries, &comm, dead_seen, zones)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> CampaignConfig {
        CampaignConfig {
            link_timeout: Duration::from_millis(15),
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn healthy_campaign_completes_in_agreement() {
        let cfg = quick_cfg();
        let results =
            run_chaos_campaign(&cfg, ClusterFaultPlan::none(), |_| FaultPlan::none());
        assert_eq!(results.len(), 3);
        for r in &results {
            assert_eq!(r.outcome, RankOutcome::Completed, "rank {}: {:?}", r.rank, r.outcome);
            assert!(r.report.checkpoints_written > 0, "coordinated cadence must fire");
            assert_eq!(r.report.rank_deaths, 0);
            assert_eq!(r.state.v, results[0].state.v, "replicated state must agree");
            assert_eq!(r.state.t, results[0].state.t);
        }
    }

    #[test]
    fn rank_death_recovers_onto_survivors_bit_identically() {
        let cfg = quick_cfg();
        let fault_free =
            run_chaos_campaign(&cfg, ClusterFaultPlan::none(), |_| FaultPlan::none());
        assert!(fault_free[0].steps >= 4, "need room for a mid-run death: {}", fault_free[0].steps);

        // Rank 2 dies two consensus rounds in (each round = `redundancy`
        // gather sends), well before the fault-free run's end.
        let plan = ClusterFaultPlan::none().with_rank_death(2, 2 * cfg.redundancy as u64);
        let results = run_chaos_campaign(&cfg, plan, |_| FaultPlan::none());

        assert!(matches!(results[2].outcome, RankOutcome::Died { .. }), "{:?}", results[2].outcome);
        for r in &results[..2] {
            assert_eq!(r.outcome, RankOutcome::Completed, "rank {}: {:?}", r.rank, r.outcome);
            assert_eq!(r.dead_seen, vec![2]);
            assert_eq!(r.report.rank_deaths, 1);
            assert!(r.report.restores >= 1, "recovery must restore a checkpoint");
            assert!(r.report.resilience_energy_j > 0.0, "recovery must cost energy");
            assert!(
                r.zones_after >= r.zones_before,
                "shrink-to-fit never shrinks a survivor: {} -> {}",
                r.zones_before,
                r.zones_after
            );
            // Deterministic replication: the recovered trajectory matches
            // the fault-free run exactly.
            assert_eq!(r.state.v, fault_free[r.rank].state.v, "rank {}", r.rank);
            assert_eq!(r.state.e, fault_free[r.rank].state.e, "rank {}", r.rank);
            assert_eq!(r.state.t, fault_free[r.rank].state.t);
        }
        // The shrunk partition covers the whole mesh with the survivors.
        let total: usize = results[..2].iter().map(|r| r.zones_after).sum();
        assert_eq!(total, cfg.zones * cfg.zones, "survivors own every zone");
    }
}
