//! Domain partitioning and shared-DOF groups (Figs. 9-10).
//!
//! Each MPI task owns a structured block of zones. Continuous (H1) DOFs on
//! inter-block faces are *shared*: they belong to a group of tasks, one of
//! which (the lowest rank, the "master") owns the DOF in the global
//! numbering. Corner forces are zone-local; assembling the momentum RHS
//! requires summing the shared DOFs' contributions across their group —
//! the communication pattern the scaling model charges for.

use blast_fem::{CartMesh, H1Space};

/// A structured block partition of a mesh across ranks.
#[derive(Clone, Debug)]
pub struct Partition<const D: usize> {
    ranks_per_axis: [usize; D],
    zones_per_axis: [usize; D],
    rank_of_zone: Vec<usize>,
    zones_of_rank: Vec<Vec<usize>>,
}

impl<const D: usize> Partition<D> {
    /// Splits `mesh` into a grid of `ranks_per_axis` blocks. Zone counts
    /// need not divide evenly; remainder zones go to the trailing blocks.
    pub fn new(mesh: &CartMesh<D>, ranks_per_axis: [usize; D]) -> Self {
        let zpa = mesh.zones_per_axis();
        for d in 0..D {
            assert!(
                ranks_per_axis[d] >= 1 && ranks_per_axis[d] <= zpa[d],
                "axis {d}: {} ranks for {} zones",
                ranks_per_axis[d],
                zpa[d]
            );
        }
        let num_ranks: usize = ranks_per_axis.iter().product();
        let mut rank_of_zone = vec![0usize; mesh.num_zones()];
        let mut zones_of_rank = vec![Vec::new(); num_ranks];
        for z in 0..mesh.num_zones() {
            let mi = mesh.zone_multi_index(z);
            let mut flat = 0;
            for d in (0..D).rev() {
                // Block index along axis d.
                let b = (mi[d] * ranks_per_axis[d]) / zpa[d];
                flat = flat * ranks_per_axis[d] + b;
            }
            rank_of_zone[z] = flat;
            zones_of_rank[flat].push(z);
        }
        Self { ranks_per_axis, zones_per_axis: zpa, rank_of_zone, zones_of_rank }
    }

    /// Picks a near-cubic rank grid for `num_ranks` (must factorize into
    /// counts no larger than the zone counts).
    pub fn balanced(mesh: &CartMesh<D>, num_ranks: usize) -> Self {
        let mut grid = [1usize; D];
        let mut remaining = num_ranks;
        // Greedy: repeatedly give the smallest prime factor to the axis
        // with the largest zones-per-rank ratio.
        let zpa = mesh.zones_per_axis();
        while remaining > 1 {
            let p = smallest_prime_factor(remaining);
            let axis = (0..D)
                .max_by(|&a, &b| {
                    let ra = zpa[a] as f64 / grid[a] as f64;
                    let rb = zpa[b] as f64 / grid[b] as f64;
                    ra.partial_cmp(&rb).expect("finite")
                })
                .expect("D >= 1");
            grid[axis] *= p;
            remaining /= p;
        }
        Self::new(mesh, grid)
    }

    /// Total ranks.
    pub fn num_ranks(&self) -> usize {
        self.ranks_per_axis.iter().product()
    }

    /// Rank grid.
    pub fn ranks_per_axis(&self) -> [usize; D] {
        self.ranks_per_axis
    }

    /// Owning rank of a zone.
    pub fn rank_of_zone(&self, z: usize) -> usize {
        self.rank_of_zone[z]
    }

    /// Zones of a rank.
    pub fn zones_of_rank(&self, r: usize) -> &[usize] {
        &self.zones_of_rank[r]
    }

    /// For every H1 DOF, the sorted group of ranks sharing it. Interior
    /// DOFs have a single-rank group; face/edge/corner DOFs have 2, 4 (2D)
    /// or up to 8 (3D) ranks — exactly Fig. 10's groups.
    pub fn dof_groups(&self, space: &H1Space<D>) -> Vec<Vec<usize>> {
        assert_eq!(space.mesh().zones_per_axis(), self.zones_per_axis);
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); space.num_dofs()];
        for z in 0..self.rank_of_zone.len() {
            let r = self.rank_of_zone[z];
            for &dof in space.zone_dofs(z) {
                if !groups[dof].contains(&r) {
                    groups[dof].push(r);
                }
            }
        }
        for g in &mut groups {
            g.sort_unstable();
        }
        groups
    }

    /// Master (owner) rank of each DOF: the lowest rank of its group.
    pub fn dof_owners(&self, space: &H1Space<D>) -> Vec<usize> {
        self.dof_groups(space).iter().map(|g| g[0]).collect()
    }

    /// Number of *shared* DOFs a rank participates in (its communication
    /// surface, which the halo-exchange cost model charges for).
    pub fn shared_dofs_of_rank(&self, space: &H1Space<D>, rank: usize) -> usize {
        self.dof_groups(space)
            .iter()
            .filter(|g| g.len() > 1 && g.contains(&rank))
            .count()
    }

    /// Re-partitions the whole mesh onto the surviving ranks after one or
    /// more rank deaths (the recovery protocol's shrink-to-fit step).
    ///
    /// `survivors` is the sorted list of *old* rank ids still alive. The
    /// returned partition covers every zone with `survivors.len()` compact
    /// new ranks `0..n`; the companion map gives, for each old rank id, its
    /// new compact id (`None` for the dead).
    pub fn shrink_to_fit(
        &self,
        mesh: &CartMesh<D>,
        survivors: &[usize],
    ) -> (Partition<D>, Vec<Option<usize>>) {
        assert!(!survivors.is_empty(), "at least one rank must survive");
        assert!(
            survivors.windows(2).all(|w| w[0] < w[1]),
            "survivor list must be sorted and unique: {survivors:?}"
        );
        let old_n = self.num_ranks();
        assert!(
            survivors.iter().all(|&r| r < old_n),
            "survivor id out of range: {survivors:?} for {old_n} ranks"
        );
        assert_eq!(mesh.zones_per_axis(), self.zones_per_axis, "mesh/partition mismatch");
        let shrunk = Partition::balanced(mesh, survivors.len());
        let mut slot_of_rank = vec![None; old_n];
        for (slot, &r) in survivors.iter().enumerate() {
            slot_of_rank[r] = Some(slot);
        }
        (shrunk, slot_of_rank)
    }
}

fn smallest_prime_factor(n: usize) -> usize {
    debug_assert!(n >= 2);
    let mut p = 2;
    while p * p <= n {
        if n.is_multiple_of(p) {
            return p;
        }
        p += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_zone_assigned_exactly_once() {
        let mesh = CartMesh::<2>::unit(6);
        let part = Partition::new(&mesh, [2, 3]);
        assert_eq!(part.num_ranks(), 6);
        let mut counts = vec![0usize; 6];
        for z in 0..mesh.num_zones() {
            counts[part.rank_of_zone(z)] += 1;
        }
        assert!(counts.iter().all(|&c| c == 6), "{counts:?}");
        let total: usize = (0..6).map(|r| part.zones_of_rank(r).len()).sum();
        assert_eq!(total, 36);
    }

    #[test]
    fn blocks_are_contiguous() {
        let mesh = CartMesh::<2>::unit(4);
        let part = Partition::new(&mesh, [2, 2]);
        // Zone (0,0) and (1,1) same block; (2,0) different.
        let z00 = mesh.zone_index([0, 0]);
        let z11 = mesh.zone_index([1, 1]);
        let z20 = mesh.zone_index([2, 0]);
        assert_eq!(part.rank_of_zone(z00), part.rank_of_zone(z11));
        assert_ne!(part.rank_of_zone(z00), part.rank_of_zone(z20));
    }

    #[test]
    fn uneven_split_assigns_all() {
        let mesh = CartMesh::<2>::new([5, 3], [0.0; 2], [1.0; 2]);
        let part = Partition::new(&mesh, [2, 1]);
        let n0 = part.zones_of_rank(0).len();
        let n1 = part.zones_of_rank(1).len();
        assert_eq!(n0 + n1, 15);
        assert!((n0 as i64 - n1 as i64).abs() <= 3);
    }

    #[test]
    fn dof_groups_match_fig10_structure() {
        // 2x2 ranks on a 4x4 Q1 mesh: the center lattice DOF is shared by
        // all four ranks; face DOFs by two; interior by one.
        let mesh = CartMesh::<2>::unit(4);
        let space = H1Space::new(mesh.clone(), 1);
        let part = Partition::new(&mesh, [2, 2]);
        let groups = part.dof_groups(&space);
        // 5x5 lattice; center = index (2,2) -> 2 + 2*5 = 12.
        assert_eq!(groups[12], vec![0, 1, 2, 3]);
        // (1, 2) = 11: on the horizontal cut between rank 0 and rank 2.
        assert_eq!(groups[11].len(), 2);
        // (1, 1) = 6: interior of rank 0.
        assert_eq!(groups[6], vec![0]);
    }

    #[test]
    fn owners_are_group_minimums() {
        let mesh = CartMesh::<2>::unit(4);
        let space = H1Space::new(mesh.clone(), 2);
        let part = Partition::new(&mesh, [2, 2]);
        let groups = part.dof_groups(&space);
        let owners = part.dof_owners(&space);
        for (g, &o) in groups.iter().zip(&owners) {
            assert_eq!(o, g[0]);
            assert!(g.windows(2).all(|w| w[0] < w[1]), "sorted unique");
        }
    }

    #[test]
    fn shared_dof_count_is_the_surface() {
        // 2 ranks splitting 4x4 Q2: the cut passes through one lattice
        // column of 2*4+1 = 9 DOFs.
        let mesh = CartMesh::<2>::unit(4);
        let space = H1Space::new(mesh.clone(), 2);
        let part = Partition::new(&mesh, [2, 1]);
        assert_eq!(part.shared_dofs_of_rank(&space, 0), 9);
        assert_eq!(part.shared_dofs_of_rank(&space, 1), 9);
    }

    #[test]
    fn balanced_grid_is_near_cubic() {
        let mesh = CartMesh::<3>::unit(16);
        let part = Partition::balanced(&mesh, 8);
        assert_eq!(part.ranks_per_axis(), [2, 2, 2]);
        let part64 = Partition::balanced(&mesh, 64);
        assert_eq!(part64.ranks_per_axis(), [4, 4, 4]);
    }

    #[test]
    fn balanced_handles_non_power_counts() {
        let mesh = CartMesh::<2>::unit(12);
        let part = Partition::balanced(&mesh, 6);
        let grid = part.ranks_per_axis();
        assert_eq!(grid.iter().product::<usize>(), 6);
    }

    #[test]
    fn shrink_to_fit_covers_every_zone_with_survivors() {
        let mesh = CartMesh::<2>::unit(4);
        let part = Partition::new(&mesh, [2, 2]);
        // Rank 1 died.
        let (shrunk, slots) = part.shrink_to_fit(&mesh, &[0, 2, 3]);
        assert_eq!(shrunk.num_ranks(), 3);
        let total: usize = (0..3).map(|r| shrunk.zones_of_rank(r).len()).sum();
        assert_eq!(total, mesh.num_zones(), "every zone reassigned");
        assert_eq!(slots, vec![Some(0), None, Some(1), Some(2)]);
    }

    #[test]
    fn shrink_to_fit_to_one_rank_owns_everything() {
        let mesh = CartMesh::<2>::unit(4);
        let part = Partition::new(&mesh, [2, 1]);
        let (shrunk, slots) = part.shrink_to_fit(&mesh, &[1]);
        assert_eq!(shrunk.num_ranks(), 1);
        assert_eq!(shrunk.zones_of_rank(0).len(), mesh.num_zones());
        assert_eq!(slots, vec![None, Some(0)]);
    }

    #[test]
    #[should_panic(expected = "sorted and unique")]
    fn shrink_to_fit_rejects_unsorted_survivors() {
        let mesh = CartMesh::<2>::unit(4);
        let part = Partition::new(&mesh, [2, 2]);
        let _ = part.shrink_to_fit(&mesh, &[2, 0]);
    }

    #[test]
    #[should_panic(expected = "ranks for")]
    fn too_many_ranks_per_axis_rejected() {
        let mesh = CartMesh::<2>::unit(2);
        Partition::new(&mesh, [4, 1]);
    }
}
