//! The φ-accrual-style (simplified: consecutive-miss counting) failure
//! detector shared by the rank runtime and the job supervisor.
//!
//! The policy is deliberately minimal and deterministic: `k` consecutive
//! misses against one peer — receive timeouts for a communicator, missed
//! heartbeats for a worker — with no evidence of life in between declare
//! that peer dead. Any arrival resets its counter. The same component
//! backs [`Communicator`](crate::comm::Communicator)'s `PeerDead`
//! escalation and `blast-serve`'s worker-death declarations, so both
//! layers age out silent peers with identical semantics.

/// Consecutive-miss failure detector over a fixed peer set.
#[derive(Clone, Debug)]
pub struct FailureDetector {
    /// Consecutive misses per peer (reset by evidence of life).
    misses: Vec<u32>,
    /// Misses that escalate to a death verdict. `u32::MAX` disarms.
    threshold: u32,
}

impl FailureDetector {
    /// A detector over `peers` peers that never declares anyone dead
    /// (the communicator's default: timeouts stay plain timeouts).
    pub fn disarmed(peers: usize) -> Self {
        Self { misses: vec![0; peers], threshold: u32::MAX }
    }

    /// A detector declaring a peer dead after `threshold` consecutive
    /// misses.
    pub fn new(peers: usize, threshold: u32) -> Self {
        assert!(threshold >= 1, "suspicion threshold must be at least 1");
        Self { misses: vec![0; peers], threshold }
    }

    /// Arms (or re-arms) the detector. Pass `u32::MAX` to disarm.
    pub fn set_threshold(&mut self, threshold: u32) {
        assert!(threshold >= 1, "suspicion threshold must be at least 1");
        self.threshold = threshold;
    }

    /// The current escalation threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Number of peers tracked.
    pub fn peers(&self) -> usize {
        self.misses.len()
    }

    /// Records evidence of life from `peer` (a message arrived, a
    /// heartbeat returned): its consecutive-miss counter resets.
    pub fn record_evidence(&mut self, peer: usize) {
        self.misses[peer] = 0;
    }

    /// Records one miss against `peer` and returns whether that miss
    /// crossed the threshold — i.e. the caller should now treat the peer
    /// as permanently dead.
    pub fn record_miss(&mut self, peer: usize) -> bool {
        self.misses[peer] = self.misses[peer].saturating_add(1);
        self.misses[peer] >= self.threshold
    }

    /// Consecutive misses currently held against `peer`.
    pub fn misses(&self, peer: usize) -> u32 {
        self.misses[peer]
    }

    /// Whether `peer` has already crossed the threshold.
    pub fn is_dead(&self, peer: usize) -> bool {
        self.misses[peer] >= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declares_dead_exactly_at_the_threshold() {
        let mut d = FailureDetector::new(3, 3);
        assert!(!d.record_miss(1));
        assert!(!d.record_miss(1));
        assert!(!d.is_dead(1));
        assert!(d.record_miss(1), "third consecutive miss escalates");
        assert!(d.is_dead(1));
        assert_eq!(d.misses(0), 0, "other peers untouched");
    }

    #[test]
    fn evidence_of_life_resets_the_count() {
        let mut d = FailureDetector::new(2, 2);
        assert!(!d.record_miss(0));
        d.record_evidence(0);
        assert_eq!(d.misses(0), 0);
        assert!(!d.record_miss(0), "counting restarts after evidence");
        assert!(d.record_miss(0));
    }

    #[test]
    fn disarmed_never_declares() {
        let mut d = FailureDetector::disarmed(1);
        for _ in 0..10_000 {
            assert!(!d.record_miss(0));
        }
        assert!(!d.is_dead(0));
    }
}
