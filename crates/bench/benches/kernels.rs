//! Criterion wall-clock benchmarks of the computational cores (the *real*
//! Rust execution, not the simulated-device times): batched small-matrix
//! decompositions, batched DGEMM families, the corner-force pipeline, CSR
//! SpMV, and PCG.

use blast_kernels::base::compute_az_pipeline;
use blast_kernels::k1::AdjugateDetKernel;
use blast_kernels::k2::ZoneConstants;
use blast_kernels::k56::BatchedDimGemm;
use blast_kernels::k7::FzKernel;
use blast_kernels::ProblemShape;
use blast_la::{
    batched_gemm_nn, pcg_solve, BatchedMats, CsrBuilder, DMatrix, DiagPrecond, PcgOptions,
};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_batched_small(c: &mut Criterion) {
    let count = 32_768;
    let a = BatchedMats::from_fn(3, 3, count, |z, i, j| ((z + i * 2 + j) as f64 * 0.13).sin());
    let b = BatchedMats::from_fn(3, 3, count, |z, i, j| ((z * 3 + i + j) as f64 * 0.29).cos());

    c.bench_function("k56_batched_dgemm_3x3_32k", |bench| {
        let k = BatchedDimGemm::nn_tuned();
        let mut out = BatchedMats::zeros(3, 3, count);
        bench.iter(|| {
            k.compute(black_box(&a), black_box(&b), None, &mut out);
            black_box(out.get(0, 0, 0))
        });
    });

    c.bench_function("la_batched_gemm_nn_3x3_32k", |bench| {
        let mut out = BatchedMats::zeros(3, 3, count);
        bench.iter(|| {
            batched_gemm_nn(1.0, black_box(&a), black_box(&b), 0.0, &mut out);
            black_box(out.get(0, 0, 0))
        });
    });

    c.bench_function("k1_svd_adjugate_det_3x3_32k", |bench| {
        let shape = ProblemShape::new(3, 2, count / 64);
        let mut adj = BatchedMats::zeros(3, 3, count);
        let mut det = vec![0.0; count];
        let mut hmin = vec![0.0; count];
        // Well-conditioned Jacobians.
        let jac = BatchedMats::from_fn(3, 3, count, |z, i, j| {
            if i == j { 1.0 + 0.1 * ((z + i) as f64).sin() } else { 0.05 * ((z + j) as f64).cos() }
        });
        bench.iter(|| {
            AdjugateDetKernel::compute(&shape, black_box(&jac), &mut adj, &mut det, &mut hmin);
            black_box(det[0])
        });
    });
}

fn bench_corner_force(c: &mut Criterion) {
    // 2D Q2-Q1 over 256 zones with a synthetic but valid single-zone-map
    // mesh: each zone maps to itself (structured unit zones).
    let shape = ProblemShape::new(2, 2, 256);
    let mesh = blast_fem::CartMesh::<2>::unit(16);
    let space = blast_fem::H1Space::new(mesh.clone(), 2);
    let rule = blast_fem::TensorRule::<2>::gauss(4);
    let table = space.basis().tabulate(&rule.points);
    let thermo = blast_fem::L2Space::new(mesh, 1);
    let thermo_table = thermo.basis().tabulate(&rule.points);
    let n = space.num_dofs();
    let zone_dofs: Vec<usize> =
        (0..256).flat_map(|z| space.zone_dofs(z).iter().copied()).collect();
    let x = space.initial_coords();
    let v = vec![0.01; 2 * n];
    let e = vec![1.0; thermo.num_dofs()];
    let rho0detj0 = vec![1.0 / 256.0; shape.total_points()];
    let consts = ZoneConstants {
        gamma: vec![1.4; 256],
        h0: vec![1.0 / 32.0; 256],
        j0inv_diag: vec![16.0; 512],
    };

    c.bench_function("corner_force_pipeline_2d_q2_256z", |bench| {
        bench.iter(|| {
            let out = compute_az_pipeline(
                &shape,
                black_box(&x),
                black_box(&v),
                black_box(&e),
                n,
                &zone_dofs,
                &table.grads,
                &thermo_table.values,
                &rule.weights,
                &rho0detj0,
                &consts,
                true,
            );
            black_box(out.inv_dt[0])
        });
    });

    c.bench_function("k7_fz_gemm_nt_2d_q2_256z", |bench| {
        let az = BatchedMats::from_fn(shape.nvdof(), shape.npts, 256, |z, i, j| {
            ((z + i + j) as f64 * 0.01).sin()
        });
        let b = DMatrix::from_fn(shape.nthermo, shape.npts, |i, j| ((i + j) as f64 * 0.1).cos());
        let mut fz = BatchedMats::zeros(shape.nvdof(), shape.nthermo, 256);
        bench.iter(|| {
            FzKernel::compute(&shape, black_box(&az), black_box(&b), &mut fz);
            black_box(fz.get(0, 0, 0))
        });
    });
}

fn bench_solvers(c: &mut Criterion) {
    // FEM-density banded SPD system.
    let n = 20_000;
    let half_band = 20;
    let mut builder = CsrBuilder::new(n, n);
    for i in 0..n {
        builder.add(i, i, 2.0 * half_band as f64);
        for o in 1..=half_band {
            if i >= o {
                builder.add(i, i - o, -0.5);
            }
            if i + o < n {
                builder.add(i, i + o, -0.5);
            }
        }
    }
    let a = builder.build();
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.001).sin()).collect();
    let pre = DiagPrecond::from_diagonal(&a.diagonal());

    c.bench_function("csr_spmv_20k_banded", |bench| {
        let mut y = vec![0.0; n];
        bench.iter(|| {
            a.spmv_into(black_box(&b), &mut y);
            black_box(y[0])
        });
    });

    c.bench_function("pcg_solve_20k_banded", |bench| {
        bench.iter_batched(
            || vec![0.0; n],
            |mut x| {
                let res = pcg_solve(&mut (&a), &pre, &b, &mut x, &PcgOptions::default());
                black_box(res.iterations)
            },
            BatchSize::LargeInput,
        );
    });
}

criterion_group!(benches, bench_batched_small, bench_corner_force, bench_solvers);
criterion_main!(benches);
