//! Serve-storm load test driver: bursty multi-tenant job arrivals under
//! chaos. Exits non-zero if any supervision gate fails (lost jobs,
//! energy that does not reconcile, a missed worker death).
fn main() {
    let (text, violations) = blast_bench::experiments::serve_storm::report_with_status();
    print!("{text}");
    if !violations.is_empty() {
        std::process::exit(1);
    }
}
