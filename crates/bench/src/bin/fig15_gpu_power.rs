//! Regenerates the paper artifact `fig15_gpu_power`.
fn main() {
    print!("{}", blast_bench::experiments::fig15_gpu_power::report());
}
