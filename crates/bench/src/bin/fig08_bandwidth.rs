//! Regenerates the paper artifact `fig08_bandwidth`.
fn main() {
    print!("{}", blast_bench::experiments::fig08_bandwidth::report());
}
