//! Measures the fused streaming PCG kernels against the unfused
//! launch-per-op loop (host wall-clock + modeled GPU-sim leg), writes
//! `BENCH_pcg_streaming.json`, and exits non-zero if fusion loses on any
//! order >= 2 host shape or fails to cut the modeled launch count, device
//! time, or energy — the CI pcg-stream-smoke gate.
//!
//! `--smoke` (or `BLAST_BENCH_SMOKE=1`) shrinks the measurement budget
//! for CI; the shape list and the gates stay complete.

use std::process::ExitCode;

use blast_bench::experiments::pcg_streaming;

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("BLAST_BENCH_SMOKE").is_ok_and(|v| v != "0");
    let r = pcg_streaming::measure_with_budget(smoke);
    print!("{}", pcg_streaming::render(&r));

    let path = "BENCH_pcg_streaming.json";
    if let Err(e) = std::fs::write(path, r.to_json()) {
        eprintln!("pcg_streaming: failed to write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");

    let failures = r.gate_failures();
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in failures {
            eprintln!("GATE FAIL {f}");
        }
        ExitCode::FAILURE
    }
}
