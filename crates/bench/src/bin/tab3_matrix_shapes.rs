//! Regenerates the paper artifact `tab3_matrix_shapes`.
fn main() {
    print!("{}", blast_bench::experiments::tab3_matrix_shapes::report());
}
