//! Regenerates the paper artifact `tab5_autobalance`.
fn main() {
    print!("{}", blast_bench::experiments::tab5_autobalance::report());
}
