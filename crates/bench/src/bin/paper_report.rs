//! Regenerates every table and figure of the paper's evaluation in one run.
//!
//! Optionally pass experiment names to run a subset:
//! `cargo run -p blast-bench --release --bin paper_report -- fig11_speedup`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names = if args.is_empty() {
        blast_bench::experiments::all_experiment_names()
            .into_iter()
            .map(String::from)
            .collect()
    } else {
        args
    };
    for name in names {
        match blast_bench::experiments::run_by_name(&name) {
            Some(report) => {
                println!("{report}");
                println!();
            }
            None => eprintln!("unknown experiment: {name}"),
        }
    }
}
