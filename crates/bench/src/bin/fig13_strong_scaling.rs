//! Regenerates the paper artifact `fig13_strong_scaling`.
fn main() {
    print!("{}", blast_bench::experiments::fig13_strong_scaling::report());
}
