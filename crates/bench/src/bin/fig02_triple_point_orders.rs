//! Regenerates the paper artifact `fig02_triple_point_orders`.
fn main() {
    print!("{}", blast_bench::experiments::fig02_triple_point_orders::report());
}
