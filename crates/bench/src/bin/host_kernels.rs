//! Measures the host GEMM micro-kernels (naive vs tiled vs tiled+packed)
//! on the Table-3 shapes, writes `BENCH_host_kernels.json`, and exits
//! non-zero if the tiled core loses to naive on any order >= 2 shape —
//! the CI bench-smoke gate.
//!
//! `--smoke` (or `BLAST_BENCH_SMOKE=1`) shrinks the measurement budget
//! for CI; the shape list and the gate stay complete.

use std::process::ExitCode;

use blast_bench::experiments::host_kernels;

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("BLAST_BENCH_SMOKE").is_ok_and(|v| v != "0");
    let r = host_kernels::measure_with_budget(smoke);
    print!("{}", host_kernels::render(&r));

    let path = "BENCH_host_kernels.json";
    if let Err(e) = std::fs::write(path, r.to_json()) {
        eprintln!("host_kernels: failed to write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");

    let failures = r.gate_failures();
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for s in failures {
            eprintln!(
                "GATE FAIL {}: tiled best {:.2} GFLOP/s < naive {:.2} GFLOP/s ({:.2}x)",
                s.label,
                s.tiled_gflops.max(s.packed_gflops),
                s.naive_gflops,
                s.speedup()
            );
        }
        ExitCode::FAILURE
    }
}
