//! Regenerates the paper artifact `fig03_zone_dofs`.
fn main() {
    print!("{}", blast_bench::experiments::fig03_zone_dofs::report());
}
