//! Regenerates the paper artifact `fig06_kernel_breakdown`.
fn main() {
    print!("{}", blast_bench::experiments::fig06_kernel_breakdown::report());
}
