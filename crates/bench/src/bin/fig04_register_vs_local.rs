//! Regenerates the paper artifact `fig04_register_vs_local`.
fn main() {
    print!("{}", blast_bench::experiments::fig04_register_vs_local::report());
}
