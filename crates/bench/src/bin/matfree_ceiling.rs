//! Measures the matrix-free sum-factorization path against the stored
//! batched path (host proxy wall-clock + the gpu-sim Q4 ceiling run),
//! writes `BENCH_matfree.json`, and exits non-zero if matrix-free loses
//! on any order >= 3 shape, the stored Q4 ceiling build fails to return
//! the typed OOM, the matrix-free build fails to run, or the modeled
//! flop/byte shift collapses — the CI matfree-smoke gate.
//!
//! `--smoke` (or `BLAST_BENCH_SMOKE=1`) drops the ceiling mesh from 32³
//! to 24³ for CI; the shape list and the gates stay complete.

use std::process::ExitCode;

use blast_bench::experiments::matfree_ceiling;

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("BLAST_BENCH_SMOKE").is_ok_and(|v| v != "0");
    let r = matfree_ceiling::measure_with_budget(smoke);
    print!("{}", matfree_ceiling::render(&r));

    let path = "BENCH_matfree.json";
    if let Err(e) = std::fs::write(path, r.to_json()) {
        eprintln!("matfree_ceiling: failed to write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");

    let failures = r.gate_failures();
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in failures {
            eprintln!("GATE FAIL {f}");
        }
        ExitCode::FAILURE
    }
}
