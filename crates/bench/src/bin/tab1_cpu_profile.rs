//! Regenerates the paper artifact `tab1_cpu_profile`.
fn main() {
    print!("{}", blast_bench::experiments::tab1_cpu_profile::report());
}
