//! CI `trace-smoke` gate: run an instrumented Q2 triple-point on the
//! CPU-GPU path, export the unified telemetry as Chrome trace-event JSON,
//! and hold the observability contract — non-empty trace, structurally
//! valid JSON with parent/child containment, non-negative monotonic span
//! ends per lane, and every span inside its lane's power-trace extent.
//!
//! Writes `TRACE_smoke.json` (uploaded as a CI artifact, loadable in
//! Perfetto) and exits non-zero if any check fails.
//!
//! ```text
//! cargo run -p blast-bench --release --bin trace_smoke [out.json]
//! ```

use blast_bench::experiments::scenarios::triple_point;
use blast_core::{ExecMode, RunConfig};
use blast_telemetry::{chrome, Track};

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "TRACE_smoke.json".into());
    let mut failures = 0usize;
    let mut check = |ok: bool, what: &str| {
        println!("  [{}] {what}", if ok { "ok" } else { "FAIL" });
        if !ok {
            failures += 1;
        }
    };

    println!("trace-smoke: instrumented Q2 triple point (GPU path)");
    let (mut h, mut s) =
        triple_point(2, 2, ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 });
    let stats = h.run(&mut s, RunConfig::to(0.5).max_steps(12)).expect("instrumented run");
    println!("  ran {} steps (+{} retries) to t = {:.4}", stats.steps, stats.retries, s.t);

    let exec = h.executor();
    let tel = exec.telemetry().clone();
    let host_power = exec.host.power_trace();
    let gpu_power = exec.gpu.as_ref().expect("gpu").power_trace();
    let json = chrome::chrome_trace_with_power(
        &tel,
        &[(Track::Host, &host_power), (Track::Gpu, &gpu_power)],
    );

    // Structural round trip (valid JSON, ph/ts/dur contract, parent/child
    // containment per lane).
    match chrome::validate_chrome_trace(&json) {
        Ok(summary) => {
            check(summary.spans > 0, "trace carries spans");
            check(summary.counter_samples > 0, "power lanes sampled");
            println!(
                "  {} spans, {} instants, {} power samples, ends {:.4} s",
                summary.spans, summary.instants, summary.counter_samples, summary.max_end_s
            );
        }
        Err(e) => check(false, &format!("structural validation: {e}")),
    }

    // Span-level contract on the recorder's own records.
    let spans = tel.spans();
    check(!spans.is_empty(), "recorder is non-empty");
    let eps = 1e-9;
    check(spans.iter().all(|sp| sp.start_s >= -eps && sp.dur_s >= 0.0), "timestamps non-negative");
    // Completed spans are recorded in end order: per lane, span ends are
    // monotonically non-decreasing.
    let monotonic = Track::all().iter().all(|t| {
        spans
            .iter()
            .filter(|sp| sp.track == *t)
            .map(|sp| sp.start_s + sp.dur_s)
            .try_fold(0.0_f64, |prev, end| (end + eps >= prev).then_some(end.max(prev)))
            .is_some()
    });
    check(monotonic, "span ends monotonic per lane");
    let host_end = host_power.end_time();
    let gpu_end = gpu_power.end_time();
    let contained = spans.iter().all(|sp| {
        let end = sp.start_s + sp.dur_s;
        match sp.track {
            Track::Gpu => end <= gpu_end + eps,
            _ => end <= host_end + eps,
        }
    });
    check(contained, "spans inside power-trace extent");
    check(tel.dropped_spans() == 0, "no spans dropped");

    std::fs::write(&out_path, &json).expect("write trace artifact");
    println!("  wrote {out_path} ({} bytes)", json.len());

    if failures > 0 {
        eprintln!("trace-smoke: {failures} check(s) failed");
        std::process::exit(1);
    }
    println!("trace-smoke: all checks passed");
}
