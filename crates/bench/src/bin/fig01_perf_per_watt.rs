//! Regenerates the paper artifact `fig01_perf_per_watt`.
fn main() {
    print!("{}", blast_bench::experiments::fig01_perf_per_watt::report());
}
