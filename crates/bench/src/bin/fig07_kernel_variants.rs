//! Regenerates the paper artifact `fig07_kernel_variants`.
fn main() {
    print!("{}", blast_bench::experiments::fig07_kernel_variants::report());
}
