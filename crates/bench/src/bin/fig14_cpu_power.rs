//! Regenerates the paper artifact `fig14_cpu_power`.
fn main() {
    print!("{}", blast_bench::experiments::fig14_cpu_power::report());
}
