//! Regenerates the paper artifact `fig16_cpu_power_offload`.
fn main() {
    print!("{}", blast_bench::experiments::fig16_cpu_power_offload::report());
}
