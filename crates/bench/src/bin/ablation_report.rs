//! Runs the DESIGN.md ablation studies (tuned-vs-default parameters,
//! execution modes, Hyper-Q sweep).
fn main() {
    print!("{}", blast_bench::experiments::ablations::report());
}
