//! Regenerates the paper artifact `tab4_batched_dgemv`.
fn main() {
    print!("{}", blast_bench::experiments::tab4_batched_dgemv::report());
}
