//! SDC campaign driver: injects a planned bit flip at every modeled site
//! and gates on "detected-and-recovered bit-identically or typed failure —
//! never silently wrong". Exits non-zero on any gate violation.
fn main() {
    let (text, violations) = blast_bench::experiments::sdc_campaign::report_with_status();
    print!("{text}");
    if !violations.is_empty() {
        std::process::exit(1);
    }
}
