//! Regenerates the paper artifact `fig05_tune_k3`.
fn main() {
    print!("{}", blast_bench::experiments::fig05_tune_k3::report());
}
