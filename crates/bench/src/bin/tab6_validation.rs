//! Regenerates the paper artifact `tab6_validation`.
fn main() {
    print!("{}", blast_bench::experiments::tab6_validation::report());
}
