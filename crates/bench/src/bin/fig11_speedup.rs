//! Regenerates the paper artifact `fig11_speedup`.
fn main() {
    print!("{}", blast_bench::experiments::fig11_speedup::report());
}
