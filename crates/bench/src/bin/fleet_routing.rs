//! Fleet-routing gate driver: places a mixed three-tenant workload on a
//! heterogeneous fleet with the greenup-driven router, runs every static
//! single-device placement of the same workload for comparison, writes
//! `BENCH_fleet.json`, and exits non-zero if the routed placement is not
//! strictly cheaper (billed tenant energy) than all-CPU and every static
//! pin while meeting every job's SLO — the CI fleet-smoke gate. The
//! routed ledger digest is also diffed across host-pool sizes 1 and 8.
//!
//! `--smoke` (or `BLAST_BENCH_SMOKE=1`) trims the per-tenant job counts;
//! the fleet, the job classes, and the gates stay complete.

use std::process::ExitCode;

use blast_bench::experiments::fleet_routing;

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("BLAST_BENCH_SMOKE").is_ok_and(|v| v != "0");
    let (r, failures) = fleet_routing::report_with_status(smoke);
    print!("{}", r.render());

    let path = "BENCH_fleet.json";
    if let Err(e) = std::fs::write(path, r.to_json()) {
        eprintln!("fleet_routing: failed to write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in failures {
            eprintln!("GATE FAIL {f}");
        }
        ExitCode::FAILURE
    }
}
