//! Regenerates the paper artifact `tab7_greenup`.
fn main() {
    print!("{}", blast_bench::experiments::tab7_greenup::report());
}
