//! Regenerates the paper artifact `fig12_weak_scaling`.
fn main() {
    print!("{}", blast_bench::experiments::fig12_weak_scaling::report());
}
