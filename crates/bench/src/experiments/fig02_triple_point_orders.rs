//! Fig. 2 — the shock triple-point benchmark at increasing method order.
//!
//! The paper's figure shows the rolled-up vortex resolved by Q8-Q7, Q4-Q3
//! and Q2-Q1 elements: for a *fixed DOF budget*, higher order reveals more
//! refined physical features. We quantify that with the kinetic energy in
//! the shear layer and the peak vorticity proxy after the same physical
//! time.

use blast_core::ExecMode;

use crate::experiments::scenarios::{run_steps, triple_point_with_cfl};
use crate::table;

/// Runs the triple point at three orders with ~matched kinematic DOFs;
/// returns `(method, vector DOFs, steps, kinetic energy, max |v|)`.
pub fn measure() -> Vec<(String, usize, usize, f64, f64)> {
    // (order, base zones): kinematic lattice ~ (7 b k + 1)(3 b k + 1);
    // choosing b = 8/k keeps the DOF budget roughly constant.
    let cases = [(2usize, 4usize), (4, 2), (8, 1)];
    let mut out = Vec::new();
    for (order, base) in cases {
        // Conservative CFL: the coarse Lagrangian mesh tangles under the
        // triple point's shear if pushed at the default step size.
        let (mut h, mut s) =
            triple_point_with_cfl(order, base, ExecMode::CpuParallel { threads: 8 }, 0.15);
        let steps = 8;
        run_steps(&mut h, &mut s, steps);
        let en = h.energies(&s);
        let n = h.kin_space().num_dofs();
        let vmax = (0..n)
            .map(|i| (s.v[i].powi(2) + s.v[n + i].powi(2)).sqrt())
            .fold(0.0, f64::max);
        out.push((
            format!("Q{}-Q{}", order, order - 1),
            2 * n,
            steps,
            en.kinetic,
            vmax,
        ));
    }
    out
}

/// Regenerates the Fig. 2 comparison.
pub fn report() -> String {
    let rows: Vec<Vec<String>> = measure()
        .into_iter()
        .map(|(m, dofs, steps, ke, vmax)| {
            vec![m, dofs.to_string(), steps.to_string(), table::f(ke), table::f(vmax)]
        })
        .collect();
    let mut out = table::render(
        "Fig. 2 — triple point at matched DOF budgets",
        &["method", "vector DOFs", "steps", "kinetic energy", "max |v|"],
        &rows,
    );
    out.push_str(
        "\nPaper: higher-order elements (p-refinement) resolve sharper interface \
         roll-up at the same DOF count (Fig. 2's three panels).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "hydro-scale experiment: run with --release")]
    fn all_orders_run_and_develop_motion() {
        let rows = super::measure();
        assert_eq!(rows.len(), 3);
        for (m, dofs, _, ke, vmax) in &rows {
            assert!(*ke > 0.0, "{m}: no kinetic energy");
            assert!(*vmax > 0.0, "{m}: static flow");
            assert!(*dofs > 100, "{m}: {dofs} DOFs");
        }
        // DOF budgets within ~2x of each other.
        let min = rows.iter().map(|r| r.1).min().unwrap() as f64;
        let max = rows.iter().map(|r| r.1).max().unwrap() as f64;
        assert!(max / min < 2.5, "budgets {min} vs {max}");
    }
}
