//! Ablation studies for the design choices DESIGN.md calls out (beyond the
//! paper's own figures):
//!
//! 1. autotuned vs default kernel parameters across method orders,
//! 2. CPU-only vs GPU-only vs hybrid execution,
//! 3. Hyper-Q queue count (1/2/4/8) on time and power,
//! 4. the SM-utilization power floor (`GpuSpec::sm_util_w`) on the Fig. 15
//!    Q4-vs-Q2 corner-force comparison.

use std::sync::Arc;

use blast_core::{ExecMode, Executor, Hydro, Sedov};
use blast_kernels::k3::CoefGradKernel;
use blast_kernels::k56::BatchedDimGemm;
use blast_kernels::k7::FzKernel;
use blast_kernels::{GemmVariant, ProblemShape};
use gpu_sim::{CpuSpec, GpuDevice, GpuSpec};

use crate::experiments::scenarios::run_steps;
use crate::table;
use gpu_sim::DeviceCatalog;

/// Ablation 1: per-order autotuned parameters vs one-size-fits-all
/// constants. For each order the tuner sweeps the feasible candidate grid;
/// the "fixed" column uses the constant that is optimal at Q2 (what a
/// developer would hard-code without the §3.2.1 autotuner). Returns
/// `(order, kernel, t_fixed, t_tuned, best_param)`.
pub fn tuned_vs_default() -> Vec<(usize, &'static str, f64, f64, u32)> {
    let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
    let sweep = |times: Vec<(u32, f64)>| -> (u32, f64) {
        times
            .into_iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty sweep")
    };
    let mut rows = Vec::new();
    for order in [2usize, 3, 4] {
        let zones = match order {
            2 => 4096,
            3 => 1000,
            _ => 512,
        };
        let shape = ProblemShape::new(3, order, zones);

        let k3_time = |na: u32| {
            let k = CoefGradKernel { variant: GemmVariant::V3, zones_per_block: na };
            let cfg = k.config(&shape);
            (gpu_sim::occupancy(dev.spec(), &cfg).fraction > 0.0)
                .then(|| dev.model_kernel(&cfg, &k.traffic(&shape)).time_s)
        };
        let fixed = k3_time(CoefGradKernel::tuned().zones_per_block).expect("feasible");
        let (best, t) = sweep(
            [1u32, 2, 4, 8, 16, 32, 64]
                .into_iter()
                .filter_map(|na| k3_time(na).map(|t| (na, t)))
                .collect(),
        );
        rows.push((order, "kernel 3", fixed, t, best));

        let count = shape.total_points();
        let k56_time = |n: u32| {
            let k = BatchedDimGemm { transpose: blast_kernels::k56::Transpose::NN, mats_per_block: n };
            let cfg = k.config(3, count);
            (gpu_sim::occupancy(dev.spec(), &cfg).fraction > 0.0)
                .then(|| dev.model_kernel(&cfg, &k.traffic(3, count)).time_s)
        };
        let fixed = k56_time(BatchedDimGemm::nn_tuned().mats_per_block).expect("feasible");
        let (best, t) = sweep(
            [1u32, 2, 4, 8, 16, 32, 64]
                .into_iter()
                .filter_map(|n| k56_time(n).map(|t| (n, t)))
                .collect(),
        );
        rows.push((order, "kernel 5/6", fixed, t, best));

        let k7_time = |cb: u32| {
            let k = FzKernel { variant: GemmVariant::V3, col_block: cb };
            let cfg = k.config(&shape);
            (gpu_sim::occupancy(dev.spec(), &cfg).fraction > 0.0)
                .then(|| dev.model_kernel(&cfg, &k.traffic(&shape)).time_s)
        };
        let fixed = k7_time(FzKernel::tuned().col_block).expect("feasible");
        let (best, t) = sweep(
            [1u32, 2, 4, 8, 16, 32, 64]
                .into_iter()
                .filter_map(|cb| k7_time(cb).map(|t| (cb, t)))
                .collect(),
        );
        rows.push((order, "kernel 7", fixed, t, best));
    }
    rows
}

/// Ablation 2: CPU vs GPU vs hybrid wall time on the same problem.
pub fn execution_modes() -> Vec<(&'static str, f64)> {
    let problem = Sedov::default();
    let run = |mode: ExecMode| -> f64 {
        let gpu = matches!(mode, ExecMode::Gpu { .. } | ExecMode::Hybrid { .. })
            .then(|| Arc::new(GpuDevice::new(DeviceCatalog::gpu("k20"))));
        let exec = Executor::new(mode, CpuSpec::e5_2670(), gpu);
        let mut h = Hydro::<2>::builder(&problem, [16, 16]).executor(exec).build()
            .expect("fits");
        let mut s = h.initial_state();
        run_steps(&mut h, &mut s, 4)
    };
    vec![
        ("CPU serial", run(ExecMode::CpuSerial)),
        ("CPU 8 threads", run(ExecMode::CpuParallel { threads: 8 })),
        ("GPU (corner force)", run(ExecMode::Gpu { base: false, gpu_pcg: false, mpi_queues: 8 })),
        ("GPU (+ CUDA-PCG)", run(ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 8 })),
        ("Hybrid (auto-balance)", run(ExecMode::Hybrid { threads: 8 })),
    ]
}

/// Ablation 3: Hyper-Q queue count effect: `(queues, wall_s, gpu_power_w)`.
pub fn hyperq_sweep() -> Vec<(u32, f64, f64)> {
    let problem = Sedov::default();
    [1u32, 2, 4, 8]
        .into_iter()
        .map(|q| {
            let gpu = Arc::new(GpuDevice::new(DeviceCatalog::gpu("k20")));
            let exec = Executor::new(
                ExecMode::Gpu { base: false, gpu_pcg: false, mpi_queues: q },
                CpuSpec::e5_2670(),
                Some(gpu.clone()),
            );
            let mut h = Hydro::<3>::builder(&problem, [6; 3]).executor(exec).build()
                .expect("fits");
            let mut s = h.initial_state();
            let wall = run_steps(&mut h, &mut s, 2);
            let p = gpu.power_trace().mean_active_power();
            (q, wall, p)
        })
        .collect()
}

/// Ablation 4: the SM-utilization power floor on the two Fig. 15
/// corner-force scenarios that diverge from the paper. Returns
/// `(label, q2_8mpi_w, q4_8mpi_w, gap_w)` for the term off (0 W) and on
/// (the K20 preset).
pub fn sm_util_ablation() -> Vec<(&'static str, f64, f64, f64)> {
    let cf = || ExecMode::Gpu { base: false, gpu_pcg: false, mpi_queues: 8 };
    let power = |spec: GpuSpec| {
        let q2 =
            crate::experiments::fig15_gpu_power::scenario_power_on(2, 8, cf(), true, spec.clone());
        let q4 = crate::experiments::fig15_gpu_power::scenario_power_on(4, 6, cf(), true, spec);
        (q2, q4)
    };
    let (q2_off, q4_off) = power(GpuSpec { sm_util_w: 0.0, ..DeviceCatalog::gpu("k20") });
    let (q2_on, q4_on) = power(DeviceCatalog::gpu("k20"));
    vec![
        ("sm_util_w = 0 (ablated)", q2_off, q4_off, q2_off - q4_off),
        ("sm_util_w = K20 preset", q2_on, q4_on, q2_on - q4_on),
    ]
}

/// Full ablation report.
pub fn report() -> String {
    let mut out = String::new();

    let rows: Vec<Vec<String>> = tuned_vs_default()
        .into_iter()
        .map(|(order, k, fixed, tuned, best)| {
            vec![
                format!("Q{}-Q{}", order, order - 1),
                k.to_string(),
                format!("{:.3} ms", fixed * 1e3),
                format!("{:.3} ms", tuned * 1e3),
                best.to_string(),
                format!("{:.2}x", fixed / tuned),
            ]
        })
        .collect();
    out.push_str(&table::render(
        "Ablation 1 — per-order autotuning vs Q2-tuned fixed parameters",
        &["method", "kernel", "fixed param", "autotuned", "best value", "gain"],
        &rows,
    ));
    out.push('\n');

    let rows: Vec<Vec<String>> = execution_modes()
        .into_iter()
        .map(|(m, t)| vec![m.to_string(), format!("{:.4} s", t)])
        .collect();
    out.push_str(&table::render(
        "Ablation 2 — execution modes (2D Sedov, 16x16 Q2-Q1, 4 steps)",
        &["mode", "wall"],
        &rows,
    ));
    out.push('\n');

    let rows: Vec<Vec<String>> = hyperq_sweep()
        .into_iter()
        .map(|(q, t, p)| vec![q.to_string(), format!("{t:.4} s"), format!("{p:.1} W")])
        .collect();
    out.push_str(&table::render(
        "Ablation 3 — Hyper-Q queue count (3D Sedov, 6^3 Q2-Q1, 2 steps)",
        &["queues", "wall", "GPU power"],
        &rows,
    ));
    out.push('\n');

    let rows: Vec<Vec<String>> = sm_util_ablation()
        .into_iter()
        .map(|(label, q2, q4, gap)| {
            vec![
                label.to_string(),
                format!("{q2:.1} W"),
                format!("{q4:.1} W"),
                format!("{gap:.1} W"),
            ]
        })
        .collect();
    out.push_str(&table::render(
        "Ablation 4 — SM-utilization floor on the Fig. 15 Q4-vs-Q2 divergence (8 MPI)",
        &["energy model", "CF Q2-Q1", "CF Q4-Q3", "Q2 - Q4 gap"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn per_order_tuning_never_loses_and_sometimes_wins() {
        let rows = super::tuned_vs_default();
        for (order, kernel, fixed, tuned, _) in &rows {
            assert!(
                *tuned <= fixed * 1.001,
                "Q{order} {kernel}: autotuned {tuned} worse than fixed {fixed}"
            );
        }
        // The Q2-tuned constants are suboptimal at some other order — the
        // reason the paper re-tunes per order.
        let best_gain = rows.iter().map(|(_, _, f, t, _)| f / t).fold(0.0, f64::max);
        assert!(best_gain > 1.1, "per-order tuning gain only {best_gain}");
        // And the winning parameter differs across orders for some kernel.
        let k3_params: Vec<u32> = rows
            .iter()
            .filter(|(_, k, _, _, _)| *k == "kernel 3")
            .map(|&(_, _, _, _, p)| p)
            .collect();
        let k7_params: Vec<u32> = rows
            .iter()
            .filter(|(_, k, _, _, _)| *k == "kernel 7")
            .map(|&(_, _, _, _, p)| p)
            .collect();
        assert!(
            k3_params.windows(2).any(|w| w[0] != w[1])
                || k7_params.windows(2).any(|w| w[0] != w[1]),
            "optima identical across orders: k3 {k3_params:?}, k7 {k7_params:?}"
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "hydro-scale experiment: run with --release")]
    fn accelerated_modes_beat_cpu() {
        let modes = super::execution_modes();
        let get = |name: &str| modes.iter().find(|(n, _)| n.contains(name)).unwrap().1;
        assert!(get("CPU 8 threads") < get("CPU serial"));
        assert!(get("GPU (corner force)") < get("CPU 8 threads"));
        assert!(get("Hybrid") < get("CPU 8 threads"));
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "hydro-scale experiment: run with --release")]
    fn sm_util_floor_narrows_the_q4_gap() {
        let rows = super::sm_util_ablation();
        let (_, _, _, gap_off) = rows[0];
        let (_, q2_on, q4_on, gap_on) = rows[1];
        // The floor must narrow (not widen) the Q4-vs-Q2 divergence, and
        // the residual with the preset value stays under 40 W.
        assert!(gap_on < gap_off, "sm_util_w widened the gap: {gap_on} !< {gap_off}");
        assert!(gap_on < 40.0, "residual gap {gap_on:.1} W regressed past 40 W");
        for w in [q2_on, q4_on] {
            assert!((50.0..=225.0).contains(&w), "power {w} W outside the K20 envelope");
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "hydro-scale experiment: run with --release")]
    fn hyperq_fills_and_heats_the_device() {
        let sweep = super::hyperq_sweep();
        let (q1, t1, p1) = sweep[0];
        let (q8, t8, p8) = sweep[3];
        assert_eq!((q1, q8), (1, 8));
        assert!(t8 <= t1 * 1.001, "sharing should not slow the work: {t8} vs {t1}");
        assert!(p8 > p1, "queue power overhead missing: {p8} vs {p1}");
    }
}
