//! Host speedup — *measured* wall-clock scaling of the in-tree thread
//! pool on a batched-kernel workload (the paper's 8-core OpenMP leg,
//! run for real instead of only modeled), plus the determinism check
//! that makes the parallelism admissible: every thread count must
//! produce bitwise-identical output.
//!
//! The measured curve is also what calibrates
//! `CpuSpec::parallel_efficiency`, closing the loop between the
//! simulated roofline and the one piece of hardware we actually have.

use std::time::Instant;

use autotune::host_tiles;
use blast_la::{batched_gemm_nn, batched_gemv_n, BatchedMats};
use blast_telemetry::names::counters;
use blast_telemetry::{Telemetry, TelemetrySink};
use gpu_sim::CpuSpec;

use crate::table;

/// Thread counts the sweep visits (the paper's Table 1 axis).
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One row of the sweep.
#[derive(Clone, Debug)]
pub struct SpeedupSample {
    /// Pool threads configured for the run.
    pub threads: usize,
    /// Measured wall-clock, seconds.
    pub time_s: f64,
    /// Speedup vs. the 1-thread run.
    pub speedup: f64,
    /// Whether the run's output is bitwise identical to 1 thread's.
    pub bitwise_equal: bool,
}

/// Full sweep result.
#[derive(Clone, Debug)]
pub struct HostSpeedup {
    /// One sample per entry of [`THREAD_COUNTS`].
    pub samples: Vec<SpeedupSample>,
    /// Cores the host actually exposes (`available_parallelism`) — on a
    /// single-core box the speedup column cannot exceed 1 no matter how
    /// correct the pool is, so readers need this to interpret it.
    pub cores_detected: usize,
    /// `CpuSpec::parallel_efficiency` before calibration (E5-2670 preset).
    pub pe_before: f64,
    /// After calibration against the measured curve.
    pub pe_after: f64,
    /// Winning host-tile candidate index installed before the sweep (the
    /// sweep must time the *tuned* tiled path, not the default tile).
    pub tile_index: usize,
    /// Single-thread GFLOP/s of the tuned tiled kernel, as fed to
    /// `CpuSpec::calibrate_host_gflops`.
    pub tiled_gflops: f64,
    /// Corner-force flop efficiency implied by the measurement
    /// (`CpuSpec::host_flop_efficiency` after calibration).
    pub host_flop_efficiency: f64,
    /// True when the sweep produced *no* usable multi-core sample and the
    /// preset `parallel_efficiency` was kept uncalibrated. Loudly flagged
    /// (warning line + `host_calibration_kept` counter) because a silent
    /// keep used to masquerade as a calibrated value.
    pub preset_kept: bool,
}

/// The batched-kernel workload: kernels 5/6-shaped batched DGEMM plus a
/// kernel 8-shaped batched DGEMV, sized so one sweep iteration is a few
/// tens of milliseconds of real work. Returns the output buffer whose
/// bits must match across thread counts.
fn workload(reps: usize) -> Vec<f64> {
    let (m, n, k) = (24, 24, 24);
    let count = 512;
    let a = BatchedMats::from_fn(m, k, count, |z, i, j| {
        ((z * 31 + i * 7 + j) % 97) as f64 * 1e-2 - 0.5
    });
    let b = BatchedMats::from_fn(k, n, count, |z, i, j| {
        ((z * 17 + i + j * 5) % 89) as f64 * 1e-2 - 0.4
    });
    let mut c = BatchedMats::zeros(m, n, count);
    let x: Vec<f64> = (0..n * count).map(|i| ((i % 61) as f64) * 1e-2 - 0.3).collect();
    let mut y = vec![0.0f64; m * count];
    for _ in 0..reps {
        batched_gemm_nn(1.0, &a, &b, 1e-3, &mut c);
        batched_gemv_n(1.0, &c, &x, 1e-3, &mut y);
    }
    let mut out = c.as_slice().to_vec();
    out.extend_from_slice(&y);
    out
}

/// Runs the sweep and the calibration, reporting the preset-kept
/// fallback on `telemetry` (see [`HostSpeedup::preset_kept`]).
pub fn measure_with_telemetry(telemetry: &TelemetrySink) -> HostSpeedup {
    let reps = 40;
    // The sweep must measure the production hot path: tune the host tile
    // for the workload's 3D Q2-like shape first, so the batched kernels
    // below run the autotuned tiled core rather than the default tile.
    // (Before the tiled rewrite this calibration timed the naive kernels,
    // which over-reported memory-bound flattening and under-reported
    // `parallel_efficiency`.)
    let choice = host_tiles::tune_host_tiles(3, 2);
    // Warm up allocator and instruction caches off the clock.
    let _ = workload(2);
    let mut reference: Option<Vec<f64>> = None;
    let mut samples = Vec::new();
    for &t in &THREAD_COUNTS {
        rayon::set_active_threads(t);
        let start = Instant::now();
        let out = workload(reps);
        let time_s = start.elapsed().as_secs_f64();
        let bitwise_equal = match &reference {
            None => {
                reference = Some(out);
                true
            }
            Some(r) => {
                r.len() == out.len()
                    && r.iter().zip(&out).all(|(a, b)| a.to_bits() == b.to_bits())
            }
        };
        samples.push(SpeedupSample { threads: t, time_s, speedup: 0.0, bitwise_equal });
    }
    rayon::set_active_threads(0);
    let t1 = samples[0].time_s;
    for s in &mut samples {
        s.speedup = t1 / s.time_s;
    }

    let mut spec = CpuSpec::e5_2670();
    let pe_before = spec.parallel_efficiency;
    let curve: Vec<(u32, f64)> =
        samples.iter().filter(|s| s.threads > 1).map(|s| (s.threads as u32, s.speedup)).collect();
    // Calibrating against a curve flattened by a core-starved host would
    // poison the simulation (pe near the clamp floor); only feed the
    // model speedups the hardware could physically express.
    let cores_detected = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let usable: Vec<(u32, f64)> =
        curve.into_iter().filter(|&(t, _)| (t as usize) <= cores_detected).collect();
    let preset_kept = usable.is_empty();
    if preset_kept {
        // The silent path that bit us: calibration "succeeds" but feeds
        // the preset back. Make it observable in both channels.
        telemetry.counter_add(counters::HOST_CALIBRATION_KEPT, 1);
        eprintln!(
            "host_speedup: WARNING: no usable multi-core sample ({cores_detected} core(s) \
             detected); parallel_efficiency preset {pe_before:.3} kept uncalibrated"
        );
    }
    let pe_after = spec.calibrate_parallel_efficiency(&usable);
    let host_flop_efficiency =
        spec.calibrate_host_gflops(choice.tiled_gflops).unwrap_or(0.0);

    HostSpeedup {
        samples,
        cores_detected,
        pe_before,
        pe_after,
        tile_index: choice.index,
        tiled_gflops: choice.tiled_gflops,
        host_flop_efficiency,
        preset_kept,
    }
}

/// Runs the sweep and the calibration on a throwaway telemetry sink.
pub fn measure() -> HostSpeedup {
    measure_with_telemetry(&Telemetry::sink())
}

/// Regenerates the artifact.
pub fn report() -> String {
    let r = measure();
    let rows: Vec<Vec<String>> = r
        .samples
        .iter()
        .map(|s| {
            vec![
                s.threads.to_string(),
                format!("{:.1}", s.time_s * 1e3),
                format!("{:.2}x", s.speedup),
                if s.bitwise_equal { "yes".into() } else { "NO".into() },
            ]
        })
        .collect();
    let mut out = table::render(
        "host_speedup — measured pool scaling on batched DGEMM+DGEMV (real wall-clock)",
        &["threads", "time (ms)", "speedup", "bitwise == 1-thread"],
        &rows,
    );
    out.push_str(&format!(
        "\nHost exposes {} core(s); speedup is bounded by that regardless of pool size.\n\
         parallel_efficiency: {:.3} preset -> {:.3} calibrated from the measured curve{}.\n\
         tiled hot path: tile candidate #{} installed, {:.2} GFLOP/s single-thread\n\
         -> corner-force flop efficiency {:.3} fed to the roofline.\n",
        r.cores_detected,
        r.pe_before,
        r.pe_after,
        if r.preset_kept { " (WARNING: no usable multi-core sample; preset kept)" } else { "" },
        r.tile_index,
        r.tiled_gflops,
        r.host_flop_efficiency,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The determinism half of the acceptance criterion runs everywhere;
    /// the >= 2.5x speedup half is physically impossible on a 1-core
    /// container, so it is gated on the hardware actually having cores.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "wall-clock measurement; run with --release")]
    fn sweep_is_bitwise_deterministic_and_scales_when_cores_exist() {
        let sink = Telemetry::sink();
        let r = measure_with_telemetry(&sink);
        // The preset-kept fallback must be loud: flag, counter, and the
        // rendered note all agree (and a multi-core host never trips it).
        assert_eq!(sink.counter(counters::HOST_CALIBRATION_KEPT), r.preset_kept as u64);
        if r.cores_detected >= 2 {
            assert!(!r.preset_kept, "multi-core host kept the preset");
        }
        assert_eq!(r.samples.len(), THREAD_COUNTS.len());
        for s in &r.samples {
            assert!(s.bitwise_equal, "threads={} diverged from 1-thread bits", s.threads);
            assert!(s.time_s > 0.0);
        }
        assert!(r.pe_after > 0.0 && r.pe_after <= 1.0);
        assert!(r.tile_index < blast_la::tile::CANDIDATES.len());
        assert!(r.tiled_gflops > 0.0);
        assert!(r.host_flop_efficiency > 0.0 && r.host_flop_efficiency <= 1.0);
        if r.cores_detected >= 8 {
            let s8 = r.samples.iter().find(|s| s.threads == 8).unwrap();
            assert!(s8.speedup >= 2.5, "8-thread speedup {} < 2.5x on an 8-core host", s8.speedup);
        }
    }
}
