//! Unified-telemetry profile — the observability layer's own artifact: one
//! instrumented triple-point run, reported straight from the telemetry
//! sink (per-phase tables on the host and GPU lanes plus the counters),
//! with no hand-rolled aggregation in between.

use blast_core::{ExecMode, RunConfig};
use blast_telemetry::{table, Track};

use crate::experiments::scenarios::triple_point;

/// Runs a short instrumented 2D triple point in GPU mode and renders the
/// telemetry sink's view of it.
pub fn report() -> String {
    let (mut h, mut s) =
        triple_point(2, 2, ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 });
    h.run(&mut s, RunConfig::to(0.02).max_steps(12)).expect("short instrumented run");
    let tel = h.executor().telemetry().clone();

    let mut out = table::render_totals(
        "Telemetry — host phases (spans on the simulated-time axis)",
        &tel.phase_totals(Some(Track::Host)),
    );
    out.push('\n');
    out.push_str(&table::render_totals(
        "Telemetry — GPU kernels and transfers",
        &tel.phase_totals(Some(Track::Gpu)),
    ));
    out.push('\n');
    let mut counters = tel.counters();
    counters.sort_by(|a, b| a.0.cmp(b.0));
    for (name, value) in counters {
        out.push_str(&format!("  {name:<24} {value}\n"));
    }
    out.push_str(
        "\nThe same sink feeds the Chrome trace exporter: see examples/trace_run.rs \
         for a Perfetto-loadable JSON of this run.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use blast_telemetry::names;

    #[test]
    fn report_contains_phases_and_counters() {
        let rep = super::report();
        // GPU mode: the corner force lives on the GPU lane as kernels; the
        // host lane still carries the step envelope and integration.
        assert!(rep.contains(names::phases::STEP));
        assert!(rep.contains(names::phases::INTEGRATION));
        assert!(rep.contains(names::counters::STEPS));
        assert!(rep.contains(names::counters::GPU_LAUNCHES));
    }
}
