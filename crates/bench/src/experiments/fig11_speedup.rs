//! Fig. 11 — single-node speedup of CPU-GPU over CPU-only: 1.9x with Q2-Q1
//! elements, 2.5x with Q4-Q3 (8 MPI tasks sharing one K20 via Hyper-Q;
//! only the corner force is accelerated).

use blast_core::ExecMode;

use crate::experiments::scenarios::{run_steps, sedov3d};
use crate::table;

/// Measures `(cpu_wall, gpu_wall, speedup)` per order.
///
/// Functional domains are scaled so the point counts match (16^3 at Q2,
/// 8^3 at Q4 — identical total quadrature points; the modeled times carry
/// the order-dependent operand shapes).
pub fn measure() -> Vec<(String, f64, f64, f64)> {
    let mut out = Vec::new();
    for (order, zones_axis) in [(2usize, 16usize), (4, 8)] {
        let steps = 2;
        let (mut hc, mut sc) = sedov3d(order, zones_axis, ExecMode::CpuParallel { threads: 8 });
        let t_cpu = run_steps(&mut hc, &mut sc, steps);
        let (mut hg, mut sg) = sedov3d(
            order,
            zones_axis,
            // Paper's single-node setup: 8 MPI ranks share the K20, corner
            // force only (the CG solve stays on the CPU).
            ExecMode::Gpu { base: false, gpu_pcg: false, mpi_queues: 8 },
        );
        let t_gpu = run_steps(&mut hg, &mut sg, steps);
        out.push((
            format!("Q{}-Q{}", order, order - 1),
            t_cpu,
            t_gpu,
            t_cpu / t_gpu,
        ));
    }
    out
}

/// Regenerates Fig. 11.
pub fn report() -> String {
    let data = measure();
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|(m, tc, tg, s)| {
            vec![
                m.clone(),
                format!("{:.4} s", tc),
                format!("{:.4} s", tg),
                format!("{s:.2}x"),
            ]
        })
        .collect();
    let mut out = table::render(
        "Fig. 11 — 3D Sedov speedup, CPU-GPU vs CPU (E5-2670 + K20, 8 MPI)",
        &["method", "CPU-only", "CPU-GPU", "speedup"],
        &rows,
    );
    let q2 = data[0].3;
    let q4 = data[1].3;
    out.push_str(&format!(
        "\nPaper: 1.9x (Q2-Q1) and 2.5x (Q4-Q3); measured {q2:.2}x / {q4:.2}x. \
         Higher order -> larger corner-force share -> more GPU benefit.\n",
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "hydro-scale experiment: run with --release")]
    fn speedups_match_paper_shape() {
        let data = super::measure();
        let q2 = data[0].3;
        let q4 = data[1].3;
        // The model's CF acceleration is somewhat stronger than the
        // paper's measured end-to-end 1.9x/2.5x; the defining shape holds.
        assert!(q2 > 1.4 && q2 < 3.2, "Q2-Q1 speedup {q2}");
        assert!(q4 > 1.8 && q4 < 5.5, "Q4-Q3 speedup {q4}");
        // The defining Fig. 11 relation: higher order benefits more.
        assert!(q4 > q2, "Q4 {q4} should exceed Q2 {q2}");
    }
}
