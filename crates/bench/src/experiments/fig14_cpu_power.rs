//! Fig. 14 — RAPL power of the two E5-2670 packages: one fully loaded with
//! the 3D Q2-Q1 run (8 MPI tasks, no GPU), the other idle.

use powermon::{CpuPowerModel, CpuPowerState};

use crate::table;

/// The Fig. 14 readings: `(busy pkg, busy dram, idle pkg, idle dram)`.
pub fn measure() -> (f64, f64, f64, f64) {
    let m = CpuPowerModel::e5_2670();
    let busy = m.read(CpuPowerState::Busy, 1.0);
    let idle = m.read(CpuPowerState::Idle, 0.0);
    (busy.pkg_watts, busy.dram_watts, idle.pkg_watts, idle.dram_watts)
}

/// Regenerates Fig. 14 (levels + a sampled trace like the plot).
pub fn report() -> String {
    let m = CpuPowerModel::e5_2670();
    let (bp, bd, ip, id) = measure();
    let rows = vec![
        vec!["package 0 (loaded)".into(), table::f(bp), table::f(bd)],
        vec!["package 1 (idle)".into(), table::f(ip), table::f(id)],
    ];
    let mut out = table::render(
        "Fig. 14 — dual E5-2670 RAPL power during a CPU-only 3D Q2-Q1 run (W)",
        &["package", "pkg_watts", "dram_watts"],
        &rows,
    );
    out.push_str(&format!(
        "\nTDP 115 W; loaded package at {:.0}% of TDP (paper: 95 W = 82%, \
         \"confirms the AMD reports of the normal range of Average CPU Power\").\n",
        100.0 * bp / m.tdp_w
    ));
    // A short sampled trace: load ramps on at t = 2 s and off at t = 12 s.
    let trace = m.trace(&[
        (CpuPowerState::Idle, 0.0, 2.0),
        (CpuPowerState::Busy, 1.0, 10.0),
        (CpuPowerState::Idle, 0.0, 3.0),
    ]);
    out.push_str("\nSampled package-0 trace (1 s period):\n  t(s)  W\n");
    for (t, w) in trace.sample_series(1.0, 14.0) {
        out.push_str(&format!("  {t:>4.0}  {w:>6.1}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn levels_match_fig14() {
        let (bp, bd, ip, id) = super::measure();
        assert!((bp - 95.0).abs() < 1e-9, "busy pkg {bp}");
        assert!((bd - 15.0).abs() < 1e-9, "busy dram {bd}");
        assert!(ip < 20.0, "idle pkg {ip}");
        assert!(id < 1.0, "idle dram {id}");
    }
}
