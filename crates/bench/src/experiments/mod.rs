//! One module per paper artifact. Every module exposes
//! `pub fn report() -> String` that regenerates the artifact's rows/series.

pub mod ablations;
pub mod scenarios;

pub mod fig01_perf_per_watt;
pub mod fig02_triple_point_orders;
pub mod fig03_zone_dofs;
pub mod fig04_register_vs_local;
pub mod fig05_tune_k3;
pub mod fig06_kernel_breakdown;
pub mod fig07_kernel_variants;
pub mod fig08_bandwidth;
pub mod fig11_speedup;
pub mod host_kernels;
pub mod host_speedup;
pub mod matfree_ceiling;
pub mod pcg_streaming;
pub mod fig12_weak_scaling;
pub mod fleet_routing;
pub mod fig13_strong_scaling;
pub mod fig14_cpu_power;
pub mod fig15_gpu_power;
pub mod fig16_cpu_power_offload;
pub mod tab1_cpu_profile;
pub mod tab3_matrix_shapes;
pub mod tab4_batched_dgemv;
pub mod tab5_autobalance;
pub mod tab6_validation;
pub mod resilience_overhead;
pub mod sdc_campaign;
pub mod serve_storm;
pub mod tab7_greenup;
pub mod telemetry_profile;

/// Names of all registered experiments (for the `paper_report` binary and
/// registry tests).
pub fn all_experiment_names() -> Vec<&'static str> {
    vec![
        "fig01_perf_per_watt",
        "fig02_triple_point_orders",
        "fig03_zone_dofs",
        "tab1_cpu_profile",
        "fig04_register_vs_local",
        "fig05_tune_k3",
        "fig06_kernel_breakdown",
        "fig07_kernel_variants",
        "fig08_bandwidth",
        "tab3_matrix_shapes",
        "tab4_batched_dgemv",
        "tab5_autobalance",
        "tab6_validation",
        "fig11_speedup",
        "fig12_weak_scaling",
        "fig13_strong_scaling",
        "fig14_cpu_power",
        "fig15_gpu_power",
        "fig16_cpu_power_offload",
        "tab7_greenup",
        "resilience_overhead",
        "host_speedup",
        "host_kernels",
        "pcg_streaming",
        "matfree_ceiling",
        "telemetry_profile",
        "serve_storm",
        "sdc_campaign",
        "fleet_routing",
    ]
}

/// Runs an experiment by name.
pub fn run_by_name(name: &str) -> Option<String> {
    Some(match name {
        "fig01_perf_per_watt" => fig01_perf_per_watt::report(),
        "fig02_triple_point_orders" => fig02_triple_point_orders::report(),
        "fig03_zone_dofs" => fig03_zone_dofs::report(),
        "tab1_cpu_profile" => tab1_cpu_profile::report(),
        "fig04_register_vs_local" => fig04_register_vs_local::report(),
        "fig05_tune_k3" => fig05_tune_k3::report(),
        "fig06_kernel_breakdown" => fig06_kernel_breakdown::report(),
        "fig07_kernel_variants" => fig07_kernel_variants::report(),
        "fig08_bandwidth" => fig08_bandwidth::report(),
        "tab3_matrix_shapes" => tab3_matrix_shapes::report(),
        "tab4_batched_dgemv" => tab4_batched_dgemv::report(),
        "tab5_autobalance" => tab5_autobalance::report(),
        "tab6_validation" => tab6_validation::report(),
        "fig11_speedup" => fig11_speedup::report(),
        "fig12_weak_scaling" => fig12_weak_scaling::report(),
        "fig13_strong_scaling" => fig13_strong_scaling::report(),
        "fig14_cpu_power" => fig14_cpu_power::report(),
        "fig15_gpu_power" => fig15_gpu_power::report(),
        "fig16_cpu_power_offload" => fig16_cpu_power_offload::report(),
        "tab7_greenup" => tab7_greenup::report(),
        "resilience_overhead" => resilience_overhead::report(),
        "host_speedup" => host_speedup::report(),
        "host_kernels" => host_kernels::report(),
        "pcg_streaming" => pcg_streaming::report(),
        "matfree_ceiling" => matfree_ceiling::report(),
        "telemetry_profile" => telemetry_profile::report(),
        "serve_storm" => serve_storm::report(),
        "sdc_campaign" => sdc_campaign::report(),
        "fleet_routing" => fleet_routing::report(),
        _ => return None,
    })
}
