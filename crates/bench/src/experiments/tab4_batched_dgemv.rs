//! Table 4 — batched DGEMV on one C2050: streamed `cublasDgemv` vs the
//! custom kernel 8 vs the theoretical (bandwidth-bound) peak.
//!
//! Paper: 0.2 / 18 / 35.5 GFLOP/s for 4096 batches of 81x8.

use blast_kernels::cublas_like::StreamedDgemv;
use blast_kernels::k8_10::MomentumRhsKernel;
use blast_kernels::ProblemShape;
use gpu_sim::{GpuDevice, GpuSpec};

use crate::table;

/// Measured Table 4 values from the model.
pub fn measure() -> (f64, f64, f64) {
    let shape = ProblemShape::new(3, 2, 4096);
    let dev = GpuDevice::new(GpuSpec::c2050());
    let flops = 2.0 * shape.nvdof() as f64 * shape.nthermo as f64 * shape.zones as f64;

    let streamed = StreamedDgemv;
    let t_lib = streamed.modeled_time(&dev, &shape);
    let gflops_lib = flops / t_lib / 1e9;

    let k8 = MomentumRhsKernel;
    let stats = dev.model_kernel(&k8.config(&shape), &k8.traffic(&shape));

    // Theoretical bandwidth-bound peak: read the matrix once.
    let m = shape.nvdof() as f64;
    let n = shape.nthermo as f64;
    let fpb = (2.0 * m * n) / ((m * n + m + n) * 8.0);
    let theoretical = dev.spec().bandwidth_bound_gflops(fpb);

    (gflops_lib, stats.gflops, theoretical)
}

/// Regenerates Table 4.
pub fn report() -> String {
    let (lib, custom, theory) = measure();
    let rows = vec![vec![
        table::f(lib),
        table::f(custom),
        table::f(theory),
        format!("{:.0}x", custom / lib),
    ]];
    let mut out = table::render(
        "Table 4 — batched DGEMV, 4096 batches of 81x8 on one C2050 (GFLOP/s)",
        &["streamed cublasDgemv", "kernel 8", "theoretical", "speedup"],
        &rows,
    );
    out.push_str("\nPaper: 0.2 / 18 / 35.5 GFLOP/s (custom kernel ~90x the streamed library).\n");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn values_in_paper_bands() {
        let (lib, custom, theory) = super::measure();
        assert!(lib > 0.05 && lib < 0.6, "streamed {lib}");
        assert!(custom > 10.0 && custom < theory, "custom {custom}");
        assert!((theory - 35.5).abs() < 4.0, "theory {theory}");
        assert!(custom / lib > 30.0, "speedup {}", custom / lib);
    }
}
