//! Fig. 12 — weak scaling on ORNL Titan: 512 zones per node, 8x more
//! nodes per refinement, time for 5 cycles from 8 to 4096 nodes.

use cluster_sim::weak_scaling;

use crate::table;

/// Regenerates Fig. 12.
pub fn report() -> String {
    let pts = weak_scaling(4);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.nodes.to_string(),
                (p.nodes * 16).to_string(),
                (p.nodes * 512).to_string(),
                format!("{:.3} s", p.time_s),
            ]
        })
        .collect();
    let mut out = table::render(
        "Fig. 12 — weak scaling on Titan (3D Q2-Q1, 512 zones/node, 5 cycles)",
        &["nodes", "MPI ranks", "zones", "time"],
        &rows,
    );
    out.push_str(&format!(
        "\nPaper: 0.85 s at 8 nodes -> 1.83 s at 4096 nodes (x{:.2} here; \
         limiting factor: the global min-dt reduction and MFEM communication).\n",
        pts.last().unwrap().time_s / pts[0].time_s
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn shape_matches_paper() {
        let pts = cluster_sim::weak_scaling(4);
        assert_eq!(pts[0].nodes, 8);
        assert_eq!(pts[3].nodes, 4096);
        let ratio = pts[3].time_s / pts[0].time_s;
        assert!(ratio > 1.7 && ratio < 2.7, "ratio {ratio}");
    }
}
