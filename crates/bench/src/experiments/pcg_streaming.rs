//! pcg_streaming — the streaming-fusion experiment for the momentum PCG
//! solve, on both legs of the reproduction.
//!
//! **Host leg (measured wall-clock):** `pcg_solve_ws` with the fused
//! streaming kernels (`spmv_dot`, `axpy2_nrm2`, `precond_dot_update`)
//! against the unfused launch-per-op loop, on banded SPD systems shaped
//! like the kinematic mass matrix at orders Q1-Q4 (band widens, system
//! grows with order). Both paths are pinned to the same iteration count
//! (tolerances set unreachably tight) and to the *serial* drive so the
//! ratio isolates kernel fusion from pool scheduling. Interleaved
//! min-of-rounds, as in `host_kernels`.
//!
//! **GPU-sim leg (modeled, deterministic):** `GpuPcg` fused (3 launches
//! per iteration) vs unfused (8 per iteration) on a Q2-3D-like system —
//! launch counts, modeled device time, and modeled energy from the §6
//! cost model.
//!
//! The binary (`cargo run -p blast-bench --release --bin pcg_streaming`)
//! writes `BENCH_pcg_streaming.json` and exits non-zero if fusion loses on
//! any order >= 2 host shape or fails to cut the modeled launch count /
//! device time / energy — the CI pcg-stream-smoke gate.

use std::time::Instant;

use blast_kernels::k9::GpuPcg;
use blast_la::stream::{self, CANDIDATES};
use blast_la::{pcg_solve_ws, CsrBuilder, CsrMatrix, DiagPrecond, PcgOptions, PcgWorkspace};
use gpu_sim::GpuDevice;

use crate::table;
use gpu_sim::DeviceCatalog;

/// Host shapes `(n, half_band, label, gated)`: DOF count and semi-bandwidth
/// of the banded SPD stand-in for the kinematic mass matrix per FE order.
/// Narrow bands keep the solve BLAS-1-heavy — the regime fusion targets.
pub const SHAPES: [(usize, usize, &str, bool); 4] = [
    (20_000, 2, "Q1", false),
    (120_000, 2, "Q2", true),
    (200_000, 3, "Q3", true),
    (300_000, 4, "Q4", true),
];

/// Iterations each timed solve is pinned to (identical work per variant).
const FULL_ITERS: usize = 30;
const SMOKE_ITERS: usize = 12;

/// Measured host result on one shape.
#[derive(Clone, Debug)]
pub struct ShapeResult {
    /// FE-order label.
    pub label: &'static str,
    /// System size (DOFs).
    pub n: usize,
    /// Semi-bandwidth.
    pub half_band: usize,
    /// Participates in the CI gate (order >= 2)?
    pub gated: bool,
    /// Best fused solve time, seconds.
    pub fused_s: f64,
    /// Best unfused solve time, seconds.
    pub unfused_s: f64,
}

impl ShapeResult {
    /// Unfused over fused — the gate metric; > 1 means fusion pays off.
    pub fn speedup(&self) -> f64 {
        self.unfused_s / self.fused_s
    }
}

/// Modeled GPU-sim comparison.
#[derive(Clone, Debug)]
pub struct GpuLeg {
    /// System size (DOFs).
    pub n: usize,
    /// Semi-bandwidth.
    pub half_band: usize,
    /// Iterations both solves ran.
    pub iterations: usize,
    /// Total kernel launches, fused path.
    pub fused_launches: usize,
    /// Total kernel launches, unfused path.
    pub unfused_launches: usize,
    /// Modeled device time, fused path, seconds.
    pub fused_time_s: f64,
    /// Modeled device time, unfused path, seconds.
    pub unfused_time_s: f64,
    /// Modeled device energy, fused path, joules.
    pub fused_energy_j: f64,
    /// Modeled device energy, unfused path, joules.
    pub unfused_energy_j: f64,
}

impl GpuLeg {
    /// Modeled energy greenup (unfused / fused).
    pub fn greenup(&self) -> f64 {
        self.unfused_energy_j / self.fused_energy_j
    }
}

/// Full experiment result.
#[derive(Clone, Debug)]
pub struct PcgStreaming {
    /// One entry per [`SHAPES`] row.
    pub shapes: Vec<ShapeResult>,
    /// The modeled GPU-sim leg.
    pub gpu: GpuLeg,
    /// Whether FMA streaming clones were active.
    pub fma_active: bool,
    /// Whether the reduced smoke budget was used.
    pub smoke: bool,
}

impl PcgStreaming {
    /// Gate: fused must beat unfused on every order >= 2 host shape, and
    /// the modeled GPU leg must cut launches, device time, and energy.
    pub fn gate_failures(&self) -> Vec<String> {
        let mut fails = Vec::new();
        for s in self.shapes.iter().filter(|s| s.gated && s.speedup() < 1.0) {
            fails.push(format!(
                "host {}: fused {:.3} ms vs unfused {:.3} ms ({:.2}x < 1x)",
                s.label,
                s.fused_s * 1e3,
                s.unfused_s * 1e3,
                s.speedup()
            ));
        }
        let g = &self.gpu;
        if g.fused_launches >= g.unfused_launches {
            fails.push(format!(
                "gpu: fused launches {} >= unfused {}",
                g.fused_launches, g.unfused_launches
            ));
        }
        if g.fused_time_s >= g.unfused_time_s {
            fails.push(format!(
                "gpu: fused modeled time {:.4}s >= unfused {:.4}s",
                g.fused_time_s, g.unfused_time_s
            ));
        }
        if g.fused_energy_j >= g.unfused_energy_j {
            fails.push(format!(
                "gpu: fused modeled energy {:.3}J >= unfused {:.3}J",
                g.fused_energy_j, g.unfused_energy_j
            ));
        }
        fails
    }

    /// Machine-readable artifact (`BENCH_pcg_streaming.json`).
    pub fn to_json(&self) -> String {
        let mut rows = Vec::new();
        for s in &self.shapes {
            rows.push(format!(
                "    {{\"label\": \"{}\", \"n\": {}, \"half_band\": {}, \"gated\": {}, \
                 \"fused_ms\": {:.4}, \"unfused_ms\": {:.4}, \"speedup\": {:.4}}}",
                s.label,
                s.n,
                s.half_band,
                s.gated,
                s.fused_s * 1e3,
                s.unfused_s * 1e3,
                s.speedup(),
            ));
        }
        let g = &self.gpu;
        format!(
            "{{\n  \"experiment\": \"pcg_streaming\",\n  \"fma_active\": {},\n  \
             \"smoke\": {},\n  \"shapes\": [\n{}\n  ],\n  \"gpu\": {{\n    \
             \"n\": {}, \"half_band\": {}, \"iterations\": {},\n    \
             \"fused_launches\": {}, \"unfused_launches\": {},\n    \
             \"fused_time_s\": {:.6}, \"unfused_time_s\": {:.6},\n    \
             \"fused_energy_j\": {:.4}, \"unfused_energy_j\": {:.4}, \
             \"greenup\": {:.4}\n  }}\n}}\n",
            self.fma_active,
            self.smoke,
            rows.join(",\n"),
            g.n,
            g.half_band,
            g.iterations,
            g.fused_launches,
            g.unfused_launches,
            g.fused_time_s,
            g.unfused_time_s,
            g.fused_energy_j,
            g.unfused_energy_j,
            g.greenup(),
        )
    }
}

fn banded_spd(n: usize, half_band: usize) -> CsrMatrix {
    let mut b = CsrBuilder::new(n, n);
    for i in 0..n {
        b.add(i, i, 2.0 * half_band as f64);
        for o in 1..=half_band {
            if i >= o {
                b.add(i, i - o, -0.5);
            }
            if i + o < n {
                b.add(i, i + o, -0.5);
            }
        }
    }
    b.build()
}

/// Measures one host shape: fused-serial vs unfused-serial, pinned to
/// `iters` iterations, interleaved min-of-`rounds`.
fn measure_shape(
    n: usize,
    half_band: usize,
    label: &'static str,
    gated: bool,
    rounds: usize,
    iters: usize,
) -> ShapeResult {
    let a = banded_spd(n, half_band);
    let pre = DiagPrecond::from_diagonal(&a.diagonal());
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.013).sin()).collect();
    let opts = PcgOptions { rel_tol: 0.0, abs_tol: 1e-300, max_iter: iters };
    let mut ws = PcgWorkspace::new();
    let mut x = vec![0.0; n];

    // Serial variants only: fusion vs launch-per-op, no pool scheduling.
    let fused_idx = CANDIDATES.iter().position(|c| c.fused && !c.parallel).unwrap();
    let unfused_idx = CANDIDATES.iter().position(|c| !c.fused && !c.parallel).unwrap();
    let before = stream::active_stream_index();

    let time_variant = |idx: usize, ws: &mut PcgWorkspace, x: &mut Vec<f64>| {
        stream::set_active_stream_index(idx);
        x.iter_mut().for_each(|v| *v = 0.0);
        let t0 = Instant::now();
        pcg_solve_ws(&mut (&a), &pre, &b, x, &opts, ws);
        t0.elapsed().as_secs_f64()
    };

    // Warm-up both paths off the clock (grows the workspace, faults pages).
    time_variant(fused_idx, &mut ws, &mut x);
    time_variant(unfused_idx, &mut ws, &mut x);

    let (mut fused_s, mut unfused_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..rounds.max(1) {
        fused_s = fused_s.min(time_variant(fused_idx, &mut ws, &mut x));
        unfused_s = unfused_s.min(time_variant(unfused_idx, &mut ws, &mut x));
    }
    stream::set_active_stream_index(before);

    ShapeResult { label, n, half_band, gated, fused_s, unfused_s }
}

/// Runs the modeled GPU-sim comparison (deterministic — safe to gate).
fn measure_gpu(iters: usize) -> GpuLeg {
    let (n, half_band) = (20_000, 40); // Q2-3D-like FEM row density
    let a = banded_spd(n, half_band);
    let pre = DiagPrecond::from_diagonal(&a.diagonal());
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).cos()).collect();
    let none = vec![false; n];
    let opts = PcgOptions { rel_tol: 0.0, abs_tol: 1e-300, max_iter: iters };

    let leg = |fused: bool| {
        let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
        let mut x = vec![0.0; n];
        let res = GpuPcg { opts, fused }
            .solve(&dev, &a, &pre, &b, &none, &mut x)
            .expect("no faults injected");
        let launches: usize = dev.kernel_summary().iter().map(|&(_, _, c)| c).sum();
        (res.iterations, launches, dev.now(), dev.energy_joules())
    };
    let (it_f, l_f, t_f, e_f) = leg(true);
    let (it_u, l_u, t_u, e_u) = leg(false);
    assert_eq!(it_f, it_u, "pinned iteration counts must agree");

    GpuLeg {
        n,
        half_band,
        iterations: it_f,
        fused_launches: l_f,
        unfused_launches: l_u,
        fused_time_s: t_f,
        unfused_time_s: t_u,
        fused_energy_j: e_f,
        unfused_energy_j: e_u,
    }
}

/// Runs the full sweep. `smoke` shrinks the budget for the CI lane; the
/// shape list and every gate stay complete.
pub fn measure_with_budget(smoke: bool) -> PcgStreaming {
    // Min-of-rounds needs enough rounds to straddle host frequency jitter:
    // the fused-vs-unfused deltas being gated are a few percent, and
    // adjacent-solve noise on a busy box is the same order.
    let (rounds, iters) = if smoke { (9, SMOKE_ITERS) } else { (15, FULL_ITERS) };
    let shapes = SHAPES
        .iter()
        .map(|&(n, hb, label, gated)| measure_shape(n, hb, label, gated, rounds, iters))
        .collect();
    let gpu = measure_gpu(if smoke { SMOKE_ITERS } else { 25 });
    PcgStreaming { shapes, gpu, fma_active: stream::fma_active(), smoke }
}

/// Full-budget sweep (the experiment registry entry point).
pub fn measure() -> PcgStreaming {
    measure_with_budget(false)
}

/// Renders the human-readable tables.
pub fn render(r: &PcgStreaming) -> String {
    let rows: Vec<Vec<String>> = r
        .shapes
        .iter()
        .map(|s| {
            vec![
                s.label.to_string(),
                format!("{}", s.n),
                format!("{}", s.half_band),
                format!("{:.3}", s.fused_s * 1e3),
                format!("{:.3}", s.unfused_s * 1e3),
                format!("{:.2}x", s.speedup()),
            ]
        })
        .collect();
    let mut out = table::render(
        "pcg_streaming — measured fused vs unfused PCG solve time on mass-matrix-like systems (ms, serial)",
        &["order", "n", "band", "fused", "unfused", "speedup"],
        &rows,
    );
    let g = &r.gpu;
    out.push_str(&format!(
        "\nGPU-sim leg (n={}, band={}, {} iterations): {} launches vs {} \
         ({:.1} vs {:.1} per iteration), modeled time {:.4}s vs {:.4}s, \
         modeled energy {:.2}J vs {:.2}J (greenup {:.2}x).\n",
        g.n,
        g.half_band,
        g.iterations,
        g.fused_launches,
        g.unfused_launches,
        g.fused_launches as f64 / g.iterations as f64,
        g.unfused_launches as f64 / g.iterations as f64,
        g.fused_time_s,
        g.unfused_time_s,
        g.fused_energy_j,
        g.unfused_energy_j,
        g.greenup(),
    ));
    out.push_str(&format!(
        "FMA streaming clones {}; best-of-{} interleaved rounds per shape.\n",
        if r.fma_active { "active" } else { "inactive" },
        if r.smoke { 3 } else { 7 },
    ));
    out
}

/// Regenerates the artifact.
pub fn report() -> String {
    render(&measure())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_covers_all_shapes_and_emits_json() {
        let r = measure_with_budget(true);
        assert_eq!(r.shapes.len(), SHAPES.len());
        for s in &r.shapes {
            assert!(s.fused_s > 0.0 && s.unfused_s > 0.0);
        }
        assert_eq!(r.shapes.iter().filter(|s| s.gated).count(), 3);
        assert!(r.gpu.iterations > 0);
        let json = r.to_json();
        assert!(json.contains("\"experiment\": \"pcg_streaming\""));
        assert!(json.contains("\"Q3\""));
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    /// The modeled GPU leg is deterministic: fusion must always cut
    /// launches, device time, and energy, in any build profile.
    #[test]
    fn gpu_leg_greenup_is_deterministic() {
        let g = measure_gpu(SMOKE_ITERS);
        assert!(g.fused_launches < g.unfused_launches);
        assert!(g.fused_time_s < g.unfused_time_s);
        assert!(g.fused_energy_j < g.unfused_energy_j);
        assert!(g.greenup() > 1.0);
    }

    /// The ISSUE acceptance gate: fused beats unfused on every order >= 2
    /// shape. Wall-clock — debug builds skip it.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "wall-clock measurement; run with --release")]
    fn fused_beats_unfused_on_gated_shapes() {
        let r = measure_with_budget(true);
        let fails = r.gate_failures();
        assert!(fails.is_empty(), "{fails:?}");
    }
}
