//! Shared scenario builders for the application-level experiments.
//!
//! Functional problem sizes are chosen so every experiment runs in seconds
//! on a laptop while the *modeled* device times keep the paper's operand
//! shapes (order, points-per-zone, batching) — see DESIGN.md on the
//! functional/performance split.

use std::sync::Arc;

use blast_core::{ExecMode, Executor, Hydro, HydroConfig, HydroState, Sedov, TriplePoint};
use gpu_sim::{CpuSpec, GpuDevice, GpuSpec};
use gpu_sim::DeviceCatalog;

/// 3D Sedov on the E5-2670 + K20 single node of §4.2.
pub fn sedov3d(
    order: usize,
    zones_axis: usize,
    mode: ExecMode,
) -> (Hydro<3>, HydroState) {
    sedov3d_on(order, zones_axis, mode, DeviceCatalog::gpu("k20"))
}

/// 3D Sedov on an explicit GPU spec — the ablation hook: energy-model
/// terms can be zeroed in `spec` without touching the device presets.
pub fn sedov3d_on(
    order: usize,
    zones_axis: usize,
    mode: ExecMode,
    spec: GpuSpec,
) -> (Hydro<3>, HydroState) {
    let gpu = match mode {
        ExecMode::Gpu { .. } | ExecMode::Hybrid { .. } => {
            Some(Arc::new(GpuDevice::new(spec)))
        }
        _ => None,
    };
    let exec = Executor::new(mode, CpuSpec::e5_2670(), gpu);
    let problem = Sedov::default();
    let cfg = HydroConfig { order, ..Default::default() };
    let hydro = Hydro::<3>::builder(&problem, [zones_axis; 3])
        .config(cfg)
        .executor(exec)
        .build()
        .expect("scenario fits the device");
    let state = hydro.initial_state();
    (hydro, state)
}

/// 2D Sedov (for the quicker 2D studies).
pub fn sedov2d(order: usize, zones_axis: usize, mode: ExecMode) -> (Hydro<2>, HydroState) {
    let gpu = match mode {
        ExecMode::Gpu { .. } | ExecMode::Hybrid { .. } => {
            Some(Arc::new(GpuDevice::new(DeviceCatalog::gpu("k20"))))
        }
        _ => None,
    };
    let exec = Executor::new(mode, CpuSpec::e5_2670(), gpu);
    let problem = Sedov::default();
    let cfg = HydroConfig { order, ..Default::default() };
    let hydro = Hydro::<2>::builder(&problem, [zones_axis; 2])
        .config(cfg)
        .executor(exec)
        .build()
        .expect("scenario fits the device");
    let state = hydro.initial_state();
    (hydro, state)
}

/// 2D triple point at a given order; `base_zones` scales the 7x3 domain.
pub fn triple_point(
    order: usize,
    base_zones: usize,
    mode: ExecMode,
) -> (Hydro<2>, HydroState) {
    triple_point_with_cfl(order, base_zones, mode, HydroConfig::default().cfl)
}

/// 2D triple point with an explicit CFL factor (strong shear on coarse
/// Lagrangian meshes wants a conservative step).
pub fn triple_point_with_cfl(
    order: usize,
    base_zones: usize,
    mode: ExecMode,
    cfl: f64,
) -> (Hydro<2>, HydroState) {
    let gpu = match mode {
        ExecMode::Gpu { .. } | ExecMode::Hybrid { .. } => {
            Some(Arc::new(GpuDevice::new(DeviceCatalog::gpu("k20"))))
        }
        _ => None,
    };
    let exec = Executor::new(mode, CpuSpec::e5_2670(), gpu);
    let problem = TriplePoint::default();
    let cfg = HydroConfig { order, cfl, ..Default::default() };
    let hydro = Hydro::<2>::builder(&problem, [7 * base_zones, 3 * base_zones])
        .config(cfg)
        .executor(exec)
        .build()
        .expect("scenario fits the device");
    let state = hydro.initial_state();
    (hydro, state)
}

/// Steps a hydro `n` times at a CFL-limited dt; returns the simulated wall
/// time consumed by those steps.
pub fn run_steps<const D: usize>(hydro: &mut Hydro<D>, state: &mut HydroState, n: usize) -> f64 {
    let t0 = hydro.wall_time();
    let mut dt = hydro.suggest_dt(state);
    for _ in 0..n {
        let out = hydro.step(state, dt);
        dt = out.dt_est.min(1.02 * dt);
    }
    hydro.wall_time() - t0
}
