//! Fleet routing — the greenup-routing gate: a mixed three-tenant
//! workload over a heterogeneous fleet (CPU-only node, the paper's K20
//! node, a modern Ampere node), placed by the energy-aware
//! [`blast_serve::Router`], versus every *static* placement of the same
//! workload.
//!
//! The claim under test is the tentpole of the fleet redesign: per-job
//! greenup-driven placement uses strictly less billed tenant energy than
//! running everything on the CPU node **and** than pinning everything to
//! any single device — while meeting every job's latency SLO. The statics
//! are given their best shot: deadlines are disabled (nothing cancels
//! early and under-bills) and each job runs under the cheapest-energy
//! execution mode the pilots found *for that device*, so the routed win
//! can only come from heterogeneity, not from handicapped baselines.
//!
//! The driver also re-runs the routed placement under `BLAST_THREADS`-
//! style pool sizes 1 and 8 and diffs the ledger digests — routing
//! decisions and billing are bit-deterministic by construction, and this
//! gate keeps them that way.

use std::fmt::Write as _;

use blast_core::fleet;
use blast_serve::{
    JobOutcome, JobSpec, Placement, Router, RoutingDecision, Scenario, ServeConfig,
    ServeReport, Supervisor, WorkerSpec,
};
use gpu_sim::DeviceCatalog;

use crate::table;

/// Energy-reconciliation tolerance, same as the serve-storm gate.
const RECONCILE_TOL: f64 = 1e-9;

/// The experiment's fleet: one CPU-only node and two GPU generations.
/// (`xeon-phi` is deliberately absent: it dominates the E5-2670 at every
/// size in the cost model, which would make "all-CPU" a strawman.)
const FLEET: [&str; 3] = ["cpu-e5-2670", "k20", "ampere"];

fn fleet() -> DeviceCatalog {
    DeviceCatalog::standard_subset(&FLEET)
}

/// The mixed workload: per tenant, a job class sized so that no single
/// device is cheapest for all of them. Every job carries a real (if
/// generous) latency SLO on the simulated clock.
fn workload(smoke: bool) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    let mut push = |tenant: &str, scenario, zones, order, t_final, max_steps, n: usize| {
        for k in 0..n {
            jobs.push(JobSpec {
                tenant: tenant.to_string(),
                scenario,
                zones,
                order,
                t_final,
                max_steps,
                priority: 0,
                arrival_s: jobs.len() as f64 * 1e-4,
                deadline_s: Some(30.0 + k as f64),
                checkpoint_every: 0,
                energy_est_j: 0.0,
                fault_immune: false,
                placement: None,
            });
        }
    };
    let (tiny, mid, big) = if smoke { (2, 1, 1) } else { (3, 2, 2) };
    // acme: many small interactive jobs — launch/transfer overheads
    // dominate, the CPU node tends to win.
    push("acme", Scenario::Sedov, [4, 4], 2, 0.008, 10, tiny);
    // globex: mid-size vortex runs.
    push("globex", Scenario::TaylorGreen, [10, 10], 2, 0.02, 14, mid);
    // initech: large high-order shock runs — GPU territory.
    push("initech", Scenario::TriplePoint, [16, 16], 3, 0.03, 16, big);
    jobs
}

/// One routed job's row in the report.
#[derive(Clone, Debug)]
pub struct RoutedJob {
    /// Billing tenant.
    pub tenant: String,
    /// Scenario name.
    pub scenario: &'static str,
    /// Mesh zones per axis.
    pub zones: [usize; 2],
    /// Device the router picked.
    pub device_id: String,
    /// Rendered execution mode of the pick.
    pub mode: String,
    /// Predicted whole-run joules at routing time.
    pub predicted_j: f64,
    /// Whether the SLO (not energy) forced the pick.
    pub slo_forced: bool,
    /// Greenup of the pick vs the cheapest CPU-only candidate.
    pub greenup: f64,
}

/// One static placement's outcome.
#[derive(Clone, Debug)]
pub struct StaticRun {
    /// The device every job was pinned to.
    pub device_id: String,
    /// Billed tenant energy (idle bucket excluded), joules.
    pub tenant_energy_j: f64,
    /// Jobs that completed (statics run without deadlines, so anything
    /// else is a gate-worthy anomaly).
    pub completed: usize,
    /// Billed-vs-trace reconciliation error of the run.
    pub reconcile_err: f64,
}

/// Everything the fleet-routing driver measured.
#[derive(Clone, Debug)]
pub struct FleetRouting {
    /// Per-job routing decisions, submission order.
    pub routed_jobs: Vec<RoutedJob>,
    /// Billed tenant energy of the routed placement (idle excluded).
    pub routed_energy_j: f64,
    /// Routed jobs that completed.
    pub routed_completed: usize,
    /// Total jobs submitted.
    pub total_jobs: usize,
    /// Deadline cancellations in the routed run (must be 0: every SLO met).
    pub routed_deadline_misses: usize,
    /// Routed-run reconciliation error.
    pub routed_reconcile_err: f64,
    /// Routed ledger digest under a 1-thread host pool.
    pub digest_threads1: u64,
    /// Routed ledger digest under an 8-thread host pool.
    pub digest_threads8: u64,
    /// Every static single-device placement of the same workload.
    pub statics: Vec<StaticRun>,
    /// Whether the reduced smoke workload was used.
    pub smoke: bool,
}

fn tenant_energy(report: &ServeReport) -> f64 {
    report.tenant_energy_j.iter().map(|(_, j)| j).sum()
}

fn supervisor_for_fleet() -> Supervisor {
    let workers =
        FLEET.iter().map(|id| WorkerSpec::from_device(&DeviceCatalog::get(id))).collect();
    Supervisor::new(ServeConfig::default(), workers)
}

/// Runs the routed placement once and returns the ledger plus the
/// per-job decisions.
fn run_routed(jobs: &[JobSpec]) -> (ServeReport, Vec<RoutingDecision>) {
    let mut router = Router::new(fleet());
    let mut sup = supervisor_for_fleet();
    let mut decisions = Vec::new();
    for spec in jobs {
        let (_, d) = sup.submit_routed(&mut router, spec.clone()).expect("fleet admits job");
        decisions.push(d);
    }
    (sup.run_to_completion(), decisions)
}

/// Runs the whole workload pinned to one device, deadlines disabled,
/// each job under the cheapest mode the router's pilots found for that
/// device (`decisions` aligns with `jobs`).
fn run_static(
    device_id: &str,
    jobs: &[JobSpec],
    decisions: &[RoutingDecision],
) -> StaticRun {
    let dev = DeviceCatalog::get(device_id);
    let workers = (0..FLEET.len()).map(|_| WorkerSpec::from_device(&dev)).collect();
    let mut sup = Supervisor::new(ServeConfig::default(), workers);
    for (spec, decision) in jobs.iter().zip(decisions) {
        let mode = decision
            .candidates
            .iter()
            .filter(|c| c.device_id == device_id)
            .min_by(|a, b| a.energy_j.total_cmp(&b.energy_j))
            .map(|c| c.mode.clone())
            .unwrap_or_else(|| fleet::derive_mode(&dev));
        let pinned = JobSpec {
            deadline_s: None,
            placement: Some(Placement { device_id: device_id.to_string(), mode }),
            ..spec.clone()
        };
        sup.submit(pinned).expect("static run admits job");
    }
    let report = sup.run_to_completion();
    StaticRun {
        device_id: device_id.to_string(),
        tenant_energy_j: tenant_energy(&report),
        completed: report.count(|o| matches!(o, JobOutcome::Completed { .. })),
        reconcile_err: report.reconciliation_error(),
    }
}

/// Runs the full experiment. `smoke` trims the per-tenant job counts;
/// the fleet, the job classes, and every gate stay identical.
pub fn measure_with_budget(smoke: bool) -> FleetRouting {
    let jobs = workload(smoke);

    // Routed placement, twice, under different host-pool sizes: the
    // second run's digest must match the first bit for bit.
    rayon::set_active_threads(1);
    let (report1, decisions) = run_routed(&jobs);
    rayon::set_active_threads(8);
    let (report8, _) = run_routed(&jobs);
    rayon::set_active_threads(0);

    let routed_jobs = jobs
        .iter()
        .zip(&decisions)
        .map(|(spec, d)| RoutedJob {
            tenant: spec.tenant.clone(),
            scenario: spec.scenario.name(),
            zones: spec.zones,
            device_id: d.placement.device_id.clone(),
            mode: format!("{:?}", d.placement.mode),
            predicted_j: d.predicted.energy_j,
            slo_forced: d.slo_forced,
            greenup: d.greenup.map_or(f64::NAN, |g| g.greenup),
        })
        .collect();

    let statics = FLEET.iter().map(|id| run_static(id, &jobs, &decisions)).collect();

    FleetRouting {
        routed_jobs,
        routed_energy_j: tenant_energy(&report1),
        routed_completed: report1.count(|o| matches!(o, JobOutcome::Completed { .. })),
        total_jobs: jobs.len(),
        routed_deadline_misses: report1.count(|o| {
            matches!(
                o,
                JobOutcome::Cancelled {
                    reason: blast_serve::CancelReason::DeadlineExceeded
                }
            )
        }),
        routed_reconcile_err: report1.reconciliation_error(),
        digest_threads1: report1.ledger_digest(),
        digest_threads8: report8.ledger_digest(),
        statics,
        smoke,
    }
}

impl FleetRouting {
    /// The gate: routed placement strictly cheaper than every static,
    /// every SLO met, every ledger closed, digests thread-invariant.
    pub fn gate_failures(&self) -> Vec<String> {
        let mut fails = Vec::new();
        if self.routed_completed != self.total_jobs {
            fails.push(format!(
                "routed run completed {}/{} jobs",
                self.routed_completed, self.total_jobs
            ));
        }
        if self.routed_deadline_misses != 0 {
            fails.push(format!(
                "routed run missed {} SLO deadline(s)",
                self.routed_deadline_misses
            ));
        }
        for s in &self.statics {
            if s.completed != self.total_jobs {
                fails.push(format!(
                    "static {} completed {}/{} jobs",
                    s.device_id, s.completed, self.total_jobs
                ));
            }
            if self.routed_energy_j >= s.tenant_energy_j {
                fails.push(format!(
                    "routed energy {:.6e} J is not strictly below static {} ({:.6e} J)",
                    self.routed_energy_j, s.device_id, s.tenant_energy_j
                ));
            }
            if s.reconcile_err > RECONCILE_TOL {
                fails.push(format!(
                    "static {} energy reconciliation off by {:.3e}",
                    s.device_id, s.reconcile_err
                ));
            }
        }
        if self.routed_reconcile_err > RECONCILE_TOL {
            fails.push(format!(
                "routed energy reconciliation off by {:.3e}",
                self.routed_reconcile_err
            ));
        }
        if self.digest_threads1 != self.digest_threads8 {
            fails.push(format!(
                "routed ledger digest differs across pool sizes: {:016x} vs {:016x}",
                self.digest_threads1, self.digest_threads8
            ));
        }
        // Heterogeneity sanity: a routed win over every static requires
        // at least two distinct devices to have been picked.
        let mut picked: Vec<&str> =
            self.routed_jobs.iter().map(|r| r.device_id.as_str()).collect();
        picked.sort_unstable();
        picked.dedup();
        if picked.len() < 2 {
            fails.push(format!("router used only {picked:?} — workload exercises no heterogeneity"));
        }
        fails
    }

    /// Hand-rolled JSON artifact (`BENCH_fleet.json`).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"experiment\": \"fleet_routing\",");
        let _ = writeln!(s, "  \"smoke\": {},", self.smoke);
        let _ = writeln!(s, "  \"fleet\": [\"cpu-e5-2670\", \"k20\", \"ampere\"],");
        let _ = writeln!(s, "  \"routed_energy_j\": {:.6e},", self.routed_energy_j);
        let _ = writeln!(s, "  \"routed_completed\": {},", self.routed_completed);
        let _ = writeln!(s, "  \"total_jobs\": {},", self.total_jobs);
        let _ = writeln!(s, "  \"deadline_misses\": {},", self.routed_deadline_misses);
        let _ = writeln!(s, "  \"digest_threads1\": \"{:016x}\",", self.digest_threads1);
        let _ = writeln!(s, "  \"digest_threads8\": \"{:016x}\",", self.digest_threads8);
        let _ = writeln!(s, "  \"jobs\": [");
        for (i, r) in self.routed_jobs.iter().enumerate() {
            let comma = if i + 1 < self.routed_jobs.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"tenant\": \"{}\", \"scenario\": \"{}\", \"zones\": [{}, {}], \
                 \"device\": \"{}\", \"predicted_j\": {:.6e}, \"slo_forced\": {}, \
                 \"greenup\": {:.6}}}{comma}",
                r.tenant,
                r.scenario,
                r.zones[0],
                r.zones[1],
                r.device_id,
                r.predicted_j,
                r.slo_forced,
                r.greenup
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"statics\": [");
        for (i, st) in self.statics.iter().enumerate() {
            let comma = if i + 1 < self.statics.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"device\": \"{}\", \"tenant_energy_j\": {:.6e}, \
                 \"completed\": {}}}{comma}",
                st.device_id, st.tenant_energy_j, st.completed
            );
        }
        let _ = writeln!(s, "  ],");
        let fails = self.gate_failures();
        let _ = writeln!(s, "  \"gates_passed\": {}", fails.is_empty());
        let _ = writeln!(s, "}}");
        s
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "# fleet_routing — greenup-driven placement vs static fleets");
        let _ = writeln!(s);
        let rows: Vec<Vec<String>> = self
            .routed_jobs
            .iter()
            .map(|r| {
                vec![
                    r.tenant.clone(),
                    r.scenario.to_string(),
                    format!("{}x{}", r.zones[0], r.zones[1]),
                    r.device_id.clone(),
                    format!("{:.4e}", r.predicted_j),
                    format!("{:.3}", r.greenup),
                    if r.slo_forced { "yes" } else { "no" }.to_string(),
                ]
            })
            .collect();
        s.push_str(&table::render(
            "routed placement",
            &["tenant", "scenario", "zones", "device", "predicted [J]", "greenup", "slo-forced"],
            &rows,
        ));
        let _ = writeln!(s);
        let mut rows: Vec<Vec<String>> = vec![vec![
            "(routed)".to_string(),
            format!("{:.6e}", self.routed_energy_j),
            "1.000".to_string(),
        ]];
        for st in &self.statics {
            rows.push(vec![
                st.device_id.clone(),
                format!("{:.6e}", st.tenant_energy_j),
                format!("{:.3}", st.tenant_energy_j / self.routed_energy_j),
            ]);
        }
        s.push_str(&table::render(
            "billed tenant energy (idle excluded)",
            &["placement", "energy [J]", "vs routed"],
            &rows,
        ));
        let _ = writeln!(s);
        let _ = writeln!(
            s,
            "routed: {}/{} completed, {} deadline misses | digest {:016x} (threads=1) \
             vs {:016x} (threads=8)",
            self.routed_completed,
            self.total_jobs,
            self.routed_deadline_misses,
            self.digest_threads1,
            self.digest_threads8
        );
        let fails = self.gate_failures();
        if fails.is_empty() {
            let _ = writeln!(s, "fleet routing gates: PASS");
        } else {
            let _ = writeln!(s, "fleet routing gates: FAIL");
            for f in &fails {
                let _ = writeln!(s, "  gate violation: {f}");
            }
        }
        s
    }
}

/// Regenerates the artifact (smoke budget — the full workload belongs to
/// the dedicated `fleet_routing` gating binary).
pub fn report() -> String {
    measure_with_budget(true).render()
}

/// [`report`] plus the gate violations, for the gating binary.
pub fn report_with_status(smoke: bool) -> (FleetRouting, Vec<String>) {
    let r = measure_with_budget(smoke);
    let fails = r.gate_failures();
    (r, fails)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_workload_passes_every_gate() {
        let (r, fails) = report_with_status(true);
        assert!(fails.is_empty(), "gate failures: {fails:?}\n{}", r.render());
    }

    #[test]
    fn json_artifact_is_well_formed_enough() {
        let r = measure_with_budget(true);
        let j = r.to_json();
        assert!(j.contains("\"experiment\": \"fleet_routing\""));
        assert!(j.contains("\"gates_passed\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
