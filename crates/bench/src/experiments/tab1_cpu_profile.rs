//! Table 1 — BLAST profile on the Xeon CPU: the corner force takes 55-75%
//! of total time and the CG solver 20-34%, with the corner-force share
//! growing with the order.

use blast_core::ExecMode;

use crate::experiments::scenarios::{run_steps, sedov2d, sedov3d, triple_point};
use crate::table;

/// `(method, corner-force share, CG share)` for the three Table 1 rows.
pub fn measure() -> Vec<(String, f64, f64)> {
    let mut out = Vec::new();
    let mode = || ExecMode::CpuParallel { threads: 8 };

    // 2D Q4-Q3.
    let (mut h, mut s) = sedov2d(4, 8, mode());
    run_steps(&mut h, &mut s, 3);
    out.push(("2D: Q4-Q3".to_string(), share(&h, "corner_force"), share(&h, "cg_solver")));

    // 2D Q3-Q2 (triple point, as in the paper's mixed workloads).
    let (mut h, mut s) = triple_point(3, 2, mode());
    run_steps(&mut h, &mut s, 3);
    out.push(("2D: Q3-Q2".to_string(), share(&h, "corner_force"), share(&h, "cg_solver")));

    // 3D Q2-Q1 (large enough that the CG matrix exceeds the L3).
    let (mut h, mut s) = sedov3d(2, 12, mode());
    run_steps(&mut h, &mut s, 3);
    out.push(("3D: Q2-Q1".to_string(), share(&h, "corner_force"), share(&h, "cg_solver")));
    out
}

fn share<const D: usize>(hydro: &blast_core::Hydro<D>, phase: &str) -> f64 {
    let prof = hydro.phase_profile();
    let total: f64 = prof.iter().map(|(_, t, _)| t).sum();
    prof.iter()
        .find(|(n, _, _)| *n == phase)
        .map(|(_, t, _)| t / total)
        .unwrap_or(0.0)
}

/// Regenerates Table 1 (shares; the paper's absolute seconds depend on its
/// undisclosed domain sizes).
pub fn report() -> String {
    let rows: Vec<Vec<String>> = measure()
        .into_iter()
        .map(|(m, cf, cg)| vec![m, table::pct(cf), table::pct(cg)])
        .collect();
    let mut out = table::render(
        "Table 1 — CPU profile (Sedov / triple point, 8 threads on E5-2670)",
        &["method", "corner force", "CG solver"],
        &rows,
    );
    out.push_str(
        "\nPaper: corner force 55-75% (growing with order), CG solver 20-34%.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "hydro-scale experiment: run with --release")]
    fn corner_force_dominates_and_grows_with_order() {
        let rows = super::measure();
        for (m, cf, cg) in &rows {
            assert!(*cf > 0.45 && *cf < 0.9, "{m}: corner force {cf}");
            assert!(*cg > 0.05 && *cg < 0.45, "{m}: CG {cg}");
            assert!(cf > cg, "{m}: CF must dominate CG");
        }
        // Within a fixed dimension, p-refinement makes the corner force
        // grow faster than the CG solver (paper: 2D Q4 75.6% vs 2D Q3 70%).
        // Cross-dimension shares are not comparable (different domains).
        assert!(
            rows[0].1 > rows[1].1,
            "2D Q4 {} should exceed 2D Q3 {}",
            rows[0].1,
            rows[1].1
        );
    }
}
