//! Fig. 15 — K20 board power in the six §5.2 scenarios (3D Sedov, domain
//! limited by the Q4-Q3 memory ceiling). "The stable value of the y-axis is
//! more meaningful": we report the mean power over the active kernels.

use blast_core::ExecMode;
use gpu_sim::GpuSpec;

use crate::experiments::scenarios::{run_steps, sedov3d_on};
use crate::table;
use gpu_sim::DeviceCatalog;

/// Runs one scenario and returns the NVML-style mean board power.
///
/// For the corner-force-only scenarios the device is *not saturated* with
/// one MPI rank: between a rank's kernel launches the host runs its CG /
/// integration phases and the board sits at the ~50 W active floor. NVML's
/// per-millisecond sampling averages over those gaps, which is exactly why
/// the paper sees low power for "corner force 1 MPI" and higher power once
/// Hyper-Q interleaves eight ranks' kernels ("1MPI corner force ... has not
/// saturated the GPU, therefore its power is low"). We model the window
/// with a duty cycle `min(1, q/2)` for `q` resident ranks.
fn scenario_power(order: usize, zones_axis: usize, mode: ExecMode, only_cf: bool) -> f64 {
    scenario_power_on(order, zones_axis, mode, only_cf, DeviceCatalog::gpu("k20"))
}

/// [`scenario_power`] on an explicit spec — exported so the ablation suite
/// can re-run the corner-force scenarios with energy-model terms zeroed.
pub fn scenario_power_on(
    order: usize,
    zones_axis: usize,
    mode: ExecMode,
    only_cf: bool,
    spec: GpuSpec,
) -> f64 {
    let queues = match mode {
        ExecMode::Gpu { mpi_queues, .. } => mpi_queues,
        _ => 1,
    };
    let (mut h, mut s) = sedov3d_on(order, zones_axis, mode, spec);
    run_steps(&mut h, &mut s, 2);
    let dev = h.executor().gpu.as_ref().expect("gpu").clone();
    if only_cf {
        // Mean over the corner-force kernels only (exclude PCG/transfers).
        let cf_kernels = [
            "kernel_PzVz_Phi_F",
            "kernel_CalcAjugate_det",
            "kernel_NN_dgemmBatched",
            "kernel_loop_grad_v",
            "kernel_NT_dgemmBatched",
            "kernel_Phi_sigma_hat_z",
            "kernel_loop_zones",
            "kernel_loop_zones_dv_dt",
            "kernel_loop_quadrature_point",
        ];
        let mut e = 0.0;
        let mut t = 0.0;
        for ev in dev.events() {
            if cf_kernels.contains(&ev.name) {
                e += ev.stats.power_w * ev.stats.time_s;
                t += ev.stats.time_s;
            }
        }
        let p_kernels = e / t;
        let duty = (0.5 * queues as f64).min(1.0);
        duty * p_kernels + (1.0 - duty) * dev.spec().active_floor_w
    } else {
        dev.power_trace().mean_active_power()
    }
}

/// PCG-only power: mean over the solver kernels. Uses the paper's 16^3
/// domain — the kinematic system is then large enough that the SpMV fills
/// the device (a small system underfills it and the power drops, which is
/// itself the Fig. 15 saturation effect).
fn pcg_power() -> f64 {
    let (mut h, mut s) =
        sedov3d_on(2, 16, ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 }, DeviceCatalog::gpu("k20"));
    run_steps(&mut h, &mut s, 2);
    let dev = h.executor().gpu.as_ref().expect("gpu").clone();
    let solver = ["csrMv_ci_kernel", "cublasDdot", "cublasDaxpy"];
    let mut e = 0.0;
    let mut t = 0.0;
    for ev in dev.events() {
        if solver.contains(&ev.name) {
            e += ev.stats.power_w * ev.stats.time_s;
            t += ev.stats.time_s;
        }
    }
    e / t
}

/// The six Fig. 15 scenarios: `(label, mean watts)`.
pub fn measure() -> Vec<(String, f64)> {
    vec![
        (
            "overall, base impl. (1 MPI)".into(),
            scenario_power(2, 12, ExecMode::Gpu { base: true, gpu_pcg: true, mpi_queues: 1 }, false),
        ),
        (
            "overall, optimized (1 MPI)".into(),
            scenario_power(2, 12, ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 }, false),
        ),
        (
            "corner force Q2-Q1 (1 MPI)".into(),
            scenario_power(2, 8, ExecMode::Gpu { base: false, gpu_pcg: false, mpi_queues: 1 }, true),
        ),
        (
            "corner force Q2-Q1 (8 MPI)".into(),
            scenario_power(2, 8, ExecMode::Gpu { base: false, gpu_pcg: false, mpi_queues: 8 }, true),
        ),
        (
            "corner force Q4-Q3 (8 MPI)".into(),
            scenario_power(4, 6, ExecMode::Gpu { base: false, gpu_pcg: false, mpi_queues: 8 }, true),
        ),
        ("CUDA-PCG Q2-Q1 (1 MPI)".into(), pcg_power()),
    ]
}

/// Regenerates Fig. 15.
pub fn report() -> String {
    let data = measure();
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|(name, w)| vec![name.clone(), format!("{w:.1} W")])
        .collect();
    let mut out = table::render(
        "Fig. 15 — K20 board power by scenario (idle 20 W, startup ~50 W, TDP 225 W)",
        &["scenario", "mean active power"],
        &rows,
    );
    out.push_str(
        "\nPaper's findings reproduced: optimized < base (on-chip memory saves power); \
         8 MPI > 1 MPI (Hyper-Q overhead + higher duty); PCG > corner force at 1 MPI. \
         Residual divergence: the paper measured Q4-Q3 above Q2-Q1 at 8 MPI; with the \
         SM-utilization floor (`GpuSpec::sm_util_w`, charged while the execution units \
         stream from on-chip memories) Q4's corner force closes most of the gap but \
         still sits below Q2's DRAM-heavy mix — see the sm_util ablation and \
         EXPERIMENTS.md for the quantified residual.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "hydro-scale experiment: run with --release")]
    fn six_scenarios_satisfy_paper_orderings() {
        let d = super::measure();
        let get = |s: &str| d.iter().find(|(n, _)| n.contains(s)).map(|(_, w)| *w).unwrap();
        let base = get("base impl.");
        let opt = get("overall, optimized");
        let cf1 = get("corner force Q2-Q1 (1 MPI)");
        let cf8 = get("corner force Q2-Q1 (8 MPI)");
        let q4 = get("corner force Q4-Q3");
        let pcg = get("CUDA-PCG");

        assert!(opt < base, "optimized {opt} W !< base {base} W");
        let saving = 1.0 - opt / base;
        // Paper: ~10% lower power; our base kernel's spill traffic burns
        // proportionally more (the local-memory energy surcharge), so the
        // modeled saving can reach ~40%.
        assert!(saving > 0.02 && saving < 0.45, "power saving {saving}");
        assert!(cf8 > cf1, "8 MPI {cf8} !> 1 MPI {cf1}");
        // Documented divergence, now bounded: the paper measured Q4-Q3
        // above Q2-Q1; our per-event energy model prices Q4's on-chip
        // streaming below Q2's DRAM-heavy mix. The SM-utilization floor
        // recovers most of the missing issue/scheduler power, so Q4 must
        // clearly exceed the unsaturated 1-MPI level AND sit within 40 W
        // of Q2 at 8 MPI (the gap was ~50 W before the term).
        assert!(q4 > cf1, "Q4-Q3 {q4} !> CF 1 MPI {cf1}");
        assert!(
            cf8 - q4 < 40.0,
            "Q4-Q3 vs Q2-Q1 8-MPI residual gap {:.1} W regressed past 40 W",
            cf8 - q4
        );
        assert!(pcg > cf1, "PCG {pcg} !> CF 1MPI {cf1}");
        // All within the physical envelope.
        for (name, w) in &d {
            assert!(*w >= 50.0 && *w <= 225.0, "{name}: {w} W");
        }
    }
}
