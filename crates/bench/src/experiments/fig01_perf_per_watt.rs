//! Fig. 1 — double-precision GFLOPS per watt of NVIDIA GPUs vs Intel CPUs
//! (theoretical peak / TDP, the paper's methodology).

use powermon::catalog::{catalog, fig1_series, Vendor};

use crate::table;

/// Regenerates the Fig. 1 series.
pub fn report() -> String {
    let mut rows = Vec::new();
    for part in catalog() {
        rows.push(vec![
            part.name.to_string(),
            match part.vendor {
                Vendor::NvidiaGpu => "NVIDIA GPU".to_string(),
                Vendor::IntelCpu => "Intel CPU".to_string(),
            },
            part.year.to_string(),
            table::f(part.peak_gflops_dp),
            table::f(part.tdp_w),
            table::f(part.gflops_per_watt()),
        ]);
    }
    let mut out = table::render(
        "Fig. 1 — DP GFLOPS per watt (theoretical peak / TDP)",
        &["part", "vendor", "year", "peak GF/s", "TDP W", "GF/W"],
        &rows,
    );
    let gpu = fig1_series(Vendor::NvidiaGpu);
    let cpu = fig1_series(Vendor::IntelCpu);
    let best_gpu = gpu.iter().map(|&(_, v)| v).fold(0.0, f64::max);
    let best_cpu = cpu.iter().map(|&(_, v)| v).fold(0.0, f64::max);
    out.push_str(&format!(
        "\nBest GPU {:.2} GF/W vs best CPU {:.2} GF/W -> {:.1}x advantage \
         (paper: GPUs lead by several-x; K20-class systems exceeded 3 GF/W on the Green500).\n",
        best_gpu,
        best_cpu,
        best_gpu / best_cpu
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_contains_series_and_conclusion() {
        let r = super::report();
        assert!(r.contains("Tesla K20"));
        assert!(r.contains("Sandy Bridge"));
        assert!(r.contains("advantage"));
    }
}
