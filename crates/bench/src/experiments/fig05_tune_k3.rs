//! Fig. 5 — tuning kernel 3's zones-per-block pack count on K20 (3D
//! Q2-Q1). The paper reaches 60% of the theoretical batched-DGEMM peak.

use autotune::Autotuner;
use blast_kernels::k3::CoefGradKernel;
use blast_kernels::{GemmVariant, ProblemShape};
use gpu_sim::GpuDevice;

use crate::table;
use gpu_sim::DeviceCatalog;

/// Sweeps the pack count through the autotuner; returns
/// `(candidates, mean times, winner, achieved GF/s, theoretical GF/s)`.
pub fn measure() -> (Vec<u32>, Vec<f64>, u32, f64, f64) {
    let shape = ProblemShape::new(3, 2, 4096);
    let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
    // Prune infeasible candidates exactly like §3.2.1 ("artificial values,
    // like those exceeding the shared memory, will be eliminated").
    let candidates: Vec<u32> = [1u32, 2, 4, 8, 16, 32, 64]
        .into_iter()
        .filter(|&na| {
            let k = CoefGradKernel { variant: GemmVariant::V3, zones_per_block: na };
            gpu_sim::occupancy(dev.spec(), &k.config(&shape)).fraction > 0.0
        })
        .collect();
    let mut tuner = Autotuner::new(candidates.clone(), 40);
    while !tuner.is_done() {
        let na = *tuner.current();
        let k = CoefGradKernel { variant: GemmVariant::V3, zones_per_block: na };
        tuner.record(dev.model_kernel(&k.config(&shape), &k.traffic(&shape)).time_s);
    }
    let best = *tuner.best().expect("tuning done");
    let times: Vec<f64> = tuner.mean_times().into_iter().map(|t| t.expect("sampled")).collect();
    let k = CoefGradKernel { variant: GemmVariant::V3, zones_per_block: best };
    let stats = dev.model_kernel(&k.config(&shape), &k.traffic(&shape));
    // Theoretical peak of the bandwidth-bound batched product.
    let theoretical = dev.spec().bandwidth_bound_gflops(2.0 * 3.0 / (3.0 * 8.0)) * 3.0;
    (candidates, times, best, stats.gflops, theoretical)
}

/// Regenerates Fig. 5.
pub fn report() -> String {
    let (cands, times, best, gflops, _theory) = measure();
    let tmin = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let rows: Vec<Vec<String>> = cands
        .iter()
        .zip(&times)
        .map(|(&na, &t)| {
            vec![
                na.to_string(),
                format!("{:.3} ms", t * 1e3),
                format!("{:.2}x", t / tmin),
                if na == best { "<- tuned".into() } else { String::new() },
            ]
        })
        .collect();
    let mut out = table::render(
        "Fig. 5 — kernel 3 pack-count tuning (3D Q2-Q1, K20)",
        &["N per block", "time", "vs best", ""],
        &rows,
    );
    out.push_str(&format!(
        "\nTuned kernel 3 sustains {gflops:.1} GFLOP/s; the tuning itself buys \
         ~3x over the naive pack count, the shape of the paper's Fig. 5 \
         (its \"60% of theoretical [batched] peak\" figure refers to the \
         DIM x DIM batched-DGEMM bound, which kernels 5/6 reach — see the \
         kernel 5/6 tests).\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn tuner_picks_a_packed_configuration() {
        let (cands, times, best, gflops, _) = super::measure();
        assert!(cands.len() >= 4, "too many candidates pruned: {cands:?}");
        assert!(best > 1, "tuned N = {best}");
        // Tuning gain over the naive N = 1.
        let t1 = times[cands.iter().position(|&c| c == 1).unwrap()];
        let tb = times[cands.iter().position(|&c| c == best).unwrap()];
        assert!(t1 / tb > 1.5, "gain {}", t1 / tb);
        assert!(gflops > 10.0, "{gflops} GF/s");
    }
}
