//! matfree_ceiling — the matrix-free sum-factorization experiment: break
//! the paper's §4.1 Q4-Q3 memory ceiling.
//!
//! **Host leg (measured wall-clock):** the `autotune::assembly` proxies —
//! the stored path's `A_z` materialization + `F_z` GEMM against the
//! sum-factorized evaluation chains — per `(dimension, order)`,
//! interleaved min-of-rounds. The gate requires matrix-free to win on
//! every gated shape (see [`SHAPES`]): exactly the decision the assembly
//! tuner makes at runtime, so a gate failure means the tuner would
//! (correctly) stop picking matrix-free and the tentpole is moot.
//!
//! **Ceiling leg (gpu-sim, deterministic physics):** Q4-Q3 3D on the K20
//! device model, above the 16³ limit of Table 8 (24³ smoke / 32³ full).
//! The stored build must fail with the *typed* `OutOfMemory` error —
//! both byte counts populated — and the matrix-free build must run real
//! time steps on the same device, with the modeled launch/DRAM accounting
//! capturing the flop/byte shift (force traffic collapse, SpMV-free mass
//! applies at higher arithmetic intensity, resident-bytes collapse).
//!
//! The binary (`cargo run -p blast-bench --release --bin matfree_ceiling`)
//! writes `BENCH_matfree.json` and exits non-zero on any gate failure —
//! the CI matfree-smoke gate.

use std::sync::Arc;

use blast_core::exec::{
    cg_iteration_traffic, cg_iteration_traffic_matfree, corner_force_traffic,
    corner_force_traffic_matfree,
};
use blast_core::{AssemblyMode, ExecMode, Executor, Hydro, HydroError, Sedov};
use blast_kernels::sumfac::{SumfacFactors, SumfacMassKernel};
use blast_kernels::ProblemShape;
use blast_la::PcgOptions;
use gpu_sim::{CpuSpec, GpuDevice};

use crate::table;
use gpu_sim::DeviceCatalog;

/// Host proxy shapes `(dim, order, gated)`. Gated: every 3D order >= 3
/// shape plus 2D Q4 — the shapes where the per-zone batch is large enough
/// that sum-factorization must win for the tentpole to hold. 2D Q2/Q3 and
/// 3D Q2 are reported but allowed to go either way: their stored batches
/// are small (cache-resident `A_z`, tiny GEMMs), the stored path
/// legitimately wins, the assembly tuner correctly keeps it, and no 2D
/// low-order problem is anywhere near the memory ceiling.
pub const SHAPES: [(usize, usize, bool); 6] = [
    (2, 2, false),
    (2, 3, false),
    (2, 4, true),
    (3, 2, false),
    (3, 3, true),
    (3, 4, true),
];

/// Measured host proxy result on one `(dim, order)` shape.
#[derive(Clone, Debug)]
pub struct HostShape {
    /// Mesh dimension.
    pub dim: usize,
    /// FE order `k`.
    pub order: usize,
    /// Participates in the CI gate (3D order >= 3, 2D Q4)?
    pub gated: bool,
    /// Best stored-path per-zone proxy time, seconds.
    pub stored_s: f64,
    /// Best matrix-free per-zone proxy time, seconds.
    pub matfree_s: f64,
}

impl HostShape {
    /// Stored over matrix-free — the gate metric; > 1 means the
    /// sum-factorized path pays off.
    pub fn speedup(&self) -> f64 {
        self.stored_s / self.matfree_s
    }
}

/// Deterministic cost-model facts at the ceiling shape (no measurement).
#[derive(Clone, Debug)]
pub struct ModeledShift {
    /// Corner-force flops, stored over matrix-free (the `A_z`/`F_z` GEMM
    /// collapse).
    pub force_flops_ratio: f64,
    /// Corner-force DRAM bytes, stored over matrix-free.
    pub force_dram_ratio: f64,
    /// Corner-force arithmetic intensity (flops per DRAM byte), stored.
    pub force_ai_stored: f64,
    /// Corner-force arithmetic intensity, matrix-free.
    pub force_ai_matfree: f64,
    /// Mass-apply (CG iteration) arithmetic intensity, stored CSR SpMV.
    pub mass_ai_stored: f64,
    /// Mass-apply arithmetic intensity, sum-factorized (SpMV-free).
    pub mass_ai_matfree: f64,
    /// Modeled device-resident bytes, stored path.
    pub stored_resident: usize,
    /// Modeled device-resident bytes, matrix-free path.
    pub matfree_resident: usize,
}

/// The gpu-sim ceiling run.
#[derive(Clone, Debug)]
pub struct CeilingLeg {
    /// Zones per axis of the Q4-Q3 3D mesh.
    pub zones_axis: usize,
    /// Device DRAM capacity (K20: 5 GiB).
    pub capacity: usize,
    /// Did the stored build fail with the typed OOM?
    pub stored_oom: bool,
    /// The stored build's error message (must carry both byte counts).
    pub oom_message: String,
    /// `required` from the typed error (0 when the build unexpectedly
    /// succeeded).
    pub oom_required: usize,
    /// Time steps the matrix-free build completed.
    pub matfree_steps: usize,
    /// Simulation time reached.
    pub final_t: f64,
    /// Modeled device time of the matrix-free run, seconds.
    pub device_time_s: f64,
    /// Modeled device energy of the matrix-free run, joules.
    pub device_energy_j: f64,
    /// The cost-model facts at this shape.
    pub modeled: ModeledShift,
}

/// Full experiment result.
#[derive(Clone, Debug)]
pub struct MatfreeCeiling {
    /// One entry per [`SHAPES`] row.
    pub shapes: Vec<HostShape>,
    /// The gpu-sim ceiling leg.
    pub ceiling: CeilingLeg,
    /// Whether the reduced smoke budget (24³ ceiling) was used.
    pub smoke: bool,
}

impl MatfreeCeiling {
    /// Gate: matrix-free must win every gated host proxy, the stored
    /// Q4 ceiling build must fail with the typed OOM, the matrix-free
    /// build must run, and the modeled shift must hold (>= 10x force
    /// flop *and* DRAM collapse, > 4x mass-apply intensity, resident
    /// bytes straddling the device capacity). Corner-force arithmetic
    /// *intensity* is deliberately not gated — the stored `k7` GEMM is
    /// already high-AI, the win is doing 10x less of everything.
    pub fn gate_failures(&self) -> Vec<String> {
        let mut fails = Vec::new();
        for s in self.shapes.iter().filter(|s| s.gated && s.speedup() < 1.0) {
            fails.push(format!(
                "host {}D Q{}: matrix-free {:.3} us/zone vs stored {:.3} us/zone ({:.2}x < 1x)",
                s.dim,
                s.order,
                s.matfree_s * 1e6,
                s.stored_s * 1e6,
                s.speedup()
            ));
        }
        let c = &self.ceiling;
        if !c.stored_oom {
            fails.push(format!(
                "ceiling {za}^3: stored build did not return the typed OutOfMemory",
                za = c.zones_axis
            ));
        } else if !c.oom_message.contains("out of device memory") {
            fails.push(format!("ceiling: OOM message not actionable: {}", c.oom_message));
        }
        if c.matfree_steps == 0 || !(c.final_t.is_finite() && c.final_t > 0.0) {
            fails.push(format!(
                "ceiling {za}^3: matrix-free run completed no steps",
                za = c.zones_axis
            ));
        }
        let m = &c.modeled;
        if m.force_flops_ratio < 10.0 {
            fails.push(format!("force flop collapse {:.1}x < 10x", m.force_flops_ratio));
        }
        if m.force_dram_ratio < 10.0 {
            fails.push(format!("force DRAM collapse {:.1}x < 10x", m.force_dram_ratio));
        }
        if m.mass_ai_matfree < 4.0 * m.mass_ai_stored {
            fails.push(format!(
                "mass-apply AI {:.2} < 4x SpMV AI {:.2}",
                m.mass_ai_matfree, m.mass_ai_stored
            ));
        }
        if m.stored_resident <= c.capacity {
            fails.push(format!(
                "stored resident {} B fits the {} B device — not a ceiling shape",
                m.stored_resident, c.capacity
            ));
        }
        if m.matfree_resident > c.capacity {
            fails.push(format!(
                "matrix-free resident {} B exceeds the {} B device",
                m.matfree_resident, c.capacity
            ));
        }
        fails
    }

    /// Machine-readable artifact (`BENCH_matfree.json`).
    pub fn to_json(&self) -> String {
        let mut rows = Vec::new();
        for s in &self.shapes {
            rows.push(format!(
                "    {{\"dim\": {}, \"order\": {}, \"gated\": {}, \
                 \"stored_us\": {:.4}, \"matfree_us\": {:.4}, \"speedup\": {:.4}}}",
                s.dim,
                s.order,
                s.gated,
                s.stored_s * 1e6,
                s.matfree_s * 1e6,
                s.speedup(),
            ));
        }
        let c = &self.ceiling;
        let m = &c.modeled;
        format!(
            "{{\n  \"experiment\": \"matfree_ceiling\",\n  \"smoke\": {},\n  \
             \"shapes\": [\n{}\n  ],\n  \"ceiling\": {{\n    \
             \"zones_axis\": {}, \"capacity_bytes\": {},\n    \
             \"stored_oom\": {}, \"oom_required_bytes\": {},\n    \
             \"matfree_steps\": {}, \"final_t\": {:.6e},\n    \
             \"device_time_s\": {:.6}, \"device_energy_j\": {:.4},\n    \
             \"stored_resident_bytes\": {}, \"matfree_resident_bytes\": {},\n    \
             \"force_flops_ratio\": {:.3}, \"force_dram_ratio\": {:.3},\n    \
             \"force_ai_stored\": {:.4}, \"force_ai_matfree\": {:.4},\n    \
             \"mass_ai_stored\": {:.4}, \"mass_ai_matfree\": {:.4}\n  }}\n}}\n",
            self.smoke,
            rows.join(",\n"),
            c.zones_axis,
            c.capacity,
            c.stored_oom,
            c.oom_required,
            c.matfree_steps,
            c.final_t,
            c.device_time_s,
            c.device_energy_j,
            m.stored_resident,
            m.matfree_resident,
            m.force_flops_ratio,
            m.force_dram_ratio,
            m.force_ai_stored,
            m.force_ai_matfree,
            m.mass_ai_stored,
            m.mass_ai_matfree,
        )
    }
}

/// The deterministic cost-model shift at a Q4-Q3 3D `za³` mesh: traffic
/// ratios from the kernel models, resident bytes from the builder's
/// estimators. Pure arithmetic — identical in every build profile.
pub fn modeled_shift(zones_axis: usize) -> ModeledShift {
    let nz = zones_axis.pow(3);
    let shape = ProblemShape::new(3, 4, nz);
    let n = (4 * zones_axis + 1).pow(3);
    let factors = SumfacFactors::new(3, 4);

    let stored = corner_force_traffic(&shape);
    let matfree = corner_force_traffic_matfree(&shape, &factors);

    // The stored mass matrix cannot be assembled at this shape (that is
    // the point), so its SpMV traffic uses the same FEM sparsity estimate
    // as the footprint model: `(2k+1)^3` stencil entries per row.
    let nnz_est = n * (2 * 4 + 1usize).pow(3);
    let spmv = cg_iteration_traffic(nnz_est, n);
    let sumfac = cg_iteration_traffic_matfree(&SumfacMassKernel.traffic(&shape, &factors, n), n, false);

    let req = Hydro::<3>::builder(&Sedov::default(), [zones_axis; 3]).order(4).required_bytes();

    ModeledShift {
        force_flops_ratio: stored.flops / matfree.flops,
        force_dram_ratio: stored.dram_bytes / matfree.dram_bytes,
        force_ai_stored: stored.flops / stored.dram_bytes,
        force_ai_matfree: matfree.flops / matfree.dram_bytes,
        mass_ai_stored: spmv.flops / spmv.dram_bytes,
        mass_ai_matfree: sumfac.flops / sumfac.dram_bytes,
        stored_resident: req.stored,
        matfree_resident: req.matrix_free,
    }
}

/// Runs the gpu-sim ceiling leg at a Q4-Q3 3D `za³` mesh on the K20 model.
fn measure_ceiling(zones_axis: usize, steps: usize) -> CeilingLeg {
    let problem = Sedov::default();
    let capacity = DeviceCatalog::gpu("k20").dram_capacity;
    let gpu_exec = |dev: &Arc<GpuDevice>| {
        Executor::new(
            ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 },
            CpuSpec::e5_2670(),
            Some(dev.clone()),
        )
    };

    // Stored: must fail with the typed OOM before any assembly work.
    let dev = Arc::new(GpuDevice::new(DeviceCatalog::gpu("k20")));
    let (stored_oom, oom_message, oom_required) = match Hydro::<3>::builder(&problem, [zones_axis; 3])
        .order(4)
        .executor(gpu_exec(&dev))
        .assembly(AssemblyMode::Stored)
        .build()
    {
        Err(e @ HydroError::OutOfMemory { required, .. }) => (true, e.to_string(), required),
        Err(e) => (false, e.to_string(), 0),
        Ok(_) => (false, String::from("build unexpectedly succeeded"), 0),
    };

    // Matrix-free: build on a fresh device and run real steps. Loose PCG
    // keeps the (single-core) run short; the physics is still the real
    // RK2-average scheme end to end.
    let dev = Arc::new(GpuDevice::new(DeviceCatalog::gpu("k20")));
    let pcg = PcgOptions { rel_tol: 1e-6, max_iter: 400, ..PcgOptions::default() };
    let mut hydro = Hydro::<3>::builder(&problem, [zones_axis; 3])
        .order(4)
        .executor(gpu_exec(&dev))
        .assembly(AssemblyMode::MatrixFree)
        .pcg(pcg)
        .build()
        .expect("matrix-free Q4 fits the K20 where stored cannot");
    let mut state = hydro.initial_state();
    let mut dt = hydro.suggest_dt(&state);
    let mut done = 0;
    for _ in 0..steps {
        let out = hydro.step(&mut state, dt);
        dt = out.dt_est.min(1.02 * dt);
        done += 1;
    }

    CeilingLeg {
        zones_axis,
        capacity,
        stored_oom,
        oom_message,
        oom_required,
        matfree_steps: done,
        final_t: state.t,
        device_time_s: dev.now(),
        device_energy_j: dev.energy_joules(),
        modeled: modeled_shift(zones_axis),
    }
}

/// Runs the full sweep. `smoke` drops the ceiling mesh from 32³ to 24³
/// (both well above the paper's 16³ stored-path limit); the host shape
/// list and every gate stay complete.
pub fn measure_with_budget(smoke: bool) -> MatfreeCeiling {
    let shapes = SHAPES
        .iter()
        .map(|&(dim, order, gated)| {
            let (stored_s, matfree_s) = autotune::assembly::measure_assembly_proxies(dim, order);
            HostShape { dim, order, gated, stored_s, matfree_s }
        })
        .collect();
    let (axis, steps) = if smoke { (24, 1) } else { (32, 2) };
    MatfreeCeiling { shapes, ceiling: measure_ceiling(axis, steps), smoke }
}

/// Full-budget sweep (the experiment registry entry point).
pub fn measure() -> MatfreeCeiling {
    measure_with_budget(false)
}

/// Renders the human-readable tables.
pub fn render(r: &MatfreeCeiling) -> String {
    let rows: Vec<Vec<String>> = r
        .shapes
        .iter()
        .map(|s| {
            vec![
                format!("{}D", s.dim),
                format!("Q{}", s.order),
                format!("{:.3}", s.stored_s * 1e6),
                format!("{:.3}", s.matfree_s * 1e6),
                format!("{:.2}x", s.speedup()),
                if s.gated { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    let mut out = table::render(
        "matfree_ceiling — measured stored vs matrix-free corner-force proxy (us/zone, serial)",
        &["dim", "order", "stored", "matfree", "speedup", "gated"],
        &rows,
    );
    let c = &r.ceiling;
    let m = &c.modeled;
    out.push_str(&format!(
        "\nCeiling leg (Q4-Q3 3D {za}^3 on K20, {cap:.2} GiB): stored build -> {oom}; \
         matrix-free ran {steps} step(s) to t={t:.3e} ({dt:.3}s, {de:.1}J modeled device).\n",
        za = c.zones_axis,
        cap = c.capacity as f64 / (1u64 << 30) as f64,
        oom = if c.stored_oom { "typed OutOfMemory" } else { "NO OOM (gate fails)" },
        steps = c.matfree_steps,
        t = c.final_t,
        dt = c.device_time_s,
        de = c.device_energy_j,
    ));
    out.push_str(&format!(
        "Modeled shift at {za}^3: force {ff:.1}x fewer flops / {fd:.1}x fewer DRAM bytes \
         (AI {fas:.2} -> {fam:.2}); mass apply AI {mas:.2} -> {mam:.2} flop/B; \
         resident {sr:.2} GiB -> {mr:.2} GiB.\n",
        za = c.zones_axis,
        ff = m.force_flops_ratio,
        fd = m.force_dram_ratio,
        fas = m.force_ai_stored,
        fam = m.force_ai_matfree,
        mas = m.mass_ai_stored,
        mam = m.mass_ai_matfree,
        sr = m.stored_resident as f64 / (1u64 << 30) as f64,
        mr = m.matfree_resident as f64 / (1u64 << 30) as f64,
    ));
    out
}

/// Regenerates the artifact (smoke budget: the full 32³ ceiling run is a
/// standalone-binary affair, not a `paper_report` side effect).
pub fn report() -> String {
    render(&measure_with_budget(true))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The modeled shift is pure arithmetic — gate it in every profile.
    /// These are the numbers that make the tentpole: at the smoke ceiling
    /// shape the stored path no longer fits the K20 while matrix-free has
    /// ~an order of magnitude of headroom, and both traffic collapses
    /// clear the 10x bar.
    #[test]
    fn modeled_shift_clears_every_bar_at_the_ceiling_shapes() {
        let cap = DeviceCatalog::gpu("k20").dram_capacity;
        for za in [24usize, 32] {
            let m = modeled_shift(za);
            assert!(m.stored_resident > cap, "{za}^3 stored {} fits {cap}", m.stored_resident);
            assert!(m.matfree_resident <= cap, "{za}^3 matfree {} exceeds {cap}", m.matfree_resident);
            assert!(m.force_flops_ratio >= 10.0, "{za}^3 flop ratio {}", m.force_flops_ratio);
            assert!(m.force_dram_ratio >= 10.0, "{za}^3 DRAM ratio {}", m.force_dram_ratio);
            assert!(
                m.mass_ai_matfree > 4.0 * m.mass_ai_stored,
                "{za}^3 mass AI {} vs SpMV {}",
                m.mass_ai_matfree,
                m.mass_ai_stored
            );
        }
    }

    /// Gate logic on synthetic results: a losing gated shape and a missing
    /// OOM must both fail; the reference configuration passes.
    #[test]
    fn gate_failures_catch_regressions() {
        let good = MatfreeCeiling {
            shapes: vec![
                HostShape { dim: 2, order: 2, gated: false, stored_s: 1.0, matfree_s: 2.0 },
                HostShape { dim: 3, order: 4, gated: true, stored_s: 2.0, matfree_s: 1.0 },
            ],
            ceiling: CeilingLeg {
                zones_axis: 24,
                capacity: DeviceCatalog::gpu("k20").dram_capacity,
                stored_oom: true,
                oom_message: "out of device memory: ...".into(),
                oom_required: 8 << 30,
                matfree_steps: 1,
                final_t: 1e-4,
                device_time_s: 1.0,
                device_energy_j: 100.0,
                modeled: modeled_shift(24),
            },
            smoke: true,
        };
        assert!(good.gate_failures().is_empty(), "{:?}", good.gate_failures());

        let mut lost_host = good.clone();
        lost_host.shapes[1].matfree_s = 3.0;
        assert!(lost_host.gate_failures().iter().any(|f| f.contains("3D Q4")));

        let mut no_oom = good.clone();
        no_oom.ceiling.stored_oom = false;
        assert!(no_oom.gate_failures().iter().any(|f| f.contains("OutOfMemory")));

        let mut no_run = good;
        no_run.ceiling.matfree_steps = 0;
        assert!(no_run.gate_failures().iter().any(|f| f.contains("no steps")));
    }

    #[test]
    fn json_is_balanced_and_labeled() {
        let r = MatfreeCeiling {
            shapes: vec![HostShape { dim: 3, order: 4, gated: true, stored_s: 2.0, matfree_s: 1.0 }],
            ceiling: CeilingLeg {
                zones_axis: 24,
                capacity: 5 << 30,
                stored_oom: true,
                oom_message: "out of device memory".into(),
                oom_required: 8 << 30,
                matfree_steps: 1,
                final_t: 2.5e-4,
                device_time_s: 0.5,
                device_energy_j: 42.0,
                modeled: modeled_shift(24),
            },
            smoke: true,
        };
        let json = r.to_json();
        assert!(json.contains("\"experiment\": \"matfree_ceiling\""));
        assert!(json.contains("\"stored_oom\": true"));
        assert!(json.contains("\"matfree_resident_bytes\""));
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }
}
