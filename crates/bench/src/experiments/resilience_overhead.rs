//! Resilience overhead — the energy price of surviving faults, reported
//! alongside the paper's greenup metric (Table 7).
//!
//! The paper's evaluation assumes a fault-free machine; this experiment
//! bills the resilience machinery added on top (coordinated checkpoints,
//! checksum-verified restores, rank-death recovery quiesce, retry backoff)
//! to the same power traces and asks how much of the hybrid's 21-30%
//! energy saving it gives back.

use std::sync::Arc;
use std::time::Duration;

use blast_core::{
    CheckpointPolicy, CheckpointStore, ExecMode, Executor, Hydro, RunConfig, Sedov,
};
use cluster_sim::comm::ClusterFaultPlan;
use cluster_sim::{campaign_overhead_pct, run_chaos_campaign, CampaignConfig, RankOutcome};
use gpu_sim::{CpuSpec, FaultKind, FaultPlan, GpuDevice};

use crate::table;
use gpu_sim::DeviceCatalog;

/// One resilience scenario's energy ledger.
#[derive(Clone, Debug)]
pub struct OverheadRow {
    /// What ran.
    pub scenario: String,
    /// Whole-run energy (host + device traces), J.
    pub energy_j: f64,
    /// Joules attributed to resilience (checkpoints, restores, quiesce,
    /// retry backoff).
    pub resilience_j: f64,
    /// `resilience_j` as a percentage of `energy_j`.
    pub overhead_pct: f64,
    /// Coordinated checkpoints written.
    pub checkpoints: u64,
    /// Checksum-verified restores.
    pub restores: u64,
    /// Rank deaths survived.
    pub rank_deaths: u64,
}

fn run_energy(exec: &Executor) -> f64 {
    let host = exec.host.power_trace();
    let mut e = host.energy(0.0, host.end_time());
    if let Some(gpu) = exec.gpu.as_ref() {
        let trace = gpu.power_trace();
        e += trace.energy(0.0, trace.end_time());
    }
    e
}

/// Single node: a checkpointed Sedov run on the hybrid executor with a
/// burst of transient device faults — checkpoints and retry backoff are the
/// whole overhead.
fn single_node_row() -> OverheadRow {
    let dev = Arc::new(GpuDevice::new(DeviceCatalog::gpu("k20")));
    dev.set_fault_plan(
        FaultPlan::seeded_from_env(42)
            .with_transient(FaultKind::LaunchFail, 5)
            .with_transient(FaultKind::D2hFail, 2),
    );
    let exec = Executor::new(
        ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 },
        CpuSpec::e5_2670(),
        Some(dev),
    );
    let problem = Sedov::default();
    let mut hydro =
        Hydro::<2>::builder(&problem, [4, 4]).executor(exec).build().expect("setup");
    let mut state = hydro.initial_state();
    let mut store = CheckpointStore::in_memory();
    let stats = hydro
        .run(
            &mut state,
            RunConfig::to(0.05)
                .max_steps(60)
                .checkpointed(CheckpointPolicy::EverySteps(3), &mut store),
        )
        .expect("transient faults are absorbed");
    let report = hydro.executor().resilience_report(stats.retries);
    let energy = run_energy(hydro.executor());
    OverheadRow {
        scenario: "1 node, transient device faults".into(),
        energy_j: energy,
        resilience_j: report.total_resilience_energy_j(),
        overhead_pct: report.overhead_pct(energy),
        checkpoints: report.checkpoints_written,
        restores: report.restores,
        rank_deaths: report.rank_deaths,
    }
}

/// Cluster: the 3-rank chaos campaign with one rank death — recovery adds
/// a restore plus the quiesce barrier on every survivor.
fn campaign_row() -> OverheadRow {
    let cfg = CampaignConfig {
        link_timeout: Duration::from_millis(20),
        ..CampaignConfig::default()
    };
    let plan = ClusterFaultPlan::seeded_from_env(42)
        .with_drop_rate(0.02)
        .with_rank_death(2, 2 * cfg.redundancy as u64 + 2);
    let results = run_chaos_campaign(&cfg, plan, |_| FaultPlan::none());
    let survivors: Vec<_> =
        results.iter().filter(|r| r.outcome == RankOutcome::Completed).cloned().collect();
    OverheadRow {
        scenario: format!("{} ranks, 1 rank death", cfg.ranks),
        energy_j: survivors.iter().map(|r| r.energy_j).sum(),
        resilience_j: survivors.iter().map(|r| r.report.total_resilience_energy_j()).sum(),
        overhead_pct: campaign_overhead_pct(&survivors),
        checkpoints: survivors.iter().map(|r| r.report.checkpoints_written).sum(),
        restores: survivors.iter().map(|r| r.report.restores).sum(),
        rank_deaths: results.iter().filter(|r| r.outcome != RankOutcome::Completed).count() as u64,
    }
}

/// Measures both scenarios.
pub fn measure() -> Vec<OverheadRow> {
    vec![single_node_row(), campaign_row()]
}

/// Renders the resilience-overhead table and puts it next to Table 7's
/// greenup.
pub fn report() -> String {
    let rows_data = measure();
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                format!("{:.1}", r.energy_j),
                format!("{:.3}", r.resilience_j),
                format!("{:.3}%", r.overhead_pct),
                r.checkpoints.to_string(),
                r.restores.to_string(),
                r.rank_deaths.to_string(),
            ]
        })
        .collect();
    let mut out = table::render(
        "Resilience overhead — energy billed to checkpoint/restart and recovery",
        &["scenario", "energy J", "resil. J", "overhead", "ckpts", "restores", "deaths"],
        &rows,
    );
    let greenup = super::tab7_greenup::measure();
    let (q2_name, q2) = &greenup[0];
    out.push_str(&format!(
        "\nAlongside greenup: the hybrid's {q2_name} energy saving is {} (Table 7); \
         resilience gives back {:.3}% (single node) to {:.3}% (cluster with a rank \
         death) of the bill — fault tolerance does not erase the greenup.\n",
        table::pct(q2.energy_saving_fraction()),
        rows_data[0].overhead_pct,
        rows_data[1].overhead_pct,
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "hydro-scale experiment: run with --release")]
    fn overhead_is_nonzero_and_minor() {
        let rows = super::measure();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.resilience_j > 0.0, "{}: resilience must cost joules", r.scenario);
            assert!(
                r.overhead_pct > 0.0 && r.overhead_pct < 50.0,
                "{}: overhead {}%",
                r.scenario,
                r.overhead_pct
            );
            assert!(r.checkpoints >= 1, "{}: no checkpoints", r.scenario);
        }
        assert_eq!(rows[0].restores, 0, "single node run is uninterrupted");
        assert!(rows[1].restores >= 1, "recovery must restore from checkpoint");
        assert_eq!(rows[1].rank_deaths, 1);
    }
}
