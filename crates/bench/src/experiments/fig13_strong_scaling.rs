//! Fig. 13 — strong scaling on SNL Shannon: fixed 32^3 domain, 1-16 nodes
//! (two K20m per node), run time on a log scale.

use cluster_sim::strong_scaling;

use crate::table;

/// Regenerates Fig. 13.
pub fn report() -> String {
    let nodes = [1usize, 2, 4, 8, 16];
    let pts = strong_scaling(&nodes);
    let t1 = pts[0].time_s;
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.nodes.to_string(),
                format!("{:.4} s", p.time_s),
                format!("{:.2}x", t1 / p.time_s),
                format!("{:.0}%", 100.0 * t1 / p.time_s / p.nodes as f64),
            ]
        })
        .collect();
    let mut out = table::render(
        "Fig. 13 — strong scaling on Shannon (3D Q2-Q1, 32^3 zones, 5 cycles)",
        &["nodes", "time", "speedup", "efficiency"],
        &rows,
    );
    out.push_str("\nPaper: \"linear strong scaling on this machine\" (log-scale y-axis).\n");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn near_linear_regime() {
        let pts = cluster_sim::strong_scaling(&[1, 2, 4, 8, 16]);
        let speedup = pts[0].time_s / pts[4].time_s;
        assert!(speedup > 6.0, "speedup {speedup}");
        // Efficiency stays above 40% out to 16 nodes.
        assert!(speedup / 16.0 > 0.4);
    }
}
