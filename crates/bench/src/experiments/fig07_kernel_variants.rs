//! Fig. 7 — kernels 3, 4, 7 at optimization levels v1/v2/v3, plus the
//! `cublasDgemmBatched` alternative for kernel 7 (3D Q2-Q1 on K20).

use blast_kernels::cublas_like::CublasDgemmBatchedLarge;
use blast_kernels::k3::CoefGradKernel;
use blast_kernels::k4::AzKernel;
use blast_kernels::k7::FzKernel;
use blast_kernels::{GemmVariant, ProblemShape};
use gpu_sim::GpuDevice;

use crate::table;
use gpu_sim::DeviceCatalog;

/// Modeled times (seconds) for each kernel/variant row of Fig. 7.
pub fn measure() -> Vec<(String, f64)> {
    let shape = ProblemShape::new(3, 2, 4096);
    let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
    let mut rows = Vec::new();
    for v in [GemmVariant::V1, GemmVariant::V2, GemmVariant::V3] {
        let k = match v {
            GemmVariant::V3 => CoefGradKernel::tuned(),
            _ => CoefGradKernel { variant: v, zones_per_block: 1 },
        };
        rows.push((
            format!("kernel 3 {v:?}"),
            dev.model_kernel(&k.config(&shape), &k.traffic(&shape)).time_s,
        ));
    }
    for v in [GemmVariant::V1, GemmVariant::V2, GemmVariant::V3] {
        let k = match v {
            GemmVariant::V3 => AzKernel::tuned(),
            _ => AzKernel { variant: v, pts_per_block: 1 },
        };
        rows.push((
            format!("kernel 4 {v:?}"),
            dev.model_kernel(&k.config(&shape), &k.traffic(&shape)).time_s,
        ));
    }
    for v in [GemmVariant::V1, GemmVariant::V2, GemmVariant::V3] {
        let k = match v {
            GemmVariant::V3 => FzKernel::tuned(),
            _ => FzKernel { variant: v, col_block: 0 },
        };
        rows.push((
            format!("kernel 7 {v:?}"),
            dev.model_kernel(&k.config(&shape), &k.traffic(&shape)).time_s,
        ));
    }
    let lib = CublasDgemmBatchedLarge;
    rows.push((
        "kernel 7 cublasDgemmBatched".to_string(),
        dev.model_kernel(&lib.config(&shape), &lib.traffic(&shape)).time_s,
    ));
    rows
}

/// Regenerates Fig. 7.
pub fn report() -> String {
    let data = measure();
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|(name, t)| vec![name.clone(), format!("{:.3} ms", t * 1e3)])
        .collect();
    let mut out = table::render(
        "Fig. 7 — kernels 3, 4, 7: v1 (naive) / v2 (shared) / v3 (tuned), 3D Q2-Q1 on K20",
        &["kernel / variant", "time"],
        &rows,
    );
    out.push_str("\nPaper: v1 is the straightforward implementation; v3 is the optimized and tuned result; the custom v3 beats cublasDgemmBatched.\n");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_kernel_improves_monotonically() {
        let data = super::measure();
        let t = |name: &str| data.iter().find(|(n, _)| n == name).unwrap().1;
        for k in ["kernel 3", "kernel 4", "kernel 7"] {
            let v1 = t(&format!("{k} V1"));
            let v2 = t(&format!("{k} V2"));
            let v3 = t(&format!("{k} V3"));
            assert!(v2 < v1, "{k}: v2 {v2} !< v1 {v1}");
            assert!(v3 <= v2, "{k}: v3 {v3} !<= v2 {v2}");
        }
        // Custom kernel 7 v3 beats the library.
        assert!(t("kernel 7 V3") < t("kernel 7 cublasDgemmBatched"));
    }
}
