//! host_kernels — *measured* single-thread wall-clock of the host GEMM
//! micro-kernels on the paper's Table-3 corner-force shapes: the
//! pre-tiling naive kernel vs the cache-blocked register-tiled core
//! (direct path) vs the tiled core with panel packing.
//!
//! Unlike the modeled figure/table experiments, every number here is real
//! hardware time. Measurement is interleaved min-of-samples: each round
//! times every variant once and every variant keeps its best round, so
//! external noise (steal time on a shared box) that slows one round
//! cannot bias the comparison — it only discards that round.
//!
//! The binary (`cargo run -p blast-bench --release --bin host_kernels`)
//! writes the machine-readable artifact `BENCH_host_kernels.json` and
//! exits non-zero if the tiled core loses to naive on any shape of order
//! >= 2 — the CI bench-smoke gate.

use std::time::Instant;

use blast_la::dense::naive;
use blast_la::tile::{self, Op, CANDIDATES};

use crate::table;

/// The Table-3 corner-force `F_z` shapes `(m, n, k, label)`: Q1-Q4 in 3D
/// plus the 2D Q4 shape (same constants as `blast-la`'s `tile_probe`
/// example and the tiled-GEMM property tests).
pub const SHAPES: [(usize, usize, usize, &str); 5] = [
    (24, 1, 8, "Q1 3D"),
    (50, 16, 36, "Q4 2D"),
    (81, 8, 64, "Q2 3D"),
    (192, 27, 125, "Q3 3D"),
    (375, 64, 216, "Q4 3D"),
];

/// Measured throughput on one shape.
#[derive(Clone, Debug)]
pub struct ShapeResult {
    /// Table-3 label, e.g. `"Q3 3D"`.
    pub label: &'static str,
    /// GEMM rows (velocity dofs per zone).
    pub m: usize,
    /// GEMM columns (thermodynamic basis functions).
    pub n: usize,
    /// Contraction length (quadrature points).
    pub k: usize,
    /// Order >= 2 (participates in the CI gate)?
    pub gated: bool,
    /// Naive kernel, GFLOP/s.
    pub naive_gflops: f64,
    /// Best direct-path candidate, GFLOP/s.
    pub tiled_gflops: f64,
    /// Candidate index behind `tiled_gflops`.
    pub tiled_index: usize,
    /// Best packed-path candidate, GFLOP/s.
    pub packed_gflops: f64,
    /// Candidate index behind `packed_gflops`.
    pub packed_index: usize,
}

impl ShapeResult {
    /// Best tiled variant (direct or packed) over naive — the gate metric.
    pub fn speedup(&self) -> f64 {
        self.tiled_gflops.max(self.packed_gflops) / self.naive_gflops
    }
}

/// Full experiment result.
#[derive(Clone, Debug)]
pub struct HostKernels {
    /// One entry per [`SHAPES`] row.
    pub shapes: Vec<ShapeResult>,
    /// Whether the FMA micro-kernel clones were active (the ULP-bounded
    /// determinism regime; see `blast_la::tile`).
    pub fma_active: bool,
    /// Whether the reduced smoke budget was used.
    pub smoke: bool,
}

impl HostKernels {
    /// Shapes of order >= 2 where the tiled core lost to naive (the CI
    /// bench-smoke gate; empty means the gate passes).
    pub fn gate_failures(&self) -> Vec<&ShapeResult> {
        self.shapes.iter().filter(|s| s.gated && s.speedup() < 1.0).collect()
    }

    /// Machine-readable artifact (`BENCH_host_kernels.json`).
    pub fn to_json(&self) -> String {
        let mut rows = Vec::new();
        for s in &self.shapes {
            rows.push(format!(
                "    {{\"label\": \"{}\", \"m\": {}, \"n\": {}, \"k\": {}, \"gated\": {}, \
                 \"naive_gflops\": {:.4}, \"tiled_gflops\": {:.4}, \"tiled_candidate\": {}, \
                 \"packed_gflops\": {:.4}, \"packed_candidate\": {}, \"speedup\": {:.4}}}",
                s.label,
                s.m,
                s.n,
                s.k,
                s.gated,
                s.naive_gflops,
                s.tiled_gflops,
                s.tiled_index,
                s.packed_gflops,
                s.packed_index,
                s.speedup(),
            ));
        }
        format!(
            "{{\n  \"experiment\": \"host_kernels\",\n  \"threads\": 1,\n  \
             \"fma_active\": {},\n  \"smoke\": {},\n  \"shapes\": [\n{}\n  ]\n}}\n",
            self.fma_active,
            self.smoke,
            rows.join(",\n")
        )
    }
}

/// Deterministic operand fill (same generator as the `tile_probe` example).
fn fill(buf: &mut [f64], seed: usize) {
    for (i, v) in buf.iter_mut().enumerate() {
        let s = i.wrapping_mul(2654435761).wrapping_add(seed) % 1000;
        *v = (s as f64 - 500.0) * 1e-3;
    }
}

/// Measures one shape: all variants (naive + 12 direct + 12 packed)
/// timed round-robin, `rounds` rounds, each sample sized to `sample_s`
/// seconds; every variant keeps its minimum.
fn measure_shape(
    m: usize,
    n: usize,
    k: usize,
    label: &'static str,
    gated: bool,
    rounds: usize,
    sample_s: f64,
) -> ShapeResult {
    let nvariants = 1 + 2 * CANDIDATES.len();
    let mut a = vec![0.0; m * k];
    let mut b = vec![0.0; n * k]; // B^T operand of the NT product: n x k.
    let mut c = vec![0.0; m * n];
    fill(&mut a, 1);
    fill(&mut b, 2);
    let mut ws = tile::GemmWorkspace::new();

    let mut run = |v: usize| {
        if v == 0 {
            naive::gemm_nt_raw(m, n, k, 1.0, &a, &b, 0.0, &mut c);
        } else if v <= CANDIDATES.len() {
            let cfg = CANDIDATES[v - 1];
            tile::gemm_tiled_direct(cfg, m, n, k, 1.0, &a, Op::N, &b, Op::T, 0.0, &mut c);
        } else {
            let cfg = CANDIDATES[v - 1 - CANDIDATES.len()];
            tile::gemm_tiled_packed(cfg, m, n, k, 1.0, &a, Op::N, &b, Op::T, 0.0, &mut c, &mut ws);
        }
    };

    // Calibrate each variant's inner repeat count to ~sample_s per sample.
    let mut inner = vec![1u32; nvariants];
    for (v, reps) in inner.iter_mut().enumerate() {
        run(v); // warm caches (and grow the packing workspace) off the clock
        let t0 = Instant::now();
        run(v);
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        *reps = (sample_s / once).ceil().max(1.0) as u32;
    }

    let mut best = vec![f64::INFINITY; nvariants];
    for _ in 0..rounds {
        for v in 0..nvariants {
            let t0 = Instant::now();
            for _ in 0..inner[v] {
                run(v);
            }
            best[v] = best[v].min(t0.elapsed().as_secs_f64() / inner[v] as f64);
        }
    }

    let flops = (2 * m * n * k) as f64;
    let gf = |t: f64| flops / t / 1e9;
    let argmin = |times: &[f64]| {
        times.iter().enumerate().min_by(|x, y| x.1.total_cmp(y.1)).map(|(i, _)| i).unwrap_or(0)
    };
    let direct = &best[1..=CANDIDATES.len()];
    let packed = &best[CANDIDATES.len() + 1..];
    let di = argmin(direct);
    let pi = argmin(packed);
    ShapeResult {
        label,
        m,
        n,
        k,
        gated,
        naive_gflops: gf(best[0]),
        tiled_gflops: gf(direct[di]),
        tiled_index: di,
        packed_gflops: gf(packed[pi]),
        packed_index: pi,
    }
}

/// Runs the full sweep. `smoke` shrinks the budget (fewer rounds, shorter
/// samples) for the CI bench-smoke lane; the shape list stays complete so
/// the gate still covers every Q2+ shape.
pub fn measure_with_budget(smoke: bool) -> HostKernels {
    let (rounds, sample_s) = if smoke { (5, 2e-4) } else { (25, 1e-3) };
    let shapes = SHAPES
        .iter()
        .map(|&(m, n, k, label)| {
            // Q1 is excluded from the gate: at 24x1x8 a call is a few
            // hundred ns and dispatch overhead dominates any tiling.
            let gated = label != "Q1 3D";
            measure_shape(m, n, k, label, gated, rounds, sample_s)
        })
        .collect();
    HostKernels { shapes, fma_active: tile::fma_active(), smoke }
}

/// Full-budget sweep (the experiment registry entry point).
pub fn measure() -> HostKernels {
    measure_with_budget(false)
}

/// Renders the human-readable table.
pub fn render(r: &HostKernels) -> String {
    let rows: Vec<Vec<String>> = r
        .shapes
        .iter()
        .map(|s| {
            vec![
                s.label.to_string(),
                format!("{}x{}x{}", s.m, s.n, s.k),
                table::f(s.naive_gflops),
                format!("{} (cfg{})", table::f(s.tiled_gflops), s.tiled_index),
                format!("{} (cfg{})", table::f(s.packed_gflops), s.packed_index),
                format!("{:.2}x", s.speedup()),
            ]
        })
        .collect();
    let mut out = table::render(
        "host_kernels — measured single-thread GEMM GFLOP/s on Table-3 shapes (real wall-clock)",
        &["shape", "m x n x k", "naive", "tiled direct", "tiled packed", "speedup"],
        &rows,
    );
    out.push_str(&format!(
        "\nFMA micro-kernels {}; best-of-{} interleaved samples per variant.\n",
        if r.fma_active { "active (ULP-bounded vs naive)" } else { "inactive (bitwise vs naive)" },
        if r.smoke { 5 } else { 25 },
    ));
    out
}

/// Regenerates the artifact.
pub fn report() -> String {
    render(&measure())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_covers_all_shapes_and_emits_json() {
        let r = measure_with_budget(true);
        assert_eq!(r.shapes.len(), SHAPES.len());
        for s in &r.shapes {
            assert!(s.naive_gflops > 0.0 && s.tiled_gflops > 0.0 && s.packed_gflops > 0.0);
            assert!(s.tiled_index < CANDIDATES.len() && s.packed_index < CANDIDATES.len());
        }
        assert_eq!(r.shapes.iter().filter(|s| s.gated).count(), 4);
        let json = r.to_json();
        assert!(json.contains("\"experiment\": \"host_kernels\""));
        assert!(json.contains("\"Q3 3D\""));
        // Balanced braces/brackets — cheap well-formedness check without a
        // JSON parser in the tree.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    /// The ISSUE acceptance gate: >= 2x over naive on the Q3/Q4 Table-3
    /// shapes, single thread, release. Wall-clock — debug builds skip it.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "wall-clock measurement; run with --release")]
    fn tiled_core_is_2x_naive_on_q3_q4() {
        let r = measure();
        for want in ["Q3 3D", "Q4 3D"] {
            let s = r.shapes.iter().find(|s| s.label == want).unwrap();
            assert!(
                s.speedup() >= 2.0,
                "{want}: tiled {:.2} / packed {:.2} vs naive {:.2} GFLOP/s = {:.2}x < 2x",
                s.tiled_gflops,
                s.packed_gflops,
                s.naive_gflops,
                s.speedup()
            );
        }
    }
}
