//! Fig. 6 — GPU kernel-time breakdown: base implementation vs the
//! redesigned/optimized one (3D Sedov Q2-Q1, corner force + CUDA-PCG).
//!
//! Paper: in the base code `kernel_loop_quadrature_point` dominates (~65%)
//! with the SpMV at ~30%; after the redesign the same SpMV time becomes
//! ~65% of the (much smaller) total while the replacement kernels take 25%.
//!
//! Both runs are pinned to the *unfused* streaming variant: the figure
//! reproduces the paper's launch-per-op CUDA-PCG loop, and the fused
//! kernels (which replace `csrMv_ci_kernel` with `fusedCsrMvDot_ci_kernel`
//! in the ledger) have their own experiment, `pcg_streaming`.

use blast_core::ExecMode;
use blast_la::stream::{self, CANDIDATES};
use blast_telemetry::{table, PhaseTotal, Track};

use crate::experiments::scenarios::{run_steps, sedov3d};

/// Runs `f` with the unfused streaming variant active (same `parallel`
/// setting), restoring the tuner's choice afterwards.
fn with_unfused_kernels<T>(f: impl FnOnce() -> T) -> T {
    let before = stream::active_stream_index();
    let parallel = stream::active_stream().parallel;
    let idx = CANDIDATES.iter().position(|c| !c.fused && c.parallel == parallel).unwrap();
    stream::set_active_stream_index(idx);
    let out = f();
    stream::set_active_stream_index(before);
    out
}

/// `(kernel, share)` lists for base and optimized runs plus the total GPU
/// times.
pub fn measure() -> (Vec<(&'static str, f64)>, Vec<(&'static str, f64)>, f64, f64) {
    let shares = |base: bool| {
        let (mut h, mut s) =
            sedov3d(2, 12, ExecMode::Gpu { base, gpu_pcg: true, mpi_queues: 1 });
        with_unfused_kernels(|| run_steps(&mut h, &mut s, 2));
        let dev = h.executor().gpu.as_ref().expect("gpu").clone();
        let summary = dev.kernel_summary();
        let total: f64 = summary.iter().map(|(_, t, _)| t).sum();
        let shares: Vec<(&'static str, f64)> =
            summary.into_iter().map(|(name, t, _)| (name, t / total)).collect();
        (shares, total)
    };
    let (base_shares, base_total) = shares(true);
    let (opt_shares, opt_total) = shares(false);
    (base_shares, opt_shares, base_total, opt_total)
}

/// Per-kernel time table for one run flavor, straight from the device's
/// launch ledger, rendered by the shared telemetry table exporter.
fn kernel_table(title: &str, base: bool) -> String {
    let (mut h, mut s) = sedov3d(2, 12, ExecMode::Gpu { base, gpu_pcg: true, mpi_queues: 1 });
    with_unfused_kernels(|| run_steps(&mut h, &mut s, 2));
    let dev = h.executor().gpu.as_ref().expect("gpu").clone();
    let totals: Vec<PhaseTotal> = dev
        .kernel_summary()
        .into_iter()
        .map(|(name, seconds, calls)| PhaseTotal {
            track: Track::Gpu,
            name,
            seconds,
            calls: calls as u64,
        })
        .collect();
    table::render_totals(title, &totals)
}

/// Regenerates Fig. 6.
pub fn report() -> String {
    let (_, _, t_base, t_opt) = measure();
    let mut out = kernel_table("Fig. 6 (left) — base implementation kernel times", true);
    out.push('\n');
    out.push_str(&kernel_table("Fig. 6 (right) — redesigned/optimized kernel times", false));
    out.push_str(&format!(
        "\nTotal GPU time: base {:.3} ms -> optimized {:.3} ms ({:.0}% less; paper: ~60% less \
         time to solution). The SpMV's absolute time is unchanged; its share grows because \
         everything else got faster.\n",
        t_base * 1e3,
        t_opt * 1e3,
        100.0 * (1.0 - t_opt / t_base)
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "hydro-scale experiment: run with --release")]
    fn breakdown_shifts_from_monolith_to_spmv() {
        let (base, opt, t_base, t_opt) = super::measure();
        let share = |list: &[(&'static str, f64)], name: &str| {
            list.iter().find(|(n, _)| *n == name).map(|(_, s)| *s).unwrap_or(0.0)
        };
        // Base: the monolithic kernel is the single largest consumer.
        let mono = share(&base, "kernel_loop_quadrature_point");
        assert!(mono > 0.3, "monolith share {mono}");
        assert_eq!(base[0].0, "kernel_loop_quadrature_point", "top consumer: {:?}", &base[..2]);
        // Optimized: the monolith is gone; SpMV leads.
        assert_eq!(share(&opt, "kernel_loop_quadrature_point"), 0.0);
        let spmv_opt = share(&opt, "csrMv_ci_kernel");
        let spmv_base = share(&base, "csrMv_ci_kernel");
        assert!(spmv_opt > spmv_base, "SpMV share must grow: {spmv_base} -> {spmv_opt}");
        assert!(spmv_opt > 0.3, "optimized SpMV share {spmv_opt}");
        assert_eq!(opt[0].0, "csrMv_ci_kernel", "top consumer: {:?}", &opt[..2]);
        // Total time shrinks substantially.
        assert!(t_opt < 0.75 * t_base, "{t_opt} vs {t_base}");
    }
}
