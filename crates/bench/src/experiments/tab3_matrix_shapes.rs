//! Table 3 — operand counts of the custom batched DGEMM kernels 3, 4, 7.

use blast_kernels::ProblemShape;

use crate::table;

/// Regenerates Table 3 for the paper's 3D Q2-Q1 configuration on a 16^3
/// domain.
pub fn report() -> String {
    let shape = ProblemShape::new(3, 2, 16 * 16 * 16);
    let mut rows = Vec::new();
    for (k, desc) in [(3u32, "zones / points / zones*points"), (4, "zones*points / points / zones*points"), (7, "zones / 1 / zones")] {
        let (a, b, c) = shape.table3_row(k);
        rows.push(vec![
            format!("kernel {k}"),
            a.to_string(),
            b.to_string(),
            c.to_string(),
            desc.to_string(),
        ]);
    }
    let mut out = table::render(
        "Table 3 — matrix counts (3D Q2-Q1, 16^3 zones)",
        &["kernel", "num A", "num B", "num C", "paper's row"],
        &rows,
    );
    out.push_str(&format!(
        "\nOperand shapes: A_z is {}x{}, B is {}x{}, F_z is {}x{} per zone.\n",
        shape.nvdof(),
        shape.npts,
        shape.nthermo,
        shape.npts,
        shape.nvdof(),
        shape.nthermo
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn counts_match_paper_semantics() {
        let r = super::report();
        // 16^3 = 4096 zones, 64 points: kernel 3 -> 4096 / 64 / 262144.
        assert!(r.contains("4096"));
        assert!(r.contains("262144"));
        assert!(r.contains("81x64") || r.contains("81x8"));
    }
}
