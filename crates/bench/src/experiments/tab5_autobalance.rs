//! Table 5 — CUDA + OpenMP auto-balance: fraction of zones assigned to the
//! GPU and periods to convergence on a six-core Westmere + C2050 node.
//!
//! Paper: 2D Sedov 75% in 14 periods; 2D triple point 77% in 12 periods.

use std::sync::Arc;

use blast_core::{ExecMode, Executor, Hydro, Sedov, TriplePoint};
use gpu_sim::{CpuSpec, GpuDevice, GpuSpec};

use crate::table;

fn westmere_fermi_exec() -> Executor {
    let dev = Arc::new(GpuDevice::new(GpuSpec::c2050()));
    Executor::new(ExecMode::Hybrid { threads: 6 }, CpuSpec::x5660(), Some(dev))
}

/// Runs each problem in hybrid mode until the balancer converges; returns
/// `(problem, optimal ratio, convergence periods)`.
pub fn measure() -> Vec<(String, f64, usize)> {
    let mut out = Vec::new();

    let sedov = Sedov::default();
    let mut h = Hydro::<2>::builder(&sedov, [16, 16])
        .executor(westmere_fermi_exec())
        .build()
        .expect("fits");
    let mut s = h.initial_state();
    let mut dt = h.suggest_dt(&s);
    for _ in 0..40 {
        let o = h.step(&mut s, dt);
        dt = o.dt_est.min(1.02 * dt);
        if h.executor().balancer.as_ref().expect("hybrid").is_converged() {
            break;
        }
    }
    let bal = h.executor().balancer.as_ref().expect("hybrid");
    out.push((
        "2D: Sedov".to_string(),
        bal.ratio(),
        bal.convergence_periods().unwrap_or(bal.periods()),
    ));

    let tp = TriplePoint::default();
    let mut h = Hydro::<2>::builder(&tp, [21, 9])
        .executor(westmere_fermi_exec())
        .build()
        .expect("fits");
    let mut s = h.initial_state();
    let mut dt = h.suggest_dt(&s);
    for _ in 0..40 {
        let o = h.step(&mut s, dt);
        dt = o.dt_est.min(1.02 * dt);
        if h.executor().balancer.as_ref().expect("hybrid").is_converged() {
            break;
        }
    }
    let bal = h.executor().balancer.as_ref().expect("hybrid");
    out.push((
        "2D: Triple-pt".to_string(),
        bal.ratio(),
        bal.convergence_periods().unwrap_or(bal.periods()),
    ));
    out
}

/// Regenerates Table 5.
pub fn report() -> String {
    let rows: Vec<Vec<String>> = measure()
        .into_iter()
        .map(|(p, r, n)| vec![p, table::pct(r), n.to_string()])
        .collect();
    let mut out = table::render(
        "Table 5 — auto-balance on X5660 (6 cores) + C2050",
        &["problem", "optimal ratio (GPU)", "convergence periods"],
        &rows,
    );
    out.push_str("\nPaper: Sedov 75% in 14 periods; triple-pt 77% in 12 periods.\n");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "hydro-scale experiment: run with --release")]
    fn ratios_and_periods_in_table5_regime() {
        for (name, ratio, periods) in super::measure() {
            assert!(
                ratio > 0.6 && ratio < 0.95,
                "{name}: ratio {ratio} outside the GPU-favoured regime"
            );
            assert!(
                (4..=30).contains(&periods),
                "{name}: {periods} periods outside Table 5's order of magnitude"
            );
        }
    }
}
