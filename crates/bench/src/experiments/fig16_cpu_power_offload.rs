//! Fig. 16 — CPU power while the corner force runs on the GPU: both
//! packages busy orchestrating, the package power drops by ~20 W relative
//! to the CPU-only run (mostly the DRAM domain).

use powermon::{CpuPowerModel, CpuPowerState};

use crate::table;

/// `(offload pkg, offload pp0, offload dram, busy pkg)` readings.
pub fn measure() -> (f64, f64, f64, f64) {
    let m = CpuPowerModel::e5_2670();
    let off = m.read(CpuPowerState::GpuOffload, 1.0);
    let busy = m.read(CpuPowerState::Busy, 1.0);
    (off.pkg_watts, off.pp0_watts, off.dram_watts, busy.pkg_watts)
}

/// Regenerates Fig. 16.
pub fn report() -> String {
    let (pkg, pp0, dram, busy_pkg) = measure();
    let rows = vec![
        vec!["pkg_watts".into(), table::f(pkg), "~75".into()],
        vec!["pp0_watts".into(), table::f(pp0), "~60".into()],
        vec!["dram_watts".into(), table::f(dram), "(pkg - PP0 mostly DRAM)".into()],
    ];
    let mut out = table::render(
        "Fig. 16 — E5-2670 package power with the corner force on the GPU (W)",
        &["domain", "measured", "paper"],
        &rows,
    );
    out.push_str(&format!(
        "\nReduction vs the CPU-only run: {:.0} W (paper: \"CPU power is reduced by 20W\"). \
         No significant dependence on the method order was observed, as in the paper.\n",
        busy_pkg - pkg
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn offload_levels_match_fig16() {
        let (pkg, pp0, _dram, busy) = super::measure();
        assert!((pkg - 75.0).abs() < 2.0, "pkg {pkg}");
        assert!((pp0 - 60.0).abs() < 3.0, "pp0 {pp0}");
        assert!((busy - pkg - 20.0).abs() < 1.0, "drop {}", busy - pkg);
    }
}
