//! SDC campaign — the silent-data-corruption acceptance gate.
//!
//! For one seed (`BLAST_FAULT_SEED` override, else 42) the campaign runs a
//! fault-free Sedov baseline and then replays the *identical* run with a
//! planned bit flip at every injection site the `SdcPlan` models: a GEMM
//! panel inside the corner-force kernel (caught by the ABFT checksums), a
//! device result buffer, a device→host transfer payload, and a committed
//! host state array (caught by the physics-invariant auditor). A
//! late-detection scenario audits on a cadence of 4 so the corrupted state
//! is *committed* and recovery must roll back to a checkpoint; a
//! persistent-flip scenario exhausts the redo budget and must fail typed.
//!
//! The gate: every injected flip is either **detected and recovered**
//! (final state bit-identical to the fault-free baseline) or surfaces a
//! **typed error** — zero silently-wrong runs — and the audit + ABFT
//! overhead billed into the `ResilienceReport` stays at or below 10% of
//! the run energy at the default cadence.

use blast_core::{
    AuditConfig, CheckpointPolicy, CheckpointStore, ExecMode, Executor, Hydro, HydroError,
    HydroState, RunConfig, Sedov,
};
use blast_la::AbftMode;
use gpu_sim::fault::fault_seed_from_env;
use gpu_sim::{derive_fault, CpuSpec, SdcPlan, SdcSite, FAULT_SEED_ENV};
use powermon::ResilienceReport;

use crate::table;

/// Audit + ABFT overhead ceiling, % of run energy at the default cadence.
pub const MAX_AUDIT_OVERHEAD_PCT: f64 = 10.0;

/// Campaign geometry: small enough for CI, large enough that every
/// injection site has significant data to corrupt.
const ZONES: [usize; 2] = [8, 8];
const ORDER: usize = 2;
/// Step-bound horizon: every scenario runs exactly this many accepted
/// steps, so final-state digests are directly comparable.
const STEPS: usize = 24;
/// Attempt ordinal of the transient/persistent flips (mid-run, after
/// several checkpoints exist).
const FLIP_AT: u64 = 10;
/// Attempt ordinal of the late-detection flip: one step past the
/// checkpoint at step 10, audited (cadence 4) only at step 12.
const LATE_FLIP_AT: u64 = 11;

/// The campaign's seed: `BLAST_FAULT_SEED` override, else 42.
pub fn campaign_seed() -> u64 {
    fault_seed_from_env().unwrap_or(42)
}

/// One scenario's ledger line.
#[derive(Clone, Debug)]
pub struct ScenarioRow {
    /// Scenario label.
    pub name: String,
    /// `Healed` (recovered bit-identically), `Typed` (typed error), or
    /// `SilentWrong` (completed with a wrong answer — a gate failure).
    pub outcome: &'static str,
    /// Flips that actually landed in data.
    pub flips: u64,
    /// Corruption detections (audit + ABFT).
    pub detected: u64,
    /// Checkpoint rollbacks taken to recover.
    pub restores: u64,
    /// FNV-1a digest of the final state bits.
    pub digest: u64,
    /// Whole-run energy from the host power trace, J.
    pub energy_j: f64,
    /// Audit + ABFT energy billed into the resilience report, J.
    pub audit_j: f64,
    /// `audit_j` as a percentage of `energy_j`.
    pub overhead_pct: f64,
}

/// FNV-1a over the bit patterns of the full final state `(v, e, x, t)` —
/// the same digest the chaos lane diffs across `BLAST_THREADS`.
pub fn state_digest(s: &HydroState) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in s.v.iter().chain(&s.e).chain(&s.x).chain(std::iter::once(&s.t)) {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

struct RunResult {
    state: HydroState,
    result: Result<(), HydroError>,
    report: ResilienceReport,
    energy_j: f64,
    store: CheckpointStore,
}

/// Runs one campaign scenario: Sedov on the measured-thread-count
/// parallel executor, checkpointed every 2 steps, audited, step-bound.
fn run_scenario(plan: SdcPlan, audit: AuditConfig) -> RunResult {
    let host = CpuSpec::e5_2670();
    let exec = Executor::new(ExecMode::cpu_parallel_measured(&host), host.clone(), None);
    let problem = Sedov::default();
    let mut hydro = Hydro::<2>::builder(&problem, ZONES)
        .order(ORDER)
        .executor(exec)
        .sdc_plan(plan)
        .audit(audit)
        .build()
        .expect("campaign scenario must build");
    hydro.reserve_host_telemetry(STEPS + 2 * blast_core::MAX_STEP_REDOS);
    let mut state = hydro.initial_state();
    let mut store = CheckpointStore::in_memory();
    let result = hydro
        .run(
            &mut state,
            RunConfig::to(1.0)
                .max_steps(STEPS)
                .checkpointed(CheckpointPolicy::EverySteps(2), &mut store),
        )
        .map(|_| ());
    let exec = hydro.executor();
    let trace = exec.host.power_trace();
    let energy_j = trace.energy(0.0, trace.end_time());
    let report = exec.resilience_report(0);
    RunResult { state, result, report, energy_j, store }
}

fn row(name: &str, r: &RunResult, baseline_digest: u64) -> ScenarioRow {
    let digest = state_digest(&r.state);
    let outcome = match &r.result {
        Ok(()) if digest == baseline_digest => "Healed",
        Ok(()) => "SilentWrong",
        Err(HydroError::CorruptionDetected { .. }) => "Typed",
        Err(_) => "Typed",
    };
    let overhead_pct = 100.0 * r.report.audit_energy_j / r.energy_j.max(f64::MIN_POSITIVE);
    ScenarioRow {
        name: name.to_string(),
        outcome,
        flips: r.report.sdc_flips_injected,
        detected: r.report.corruptions_detected,
        restores: r.report.restores,
        digest,
        energy_j: r.energy_j,
        audit_j: r.report.audit_energy_j,
        overhead_pct,
    }
}

/// Runs the campaign for `seed` and collects gate violations (empty =
/// pass). Scenario expectations are strict: a transient flip must be
/// healed bit-identically, the persistent flip must fail typed, and no
/// scenario may ever complete silently wrong.
pub fn run_campaign(seed: u64) -> (Vec<ScenarioRow>, Vec<String>) {
    // GEMM-panel flips only land through the checksummed path.
    blast_la::abft::set_mode(AbftMode::Verify);

    let audit1 = AuditConfig::default();
    let baseline = run_scenario(SdcPlan::seeded(seed), audit1);
    let baseline_digest = state_digest(&baseline.state);

    let mut rows = vec![row("baseline", &baseline, baseline_digest)];
    let mut violations = Vec::new();
    if baseline.result.is_err() {
        violations.push("fault-free baseline failed".to_string());
    }
    if baseline.report.corruptions_detected != 0 {
        violations.push(format!(
            "fault-free baseline tripped the auditor {} time(s) — tolerances too tight",
            baseline.report.corruptions_detected
        ));
    }

    let transient_sites = [
        ("transient-gemm-panel", SdcSite::GemmPanel),
        ("transient-device-buffer", SdcSite::DeviceBuffer),
        ("transient-transfer", SdcSite::TransferPayload),
        ("transient-host-state", SdcSite::HostState),
    ];
    for (ordinal, (name, site)) in transient_sites.into_iter().enumerate() {
        let mut plan = SdcPlan::seeded(seed);
        plan.arm(derive_fault(seed, site, FLIP_AT, ordinal as u64, false));
        let r = run_scenario(plan, AuditConfig::default());
        let line = row(name, &r, baseline_digest);
        if line.outcome != "Healed" {
            violations.push(format!("{name}: expected Healed, got {}", line.outcome));
        }
        if line.flips == 0 {
            violations.push(format!("{name}: the planned flip never landed"));
        }
        if line.detected == 0 {
            violations.push(format!("{name}: flip landed but was never detected"));
        }
        rows.push(line);
    }

    // Cadence 4: the corrupted state is committed before the audit runs,
    // so recovery must roll back to the step-10 checkpoint and replay.
    let mut plan = SdcPlan::seeded(seed);
    plan.arm(derive_fault(seed, SdcSite::HostState, LATE_FLIP_AT, 7, false));
    let late = run_scenario(plan, AuditConfig::default().every_steps(4));
    let line = row("late-detect-cadence4", &late, baseline_digest);
    if line.outcome != "Healed" {
        violations.push(format!("late-detect: expected Healed, got {}", line.outcome));
    }
    if line.restores == 0 {
        violations.push("late-detect: recovery must take the checkpoint rollback".to_string());
    }
    rows.push(line);

    // A persistent flip re-fires on every replay: the redo and rollback
    // budgets drain and the run must fail *typed*, store intact.
    let mut plan = SdcPlan::seeded(seed);
    plan.arm(derive_fault(seed, SdcSite::DeviceBuffer, FLIP_AT, 11, true));
    let persistent = run_scenario(plan, AuditConfig::default());
    let line = row("persistent-flip", &persistent, baseline_digest);
    match &persistent.result {
        Err(HydroError::CorruptionDetected { .. }) => {}
        Err(e) => violations.push(format!("persistent-flip: wrong error type: {e}")),
        Ok(()) => violations.push(format!(
            "persistent-flip: completed ({}) instead of failing typed",
            line.outcome
        )),
    }
    if persistent.store.latest_valid().is_none() {
        violations.push("persistent-flip: checkpoint store must survive the failure".to_string());
    }
    rows.push(line);

    for r in &rows {
        if r.outcome == "SilentWrong" {
            violations.push(format!("{}: SILENT WRONG ANSWER", r.name));
        }
    }
    let worst = rows
        .iter()
        .filter(|r| r.name != "persistent-flip")
        .map(|r| r.overhead_pct)
        .fold(0.0f64, f64::max);
    if worst > MAX_AUDIT_OVERHEAD_PCT {
        violations.push(format!(
            "audit overhead {worst:.2}% exceeds the {MAX_AUDIT_OVERHEAD_PCT}% ceiling"
        ));
    }
    (rows, violations)
}

/// The campaign report (single seed, gate summary).
pub fn report() -> String {
    report_with_status().0
}

/// [`report`] plus the gate violations, for the `sdc_campaign` binary's
/// exit status.
pub fn report_with_status() -> (String, Vec<String>) {
    use std::fmt::Write;
    let seed = campaign_seed();
    let (rows, violations) = run_campaign(seed);

    let mut s = String::new();
    let _ = writeln!(s, "# sdc_campaign — silent-data-corruption defense gate");
    let _ = writeln!(s, "sdc campaign fault seed: {seed} (override with {FAULT_SEED_ENV})");
    let _ = writeln!(s);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.outcome.to_string(),
                r.flips.to_string(),
                r.detected.to_string(),
                r.restores.to_string(),
                format!("{:.3e}", r.energy_j),
                format!("{:.2}%", r.overhead_pct),
            ]
        })
        .collect();
    s.push_str(&table::render(
        "scenarios",
        &["scenario", "outcome", "flips", "detected", "rollbacks", "energy [J]", "audit %"],
        &table_rows,
    ));
    let _ = writeln!(s);
    // One digest line per scenario: the CI lane runs this campaign at
    // BLAST_THREADS = 1 and 8 and diffs these lines.
    for r in &rows {
        let _ = writeln!(s, "sdc final state digest {}: {:016x}", r.name, r.digest);
    }
    if violations.is_empty() {
        let _ = writeln!(s, "sdc campaign gates: PASS (0 silent-wrong-answer runs)");
    } else {
        let _ = writeln!(s, "sdc campaign gates: FAIL");
        for v in &violations {
            let _ = writeln!(s, "  gate violation: {v}");
        }
    }
    (s, violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full acceptance gate at the default seed.
    #[test]
    fn campaign_has_zero_silent_wrong_runs() {
        let (rows, violations) = run_campaign(42);
        assert!(violations.is_empty(), "gate violations: {violations:#?}");
        assert!(rows.len() >= 7, "campaign must cover every site: {}", rows.len());
    }
}
