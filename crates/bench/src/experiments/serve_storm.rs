//! Serve storm — the `blast-serve` load test: bursty multi-tenant
//! arrivals over a mixed CPU/GPU worker pool under chaos (lethal fault
//! bursts, survivable redo bursts, a scripted worker death, a standing
//! device fault plan), with admission budgets tight enough to bounce
//! some of the burst.
//!
//! The driver gates on the supervisor's contract rather than on
//! throughput: every admitted job must reach a terminal state, the
//! per-tenant energy billing must reconcile with the worker power
//! traces to 1e-9, and the ledger digest must be reproducible from the
//! seed (the serve-chaos CI lane reruns this binary across seeds and
//! `BLAST_THREADS` values and diffs the digest lines).

use blast_serve::{
    JobOutcome, JobSpec, Scenario, ServeConfig, ServeReport, Supervisor, WorkerSpec,
};
use gpu_sim::fault::fault_seed_from_env;
use gpu_sim::{DeviceCatalog, FaultKind, FaultPlan, RetryPolicy};

use crate::table;

/// Relative tolerance of the billed-vs-trace energy reconciliation —
/// the solver-wide band, promoted to one named home in `blast-core`.
pub const RECONCILE_TOL: f64 = blast_core::ENERGY_RECONCILE_TOL;

/// The storm's seed: `BLAST_FAULT_SEED` override, else 42.
pub fn storm_seed() -> u64 {
    fault_seed_from_env().unwrap_or(42)
}

fn storm_config(seed: u64) -> ServeConfig {
    ServeConfig {
        queue_capacity: 24,
        quantum_steps: 4,
        retry: RetryPolicy { max_retries: 2, base_backoff_s: 1e-3, ..RetryPolicy::default() }
            .with_cap(0.25)
            .with_jitter(0.25, seed),
        worker_death_threshold: 3,
        seed,
        kill_rate: 0.10,
        redo_rate: 0.15,
        sdc_rate: 0.0,
    }
}

fn storm_workers(seed: u64) -> Vec<WorkerSpec> {
    vec![
        WorkerSpec::from_device(&DeviceCatalog::get("k20")),
        // A GPU node whose device is persistently faulty: its attempts
        // degrade to the CPU path and keep serving.
        WorkerSpec::from_device(&DeviceCatalog::get("k20"))
            .with_gpu_faults(FaultPlan::seeded(seed).with_persistent(FaultKind::EccError, 0)),
        WorkerSpec::cpu(),
        // A worker that silently dies early in the storm.
        WorkerSpec::cpu().dying_at(1.5e-3),
    ]
}

/// Submits the bursty multi-tenant arrival script. Returns
/// `(admitted, rejected)`.
fn submit_storm(sup: &mut Supervisor) -> (u64, u64) {
    sup.set_tenant_budget("acme", 4.0);
    let tenants = ["acme", "globex", "initech"];
    let scenarios = [Scenario::Sedov, Scenario::TaylorGreen, Scenario::TriplePoint];
    let mut admitted = 0;
    let mut rejected = 0;
    // Three bursts; within a burst the jobs arrive back to back.
    for burst in 0..3u64 {
        let burst_t = burst as f64 * 2e-3;
        for k in 0..6u64 {
            let i = burst * 6 + k;
            let spec = JobSpec {
                tenant: tenants[(i % 3) as usize].to_string(),
                scenario: scenarios[(i % 3) as usize],
                zones: [8, 8],
                order: 2,
                t_final: 0.04,
                max_steps: 30,
                priority: (i % 3) as u8,
                arrival_s: burst_t + k as f64 * 1e-4,
                deadline_s: if i % 6 == 5 { Some(4e-3) } else { None },
                checkpoint_every: 3,
                energy_est_j: 1.0,
                fault_immune: false,
                placement: None,
            };
            match sup.submit(spec) {
                Ok(_) => admitted += 1,
                Err(_) => rejected += 1,
            }
        }
    }
    (admitted, rejected)
}

/// Runs the storm once and collects gate violations (empty = pass).
pub fn run_storm(seed: u64) -> (ServeReport, Vec<String>) {
    let mut sup = Supervisor::new(storm_config(seed), storm_workers(seed));
    let (admitted, rejected) = submit_storm(&mut sup);
    let report = sup.run_to_completion();

    let mut violations = Vec::new();
    if report.jobs.len() as u64 != admitted {
        violations.push(format!(
            "ledger rows ({}) != admitted jobs ({admitted})",
            report.jobs.len()
        ));
    }
    if report.rejected != rejected {
        violations.push(format!(
            "rejection count mismatch: report {} vs submit-side {rejected}",
            report.rejected
        ));
    }
    if !report.all_terminal() {
        violations.push("a job is stuck in limbo".to_string());
    }
    let err = report.reconciliation_error();
    if err > RECONCILE_TOL {
        violations.push(format!(
            "energy reconciliation off by {err:.3e} (> {RECONCILE_TOL:.0e})"
        ));
    }
    if report.workers_lost != 1 {
        violations.push(format!("expected 1 worker death, saw {}", report.workers_lost));
    }
    for job in &report.jobs {
        if !job.energy_j.is_finite() || job.energy_j < 0.0 {
            violations.push(format!("{}: non-physical energy {}", job.id, job.energy_j));
        }
        if matches!(job.outcome, Some(JobOutcome::Completed { .. })) && job.final_state.is_none()
        {
            violations.push(format!("{}: completed without a final state", job.id));
        }
    }
    (report, violations)
}

/// The storm report: tenant table, outcome histogram, the seed and the
/// digest lines the CI lane greps, and any gate violations.
pub fn report() -> String {
    report_with_status().0
}

/// [`report`] plus the gate violations, for callers that need an exit
/// status without running the storm twice.
pub fn report_with_status() -> (String, Vec<String>) {
    use std::fmt::Write;
    let seed = storm_seed();
    let (report, violations) = run_storm(seed);

    let mut s = String::new();
    let _ = writeln!(s, "# serve_storm — multi-tenant supervision under chaos");
    let _ = writeln!(s, "serve storm fault seed: {seed} (override with BLAST_FAULT_SEED)");
    let _ = writeln!(s);
    let completed = report.count(|o| matches!(o, JobOutcome::Completed { .. }));
    let cancelled = report.count(|o| matches!(o, JobOutcome::Cancelled { .. }));
    let failed = report.count(|o| matches!(o, JobOutcome::Failed { .. }));
    let _ = writeln!(
        s,
        "jobs: {} admitted, {} rejected | {completed} completed, {cancelled} cancelled, \
         {failed} failed | {} preemptions, {} restores, {} workers lost",
        report.jobs.len(),
        report.rejected,
        report.jobs.iter().map(|j| j.preemptions).sum::<u64>(),
        report.jobs.iter().map(|j| j.restores).sum::<u64>(),
        report.workers_lost,
    );
    let _ = writeln!(s);
    let mut rows = vec![];
    for (tenant, joules) in &report.tenant_energy_j {
        rows.push(vec![tenant.clone(), format!("{joules:.6e}")]);
    }
    rows.push(vec!["(idle)".to_string(), format!("{:.6e}", report.idle_energy_j)]);
    s.push_str(&table::render("tenant energy", &["tenant", "energy [J]"], &rows));
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "billed {:.6e} J vs trace {:.6e} J — rel err {:.3e} (tol {RECONCILE_TOL:.0e})",
        report.billed_energy_j(),
        report.trace_energy_j,
        report.reconciliation_error()
    );
    let _ = writeln!(s, "job ledger digest: {:016x}", report.ledger_digest());
    if violations.is_empty() {
        let _ = writeln!(s, "serve storm gates: PASS");
    } else {
        let _ = writeln!(s, "serve storm gates: FAIL");
        for v in &violations {
            let _ = writeln!(s, "  gate violation: {v}");
        }
        s.push_str(&report.summary());
    }
    (s, violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_gates_hold_and_digest_replays() {
        let (a, va) = run_storm(7);
        assert!(va.is_empty(), "gate violations: {va:?}\n{}", a.summary());
        let (b, vb) = run_storm(7);
        assert!(vb.is_empty());
        assert_eq!(a.ledger_digest(), b.ledger_digest(), "seed 7 must replay bit-identically");
    }
}
