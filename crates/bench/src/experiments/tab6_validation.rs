//! Table 6 — validation of the CUDA code: CPU and GPU runs of the 2D
//! triple-point problem (Q3-Q2) both preserve total energy to machine
//! precision and agree with each other.

use blast_core::{EnergyBreakdown, ExecMode};

use crate::experiments::scenarios::{run_steps, triple_point};
use crate::table;

/// Runs the triple point on CPU and GPU; returns
/// `((cpu0, cpu1), (gpu0, gpu1), final_t)` energy breakdowns.
pub fn measure() -> ((EnergyBreakdown, EnergyBreakdown), (EnergyBreakdown, EnergyBreakdown), f64)
{
    let steps = 25;
    let (mut hc, mut sc) = triple_point(3, 1, ExecMode::CpuSerial);
    let e0c = hc.energies(&sc);
    run_steps(&mut hc, &mut sc, steps);
    let e1c = hc.energies(&sc);

    let (mut hg, mut sg) =
        triple_point(3, 1, ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 });
    let e0g = hg.energies(&sg);
    run_steps(&mut hg, &mut sg, steps);
    let e1g = hg.energies(&sg);
    ((e0c, e1c), (e0g, e1g), sc.t)
}

/// Regenerates Table 6.
pub fn report() -> String {
    let ((e0c, e1c), (e0g, e1g), t) = measure();
    let row = |name: &str, e0: &EnergyBreakdown, e1: &EnergyBreakdown| {
        vec![
            name.to_string(),
            format!("{t:.4}"),
            format!("{:.13e}", e1.kinetic),
            format!("{:.13e}", e1.internal),
            format!("{:.12e}", e1.total()),
            format!("{:.6e}", e1.total() - e0.total()),
        ]
    };
    let rows = vec![row("CPU", &e0c, &e1c), row("GPU", &e0g, &e1g)];
    let mut out = table::render(
        "Table 6 — 2D triple point, Q3-Q2: energy conservation (CPU vs GPU)",
        &["platform", "final t", "kinetic", "internal", "total", "total change"],
        &rows,
    );
    out.push_str(
        "\nPaper: both platforms preserve total energy to machine precision \
         (changes ~1e-13 absolute on a total of ~10).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "hydro-scale experiment: run with --release")]
    fn both_platforms_conserve_to_machine_precision() {
        let ((e0c, e1c), (e0g, e1g), _) = super::measure();
        assert!(e1c.relative_change(&e0c).abs() < 1e-11, "CPU drift");
        assert!(e1g.relative_change(&e0g).abs() < 1e-11, "GPU drift");
        // CPU and GPU agree to solver tolerance.
        let rel = (e1c.total() - e1g.total()).abs() / e1c.total();
        assert!(rel < 1e-10, "platform disagreement {rel}");
        // Kinetic energy developed (the interfaces are moving).
        assert!(e1c.kinetic > 0.0);
    }
}
