//! Fig. 3 — schematic of bilinear (Q1-Q0), biquadratic (Q2-Q1), and bicubic
//! (Q3-Q2) zones: kinematic (continuous) vs thermodynamic (discontinuous)
//! degrees of freedom of one 2D zone.

use blast_fem::TensorBasis;

use crate::table;

/// Regenerates the Fig. 3 DOF layouts.
pub fn report() -> String {
    let mut rows = Vec::new();
    for k in 1..=3 {
        let kin = TensorBasis::<2>::h1(k);
        let thermo = TensorBasis::<2>::l2(k - 1);
        rows.push(vec![
            format!("Q{}-Q{}", k, k - 1),
            kin.ndof().to_string(),
            (2 * kin.ndof()).to_string(),
            thermo.ndof().to_string(),
            format!("{}^2 pts", 2 * k),
        ]);
    }
    let mut out = table::render(
        "Fig. 3 — 2D zone DOF structure per method",
        &["method", "kin. scalar", "kin. vector", "thermo", "quadrature"],
        &rows,
    );

    // ASCII schematic of the Q2-Q1 zone: kinematic nodes (o) on the
    // Lobatto lattice (edges shared with neighbours), thermodynamic nodes
    // (x) strictly interior.
    out.push_str("\nQ2-Q1 zone schematic (o kinematic, x thermodynamic):\n");
    let kin = TensorBasis::<2>::h1(2);
    let thermo = TensorBasis::<2>::l2(1);
    let mut grid = vec![vec![b' '; 33]; 17];
    for j in 0..kin.ndof() {
        let p = kin.node(j);
        let (cx, cy) = ((p[0] * 32.0) as usize, ((1.0 - p[1]) * 16.0) as usize);
        grid[cy][cx] = b'o';
    }
    for j in 0..thermo.ndof() {
        let p = thermo.node(j);
        let (cx, cy) = ((p[0] * 32.0) as usize, ((1.0 - p[1]) * 16.0) as usize);
        grid[cy][cx] = b'x';
    }
    for row in grid {
        out.push_str("  ");
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn counts_match_methods() {
        let r = super::report();
        assert!(r.contains("Q1-Q0"));
        assert!(r.contains("Q3-Q2"));
        // Q2-Q1 2D: 9 scalar kinematic, 18 vector, 4 thermodynamic.
        assert!(r.contains("9"));
        assert!(r.contains("18"));
        assert!(r.contains('x'));
        assert!(r.contains('o'));
    }
}
