//! Fig. 4 — kernels 1 and 2 with the per-thread workspace in local memory
//! vs register arrays (3D Q2-Q1 on K20). The paper reports a 4x speedup on
//! kernel 2 from registers.

use blast_kernels::k1::AdjugateDetKernel;
use blast_kernels::k2::StressKernel;
use blast_kernels::{ProblemShape, Workspace};
use gpu_sim::GpuDevice;

use crate::table;
use gpu_sim::DeviceCatalog;

/// Modeled `(local_time, register_time)` pairs for kernels 1 and 2.
pub fn measure() -> [(String, f64, f64); 2] {
    let shape = ProblemShape::new(3, 2, 4096);
    let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
    let t_k1 = |ws| {
        let k = AdjugateDetKernel { workspace: ws };
        dev.model_kernel(&k.config(&shape), &k.traffic(&shape)).time_s
    };
    let t_k2 = |ws| {
        let k = StressKernel { workspace: ws, use_viscosity: true };
        dev.model_kernel(&k.config(&shape), &k.traffic(&shape)).time_s
    };
    [
        (
            "kernel 1 (CalcAjugate_det)".to_string(),
            t_k1(Workspace::LocalMemory),
            t_k1(Workspace::Registers),
        ),
        (
            "kernel 2 (loop_grad_v)".to_string(),
            t_k2(Workspace::LocalMemory),
            t_k2(Workspace::Registers),
        ),
    ]
}

/// Regenerates Fig. 4.
pub fn report() -> String {
    let rows: Vec<Vec<String>> = measure()
        .into_iter()
        .map(|(name, local, regs)| {
            vec![
                name,
                format!("{:.3} ms", local * 1e3),
                format!("{:.3} ms", regs * 1e3),
                format!("{:.1}x", local / regs),
            ]
        })
        .collect();
    let mut out = table::render(
        "Fig. 4 — workspace placement, 3D Q2-Q1 on K20",
        &["kernel", "local memory", "register arrays", "speedup"],
        &rows,
    );
    out.push_str(
        "\nPaper: \"By taking advantage of the more registers available on Kepler, \
         kernel 2 achieved a 4x speedup.\"\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn register_speedups_in_paper_band() {
        let m = super::measure();
        for (name, local, regs) in m {
            let speedup = local / regs;
            assert!(
                speedup > 1.5 && speedup < 8.0,
                "{name}: register speedup {speedup}"
            );
        }
        // Kernel 2's speedup should be the larger one (paper: 4x).
        let m = super::measure();
        let s1 = m[0].1 / m[0].2;
        let s2 = m[1].1 / m[1].2;
        assert!(s2 >= s1 * 0.8, "kernel2 {s2} vs kernel1 {s1}");
    }
}
