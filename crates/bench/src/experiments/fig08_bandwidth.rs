//! Fig. 8 — achieved memory bandwidth of the base vs optimized kernels at
//! the three levels of the hierarchy (L1/shared, L2, device memory) on K20
//! (peak device bandwidth 208 GB/s).

use blast_kernels::base::MonolithicCornerForce;
use blast_kernels::k1::AdjugateDetKernel;
use blast_kernels::k2::StressKernel;
use blast_kernels::k3::CoefGradKernel;
use blast_kernels::k4::AzKernel;
use blast_kernels::k56::BatchedDimGemm;
use blast_kernels::k7::FzKernel;
use blast_kernels::{ProblemShape, Workspace};
use gpu_sim::{GpuDevice, KernelStats};

use crate::table;
use gpu_sim::DeviceCatalog;

/// Bandwidths `(name, shared GB/s, l2 GB/s, device GB/s)` per kernel.
pub fn measure() -> Vec<(String, KernelStats)> {
    let shape = ProblemShape::new(3, 2, 4096);
    let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
    let mut rows: Vec<(String, KernelStats)> = Vec::new();

    let base = MonolithicCornerForce;
    rows.push((
        "base (loop_quadrature_point)".to_string(),
        dev.model_kernel(&base.config(&shape, 255), &base.traffic(&shape)),
    ));
    let k1 = AdjugateDetKernel { workspace: Workspace::Registers };
    rows.push(("kernel 1".to_string(), dev.model_kernel(&k1.config(&shape), &k1.traffic(&shape))));
    let k2 = StressKernel { workspace: Workspace::Registers, use_viscosity: true };
    rows.push(("kernel 2".to_string(), dev.model_kernel(&k2.config(&shape), &k2.traffic(&shape))));
    let k3 = CoefGradKernel::tuned();
    rows.push(("kernel 3".to_string(), dev.model_kernel(&k3.config(&shape), &k3.traffic(&shape))));
    let k4 = AzKernel::tuned();
    rows.push(("kernel 4".to_string(), dev.model_kernel(&k4.config(&shape), &k4.traffic(&shape))));
    for (name, k) in [("kernel 5", BatchedDimGemm::nn_tuned()), ("kernel 6", BatchedDimGemm::nt_tuned())] {
        rows.push((
            name.to_string(),
            dev.model_kernel(
                &k.config(shape.dim, shape.total_points()),
                &k.traffic(shape.dim, shape.total_points()),
            ),
        ));
    }
    let k7 = FzKernel::tuned();
    rows.push(("kernel 7".to_string(), dev.model_kernel(&k7.config(&shape), &k7.traffic(&shape))));
    rows
}

/// Regenerates Fig. 8.
pub fn report() -> String {
    let data = measure();
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|(name, s)| {
            vec![
                name.clone(),
                table::f(s.shared_bw_gbs),
                table::f(s.l2_bw_gbs),
                table::f(s.dram_bw_gbs),
            ]
        })
        .collect();
    let mut out = table::render(
        "Fig. 8 — achieved bandwidth, GB/s (3D Q2-Q1, K20; device peak 208)",
        &["kernel", "L1/shared", "L2", "device"],
        &rows,
    );
    out.push_str(
        "\nPaper: optimized kernels exceed the base implementation in L1/shared and device \
         bandwidth; on-chip bandwidth has the greater impact on performance.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn optimized_kernels_beat_base_on_shared_bandwidth() {
        let data = super::measure();
        let base_shared = data[0].1.shared_bw_gbs;
        // The base kernel stages nothing in shared memory.
        assert_eq!(base_shared, 0.0);
        let any_optimized_shared = data[1..].iter().any(|(_, s)| s.shared_bw_gbs > 100.0);
        assert!(any_optimized_shared, "no optimized kernel exploits shared memory?");
    }

    #[test]
    fn device_bandwidth_below_peak() {
        for (name, s) in super::measure() {
            assert!(
                s.dram_bw_gbs <= 208.0 + 1e-9,
                "{name}: {} GB/s exceeds the 208 GB/s peak",
                s.dram_bw_gbs
            );
        }
    }

    #[test]
    fn base_kernel_is_dram_saturated() {
        let data = super::measure();
        let base = &data[0].1;
        // Spill traffic pins the monolith at the DRAM roofline.
        assert!(base.dram_bw_gbs > 0.8 * 208.0, "{}", base.dram_bw_gbs);
    }
}
