//! Table 7 — greenup of the hybrid CPU-GPU solution over CPU-only for the
//! 3D Sedov problem: `greenup = powerup x speedup`.
//!
//! Paper: Q2-Q1 -> 0.67 / 1.9 / 1.27; Q4-Q3 -> 0.57 / 2.5 / 1.42.

use blast_core::ExecMode;
use powermon::{CpuPowerModel, CpuPowerState, EnergyReport, Greenup};

use crate::experiments::scenarios::{run_steps, sedov3d};
use crate::table;

/// Measures `(method, greenup triple)` per order, composing the powers the
/// paper's way: "The CPU+GPU power we used in Table 7 is by adding data in
/// Figure 15 and Figure 16 together" — i.e. the dual-package RAPL levels
/// plus the GPU's steady active power.
pub fn measure() -> Vec<(String, Greenup)> {
    let rapl = CpuPowerModel::e5_2670();
    let busy = rapl.read(CpuPowerState::Busy, 1.0);
    let offload = rapl.read(CpuPowerState::GpuOffload, 1.0);
    let p_cpu_node = 2.0 * (busy.pkg_watts + busy.dram_watts);

    let mut out = Vec::new();
    for (order, zones_axis) in [(2usize, 16usize), (4, 8)] {
        let steps = 2;
        // CPU-only: both packages busy (Fig. 14 levels).
        let (mut hc, mut sc) = sedov3d(order, zones_axis, ExecMode::CpuParallel { threads: 8 });
        let t_cpu = run_steps(&mut hc, &mut sc, steps);
        let cpu = EnergyReport::new(t_cpu, p_cpu_node);

        // Hybrid: 8 MPI on the shared K20, corner force accelerated.
        // Node power = Fig. 16 CPU levels + Fig. 15 GPU active power.
        let (mut hg, mut sg) = sedov3d(
            order,
            zones_axis,
            ExecMode::Gpu { base: false, gpu_pcg: false, mpi_queues: 8 },
        );
        let t_gpu = run_steps(&mut hg, &mut sg, steps);
        let p_gpu = hg
            .executor()
            .gpu
            .as_ref()
            .expect("gpu")
            .power_trace()
            .mean_active_power();
        let p_hybrid_node = 2.0 * (offload.pkg_watts + offload.dram_watts) + p_gpu;
        let hybrid = EnergyReport::new(t_gpu, p_hybrid_node);

        out.push((format!("Q{}-Q{}", order, order - 1), Greenup::compare(cpu, hybrid)));
    }
    out
}

/// Regenerates Table 7.
pub fn report() -> String {
    let data = measure();
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|(m, g)| {
            vec![
                m.clone(),
                format!("{:.2}", g.powerup),
                format!("{:.2}", g.speedup),
                format!("{:.2}", g.greenup),
                table::pct(g.energy_saving_fraction()),
            ]
        })
        .collect();
    let mut out = table::render(
        "Table 7 — CPU-GPU greenup over CPU (3D Sedov)",
        &["method", "powerup", "speedup", "greenup", "energy saved"],
        &rows,
    );
    out.push_str(
        "\nPaper: Q2-Q1 0.67/1.9/1.27 and Q4-Q3 0.57/2.5/1.42 — the hybrid draws more \
         instantaneous power (powerup < 1) but finishes enough faster to save 21-30% energy.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "hydro-scale experiment: run with --release")]
    fn greenup_shape_matches_table7() {
        let data = super::measure();
        let q2 = &data[0].1;
        let q4 = &data[1].1;
        // Powerup below 1: the hybrid node draws more power (paper: 0.67
        // and 0.57).
        assert!(q2.powerup < 1.0 && q2.powerup > 0.45, "Q2 powerup {}", q2.powerup);
        assert!(q4.powerup < 1.0 && q4.powerup > 0.40, "Q4 powerup {}", q4.powerup);
        // Q4 draws at least as much relative node power as Q2 saves...
        // Speedup above 1, larger for Q4.
        assert!(q2.speedup > 1.3, "Q2 speedup {}", q2.speedup);
        assert!(q4.speedup > q2.speedup, "orders inverted");
        // Greenup above 1 for both, larger for Q4 (the paper's headline).
        assert!(q2.greenup > 1.05, "Q2 greenup {}", q2.greenup);
        assert!(q4.greenup > q2.greenup, "Q4 {} vs Q2 {}", q4.greenup, q2.greenup);
        // Our speedups overshoot the paper's (see fig11), so greenups do
        // too; cap at a sanity bound rather than the paper's 1.42.
        assert!(q4.greenup < 4.5, "Q4 greenup {} implausibly high", q4.greenup);
    }
}
