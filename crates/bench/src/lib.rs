//! # blast-bench
//!
//! The benchmark harness: one experiment module per table/figure of the
//! paper's evaluation, each regenerating the corresponding rows/series from
//! the reproduction (workload generation, parameter sweeps, baselines).
//!
//! Run a single artifact:
//!
//! ```text
//! cargo run -p blast-bench --release --bin fig11_speedup
//! ```
//!
//! or everything at once:
//!
//! ```text
//! cargo run -p blast-bench --release --bin paper_report
//! ```
//!
//! Criterion wall-clock benchmarks of the computational cores live in
//! `benches/`; the experiment binaries report *simulated device* times from
//! the calibrated models (see `DESIGN.md` for the substitution rationale).

pub mod experiments;
pub mod table;

/// Paper-vs-measured comparison row for EXPERIMENTS.md.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Metric name.
    pub metric: String,
    /// Value reported by the paper.
    pub paper: String,
    /// Value measured from the reproduction.
    pub measured: String,
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_experiments_are_registered() {
        let names = crate::experiments::all_experiment_names();
        // 20 artifacts: Figs 1-8, 11-16 and Tables 1, 3-7 (+ Fig 2, 3).
        assert!(names.len() >= 19, "only {} experiments registered", names.len());
        assert!(names.contains(&"fig11_speedup"));
        assert!(names.contains(&"tab7_greenup"));
    }
}
