//! Minimal fixed-width table formatting for the experiment reports.

/// Renders a header + rows as a fixed-width text table.
pub fn render(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row width mismatch in table '{title}'");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let fmt_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (cell, w) in cells.iter().zip(&widths) {
            line.push_str(&format!("{cell:>w$}  ", w = w));
        }
        line.trim_end().to_string()
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * ncols));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Formats a float with 3 significant-ish decimals.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else if x.abs() >= 1.0 {
        format!("{x:.3}")
    } else if x.abs() >= 1e-3 {
        format!("{x:.5}")
    } else {
        format!("{x:.3e}")
    }
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let out = render(
            "Demo",
            &["name", "value"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        assert!(out.contains("== Demo =="));
        assert!(out.contains("longer"));
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn float_formatting_ranges() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(123.456), "123.5");
        assert_eq!(f(1.23456), "1.235");
        assert_eq!(f(0.012345), "0.01235");
        assert_eq!(f(1.2e-5), "1.200e-5");
        assert_eq!(pct(0.123), "12.3%");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        render("x", &["a", "b"], &[vec!["1".into()]]);
    }
}
