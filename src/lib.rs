//! Workspace root crate for the BLAST CPU-GPU reproduction.
//!
//! This crate only re-exports the member crates so that the workspace-level
//! `examples/` and `tests/` can use a single dependency. The actual library
//! lives in the `crates/` members; see `DESIGN.md` for the inventory.

pub use autotune;
pub use blast_core;
pub use blast_serve;
pub use blast_telemetry;
pub use blast_fem;
pub use blast_kernels;
pub use blast_la;
pub use cluster_sim;
pub use gpu_sim;
pub use powermon;
