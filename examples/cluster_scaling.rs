//! The MPI level: domain partitioning with shared-DOF groups, a real
//! (thread-backed) distributed reduction, and the Titan/Shannon scaling
//! curves of Figs. 12-13.
//!
//! ```text
//! cargo run --release --example cluster_scaling
//! ```

use blast_repro::blast_fem::{CartMesh, H1Space};
use blast_repro::cluster_sim::{run_ranks, strong_scaling, weak_scaling, Partition};

fn main() {
    // --- Partitioning (Figs. 9-10) -------------------------------------
    let mesh = CartMesh::<2>::unit(8);
    let space = H1Space::new(mesh.clone(), 2);
    let part = Partition::balanced(&mesh, 4);
    println!(
        "Partitioned an 8x8 Q2 mesh across {} ranks (grid {:?}):",
        part.num_ranks(),
        part.ranks_per_axis()
    );
    let groups = part.dof_groups(&space);
    let mut hist = [0usize; 5];
    for g in &groups {
        hist[g.len().min(4)] += 1;
    }
    println!(
        "  DOF groups: {} interior, {} face-shared (2 ranks), {} corner-shared (4 ranks)",
        hist[1], hist[2], hist[4]
    );
    for r in 0..part.num_ranks() {
        println!(
            "  rank {r}: {} zones, {} shared DOFs",
            part.zones_of_rank(r).len(),
            part.shared_dofs_of_rank(&space, r)
        );
    }

    // --- A real distributed min-dt reduction ---------------------------
    let dts = run_ranks(4, |mut comm| {
        let local_dt = 0.01 * (comm.rank() + 1) as f64;
        comm.allreduce_min(local_dt).expect("healthy group")
    });
    println!("\nDistributed min-dt reduction across 4 ranks -> {:?}", dts[0]);

    // --- Fig. 12: weak scaling on Titan ---------------------------------
    println!("\nWeak scaling on Titan (512 zones/node, 5 cycles):");
    for p in weak_scaling(4) {
        println!("  {:>5} nodes: {:>6.3} s", p.nodes, p.time_s);
    }
    println!("  (paper: 0.85 s at 8 nodes -> 1.83 s at 4096 nodes)");

    // --- Fig. 13: strong scaling on Shannon -----------------------------
    println!("\nStrong scaling on Shannon (32^3 zones, 5 cycles):");
    let pts = strong_scaling(&[1, 2, 4, 8, 16]);
    let t1 = pts[0].time_s;
    for p in &pts {
        println!(
            "  {:>2} nodes: {:>8.4} s  (speedup {:.2}x)",
            p.nodes,
            p.time_s,
            t1 / p.time_s
        );
    }
}
