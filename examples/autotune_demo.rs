//! The §3.2.1 autotuner in action: tune kernel 3's pack count and kernel
//! 7's column-block size for two different method orders, showing that the
//! best configuration depends on the order — the reason BLAST tunes at
//! runtime instead of hard-coding parameters.
//!
//! ```text
//! cargo run --release --example autotune_demo
//! ```

use blast_repro::autotune::Autotuner;
use blast_repro::blast_kernels::k3::CoefGradKernel;
use blast_repro::blast_kernels::k7::FzKernel;
use blast_repro::blast_kernels::{GemmVariant, ProblemShape};
use blast_repro::gpu_sim::{occupancy, GpuDevice};
use gpu_sim::DeviceCatalog;

fn tune_k3(dev: &GpuDevice, shape: &ProblemShape) -> (u32, Vec<(u32, f64)>) {
    let candidates: Vec<u32> = [1, 2, 4, 8, 16, 32, 64]
        .into_iter()
        .filter(|&na| {
            let k = CoefGradKernel { variant: GemmVariant::V3, zones_per_block: na };
            occupancy(dev.spec(), &k.config(shape)).fraction > 0.0
        })
        .collect();
    let mut tuner = Autotuner::new(candidates.clone(), 40);
    while !tuner.is_done() {
        let k = CoefGradKernel { variant: GemmVariant::V3, zones_per_block: *tuner.current() };
        tuner.record(dev.model_kernel(&k.config(shape), &k.traffic(shape)).time_s);
    }
    let curve = candidates
        .iter()
        .copied()
        .zip(tuner.mean_times().into_iter().map(|t| t.unwrap()))
        .collect();
    (*tuner.best().unwrap(), curve)
}

fn tune_k7(dev: &GpuDevice, shape: &ProblemShape) -> (u32, Vec<(u32, f64)>) {
    let candidates: Vec<u32> = [1, 2, 4, 8, 16, 32, 64]
        .into_iter()
        .filter(|&cb| {
            let k = FzKernel { variant: GemmVariant::V3, col_block: cb };
            occupancy(dev.spec(), &k.config(shape)).fraction > 0.0
        })
        .collect();
    let mut tuner = Autotuner::new(candidates.clone(), 40);
    while !tuner.is_done() {
        let k = FzKernel { variant: GemmVariant::V3, col_block: *tuner.current() };
        tuner.record(dev.model_kernel(&k.config(shape), &k.traffic(shape)).time_s);
    }
    let curve = candidates
        .iter()
        .copied()
        .zip(tuner.mean_times().into_iter().map(|t| t.unwrap()))
        .collect();
    (*tuner.best().unwrap(), curve)
}

fn print_curve(name: &str, best: u32, curve: &[(u32, f64)]) {
    println!("  {name}: tuned value = {best}");
    for &(c, t) in curve {
        let bar = "#".repeat((t / curve.iter().map(|&(_, t)| t).fold(f64::INFINITY, f64::min)
            * 10.0) as usize);
        println!("    {c:>3}: {:>9.4} ms  {bar}{}", t * 1e3, if c == best { "  <- best" } else { "" });
    }
}

fn main() {
    let dev = GpuDevice::new(DeviceCatalog::gpu("k20"));
    for order in [2usize, 4] {
        let zones = if order == 2 { 4096 } else { 512 };
        let shape = ProblemShape::new(3, order, zones);
        println!(
            "Q{}-Q{} ({} zones, {} points/zone, A_z {}x{}):",
            order,
            order - 1,
            zones,
            shape.npts,
            shape.nvdof(),
            shape.npts
        );
        let (b3, c3) = tune_k3(&dev, &shape);
        print_curve("kernel 3 zones/block", b3, &c3);
        let (b7, c7) = tune_k7(&dev, &shape);
        print_curve("kernel 7 column block", b7, &c7);
        println!();
    }
    println!(
        "The tuner \"adapts our CUDA kernels to the orders of the finite element \
         method\" (§3.2.1) — note the order-dependent optima."
    );
}
