//! Trace a run: export the unified telemetry of an instrumented CPU-GPU
//! Sedov run as Chrome trace-event JSON, loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `about://tracing`.
//!
//! The export carries one thread lane per telemetry track (host, gpu,
//! cluster, pool): nested `X` spans for the solver phases and GPU kernels,
//! `i` instants for degrade/recovery events, and `C` counter lanes sampling
//! the host and GPU power traces on the same simulated-time axis.
//!
//! ```text
//! cargo run --release --example trace_run [out.json]
//! ```

use std::sync::Arc;

use blast_repro::blast_core::{ExecMode, Hydro, RunConfig, Sedov};
use blast_repro::blast_telemetry::{chrome, Track};
use blast_repro::gpu_sim::GpuDevice;
use gpu_sim::DeviceCatalog;

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "trace_run.json".into());

    // An instrumented hybrid run: the builder wires one telemetry sink
    // through the executor into the host device, the GPU, and the solver.
    let problem = Sedov::default();
    let gpu = Arc::new(GpuDevice::new(DeviceCatalog::gpu("k20")));
    let mut hydro = Hydro::<2>::builder(&problem, [8, 8])
        .order(2)
        .mode(ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 })
        .gpu(gpu)
        .build()
        .expect("setup");
    let mut state = hydro.initial_state();

    let stats = hydro.run(&mut state, RunConfig::to(0.05).max_steps(40)).expect("run");
    println!("ran {} steps (+{} retries) to t = {:.4}", stats.steps, stats.retries, state.t);

    // Export spans + power lanes from the same simulated clock.
    let exec = hydro.executor();
    let tel = exec.telemetry().clone();
    let host_power = exec.host.power_trace();
    let gpu_power = exec.gpu.as_ref().expect("gpu").power_trace();
    let json = chrome::chrome_trace_with_power(
        &tel,
        &[(Track::Host, &host_power), (Track::Gpu, &gpu_power)],
    );

    // The exporter's own validator — the same check CI's trace-smoke lane
    // runs — before anything is written.
    let summary = chrome::validate_chrome_trace(&json).expect("structurally valid trace");
    println!(
        "trace: {} spans, {} instants, {} power samples, ends at {:.4} s (simulated)",
        summary.spans, summary.instants, summary.counter_samples, summary.max_end_s
    );

    std::fs::write(&out_path, &json).expect("write trace");
    println!("wrote {out_path} — open it at https://ui.perfetto.dev");
}
