//! Table 6-style validation: run the 2D triple-point problem with Q3-Q2
//! elements on both the CPU and the simulated GPU and check that (a) each
//! platform conserves total energy to machine precision and (b) the two
//! platforms agree.
//!
//! ```text
//! cargo run --release --example triple_point_validation
//! ```

use std::sync::Arc;

use blast_repro::blast_core::{ExecMode, Executor, Hydro, HydroConfig, TriplePoint};
use blast_repro::gpu_sim::{CpuSpec, GpuDevice};
use gpu_sim::DeviceCatalog;

fn run(mode: ExecMode, label: &str) -> (f64, f64, f64, f64) {
    let gpu = matches!(mode, ExecMode::Gpu { .. })
        .then(|| Arc::new(GpuDevice::new(DeviceCatalog::gpu("k20"))));
    let exec = Executor::new(mode, CpuSpec::e5_2670(), gpu);
    let problem = TriplePoint::default();
    let config = HydroConfig { order: 3, ..Default::default() };
    let mut hydro = Hydro::<2>::builder(&problem, [14, 6]).config(config).executor(exec).build().expect("setup");
    let mut state = hydro.initial_state();
    let e0 = hydro.energies(&state);

    // March a fixed number of steps (a full t = 0.6 run works too; this
    // keeps the example quick).
    let mut dt = hydro.suggest_dt(&state);
    for _ in 0..30 {
        let out = hydro.step(&mut state, dt);
        dt = out.dt_est.min(1.02 * dt);
    }
    let e1 = hydro.energies(&state);
    println!(
        "{label:<6} t={:.4}  kinetic {:.13e}  internal {:.13e}  total {:.12e}  change {:+.3e}",
        state.t,
        e1.kinetic,
        e1.internal,
        e1.total(),
        e1.total() - e0.total()
    );
    (state.t, e1.kinetic, e1.internal, e1.total())
}

fn main() {
    println!("2D triple point, Q3-Q2 (Table 6 validation)\n");
    let cpu = run(ExecMode::CpuSerial, "CPU");
    let gpu = run(
        ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 },
        "GPU",
    );
    let rel = (cpu.3 - gpu.3).abs() / cpu.3;
    println!("\nCPU/GPU total-energy agreement: {rel:.3e} (relative)");
    assert!(rel < 1e-10, "platforms disagree");
    println!("Both platforms conserve the total energy to machine precision, as in Table 6.");
}
