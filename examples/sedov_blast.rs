//! The paper's headline experiment end-to-end: the 3D Sedov blast on a
//! single E5-2670 + K20 node, CPU-only vs CPU-GPU, with the speedup /
//! powerup / greenup triple of Table 7.
//!
//! Node powers are composed the paper's way ("by adding data in Figure 15
//! and Figure 16 together"): dual-package RAPL levels plus the GPU's
//! active power.
//!
//! ```text
//! cargo run --release --example sedov_blast
//! ```

use std::sync::Arc;

use blast_repro::blast_core::{ExecMode, Executor, Hydro, HydroConfig, HydroState, Sedov};
use blast_repro::gpu_sim::{CpuSpec, GpuDevice};
use blast_repro::powermon::{CpuPowerModel, CpuPowerState, EnergyReport, Greenup};
use gpu_sim::DeviceCatalog;

fn run(order: usize, zones: usize, mode: ExecMode, label: &str) -> (f64, f64) {
    let gpu = matches!(mode, ExecMode::Gpu { .. })
        .then(|| Arc::new(GpuDevice::new(DeviceCatalog::gpu("k20"))));
    let exec = Executor::new(mode, CpuSpec::e5_2670(), gpu);
    let problem = Sedov::default();
    let config = HydroConfig { order, ..Default::default() };
    let mut hydro =
        Hydro::<3>::builder(&problem, [zones; 3]).config(config).executor(exec).build().expect("fits on the K20");
    let mut state: HydroState = hydro.initial_state();

    let mut dt = hydro.suggest_dt(&state);
    for _ in 0..3 {
        let out = hydro.step(&mut state, dt);
        dt = out.dt_est.min(1.02 * dt);
    }
    let wall = hydro.wall_time();

    // Node power, composed as in the paper's Table 7.
    let rapl = CpuPowerModel::e5_2670();
    let power = match hydro.executor().gpu.as_ref() {
        None => {
            let busy = rapl.read(CpuPowerState::Busy, 1.0);
            2.0 * (busy.pkg_watts + busy.dram_watts)
        }
        Some(g) => {
            let off = rapl.read(CpuPowerState::GpuOffload, 1.0);
            2.0 * (off.pkg_watts + off.dram_watts) + g.power_trace().mean_active_power()
        }
    };
    println!(
        "  {label:<22} wall {:>8.4} s   node power {:>6.1} W   energy {:>8.1} J",
        wall,
        power,
        power * wall
    );
    (wall, power)
}

fn main() {
    println!("3D Sedov blast, 3 RK2-average steps per configuration\n");
    for (order, zones) in [(2usize, 16usize), (4, 8)] {
        println!("Q{}-Q{} ({}^3 zones):", order, order - 1, zones);
        let (t_cpu, p_cpu) =
            run(order, zones, ExecMode::CpuParallel { threads: 8 }, "CPU only (8 threads)");
        let (t_gpu, p_gpu) = run(
            order,
            zones,
            ExecMode::Gpu { base: false, gpu_pcg: false, mpi_queues: 8 },
            "CPU-GPU (8 MPI + K20)",
        );
        let g = Greenup::compare(
            EnergyReport::new(t_cpu, p_cpu),
            EnergyReport::new(t_gpu, p_gpu),
        );
        println!(
            "  => speedup {:.2}x  powerup {:.2}  greenup {:.2}  (energy saved {:.0}%)\n",
            g.speedup,
            g.powerup,
            g.greenup,
            100.0 * g.energy_saving_fraction()
        );
    }
    println!("Paper (Table 7): Q2-Q1 -> 0.67 / 1.9 / 1.27; Q4-Q3 -> 0.57 / 2.5 / 1.42");
}
