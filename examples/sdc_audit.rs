//! Silent-data-corruption audit walkthrough: the physics-invariant
//! auditor (`AuditConfig`) against seeded bit flips (`SdcPlan`).
//!
//! Three runs of the same 8x8 Q2-Q1 Sedov blast:
//!
//! 1. a *transient* flip in a committed host state array at the default
//!    audit cadence (1): caught before the next commit, healed by the
//!    in-place snapshot redo — final state bit-identical to fault-free;
//! 2. the same flip audited on a cadence of 4: the corruption is
//!    *committed* for up to 3 steps before detection, so healing must
//!    roll back to the newest **audited-clean** checkpoint and replay;
//! 3. a *persistent* flip that re-fires on every replay: the redo and
//!    rollback budgets drain and the run fails with a typed
//!    `CorruptionDetected` carrying the replay coordinates (seed, step,
//!    audit, measured vs tolerance) — never a silently wrong answer.
//!
//! Run with: `cargo run --release --example sdc_audit`

use blast_repro::blast_core::{
    AuditConfig, CheckpointPolicy, CheckpointStore, ExecMode, Executor, Hydro, HydroError,
    HydroState, RunConfig, Sedov,
};
use blast_repro::gpu_sim::{derive_fault, CpuSpec, SdcPlan, SdcSite, FAULT_SEED_ENV};
use blast_repro::powermon::ResilienceReport;

const STEPS: usize = 24;
const FLIP_AT: u64 = 10;

fn run(plan: SdcPlan, audit: AuditConfig) -> (Result<(), HydroError>, HydroState, ResilienceReport) {
    let host = CpuSpec::e5_2670();
    let exec = Executor::new(ExecMode::cpu_parallel_measured(&host), host, None);
    let mut hydro = Hydro::<2>::builder(&Sedov::default(), [8, 8])
        .order(2)
        .executor(exec)
        .sdc_plan(plan)
        .audit(audit)
        .build()
        .expect("setup");
    let mut state = hydro.initial_state();
    let mut store = CheckpointStore::in_memory();
    let result = hydro
        .run(
            &mut state,
            RunConfig::to(1.0)
                .max_steps(STEPS)
                .checkpointed(CheckpointPolicy::EverySteps(2), &mut store),
        )
        .map(|_| ());
    let report = hydro.executor().resilience_report(0);
    (result, state, report)
}

fn bit_identical(a: &HydroState, b: &HydroState) -> bool {
    a.v == b.v && a.e == b.e && a.x == b.x
}

fn main() {
    let seed = 42u64;
    println!("SDC audit walkthrough, fault seed {seed} (override with {FAULT_SEED_ENV})\n");

    let (ok, clean, base_rep) = run(SdcPlan::seeded(seed), AuditConfig::default());
    ok.expect("fault-free baseline");
    println!(
        "baseline: {} audits, overhead {:.3} s / {:.2} J — no detections\n",
        base_rep.audits_run, base_rep.audit_s, base_rep.audit_energy_j
    );

    // 1. Transient flip, cadence 1: caught pre-commit, snapshot redo.
    let mut plan = SdcPlan::seeded(seed);
    plan.arm(derive_fault(seed, SdcSite::HostState, FLIP_AT, 3, false));
    let (ok, state, rep) = run(plan, AuditConfig::default());
    ok.expect("transient flip heals");
    println!(
        "transient flip, cadence 1: {} flip(s) landed, {} detected, {} rollback(s); \
         bit-identical to fault-free: {}",
        rep.sdc_flips_injected,
        rep.corruptions_detected,
        rep.restores,
        bit_identical(&state, &clean)
    );

    // 2. Same flip, cadence 4: committed before detection -> checkpoint
    //    rollback. Checkpoints are only written from audited-clean states,
    //    so the restored generation is guaranteed uncorrupted.
    let mut plan = SdcPlan::seeded(seed);
    plan.arm(derive_fault(seed, SdcSite::HostState, FLIP_AT + 1, 7, false));
    let (ok, state, rep) = run(plan, AuditConfig::default().every_steps(4));
    ok.expect("late-detected flip heals via rollback");
    println!(
        "late detect, cadence 4: {} detected, {} checkpoint rollback(s); \
         bit-identical to fault-free: {}",
        rep.corruptions_detected,
        rep.restores,
        bit_identical(&state, &clean)
    );

    // 3. Persistent flip: recovery budgets drain, the failure is typed.
    let mut plan = SdcPlan::seeded(seed);
    plan.arm(derive_fault(seed, SdcSite::DeviceBuffer, FLIP_AT, 11, true));
    let (err, _, rep) = run(plan, AuditConfig::default());
    let err = err.expect_err("a persistent flip must fail typed");
    println!(
        "persistent flip: {} detections, {} rollback(s), then a typed error:",
        rep.corruptions_detected, rep.restores
    );
    println!("  {err}");
    println!("  replay with {FAULT_SEED_ENV}={seed}");
}
