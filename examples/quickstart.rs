//! Quickstart: run a small 2D Sedov blast on the CPU and watch the energy
//! bookkeeping.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use blast_repro::blast_core::{ExecMode, Hydro, RunConfig, Sedov};

fn main() {
    // 1. Pick a problem and a discretization: Q2-Q1 on a 12x12 mesh.
    let problem = Sedov::default();
    let mut hydro = Hydro::<2>::builder(&problem, [12, 12])
        .order(2)
        .mode(ExecMode::CpuParallel { threads: 8 })
        .build()
        .expect("setup");
    let mut state = hydro.initial_state();

    // 2. Initial diagnostics.
    let e0 = hydro.energies(&state);
    println!("Sedov 2D, Q2-Q1, {} zones", hydro.shape().zones);
    println!(
        "t = 0      kinetic {:>12.6e}  internal {:>12.6e}  total {:>14.10e}",
        e0.kinetic,
        e0.internal,
        e0.total()
    );

    // 3. March to t = 0.3 with adaptive CFL timestepping.
    let stats = hydro.run(&mut state, RunConfig::to(0.3).max_steps(2000)).unwrap();
    let e1 = hydro.energies(&state);
    println!(
        "t = {:.3}  kinetic {:>12.6e}  internal {:>12.6e}  total {:>14.10e}",
        state.t,
        e1.kinetic,
        e1.internal,
        e1.total()
    );
    println!(
        "steps: {} (+{} retries)   total-energy change: {:+.3e} (relative)",
        stats.steps,
        stats.retries,
        e1.relative_change(&e0)
    );

    // 4. Where did the (simulated) time go? The corner force dominates —
    //    the paper's motivation for the GPU port.
    println!("\nCPU phase profile (simulated):");
    let prof = hydro.phase_profile();
    let total: f64 = prof.iter().map(|(_, t, _)| t).sum();
    for (name, t, calls) in prof {
        println!(
            "  {name:<16} {:>9.3} ms  {:>5.1}%  ({calls} calls)",
            t * 1e3,
            100.0 * t / total
        );
    }
}
