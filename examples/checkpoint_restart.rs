//! Checkpoint/restart demo: the Sedov run writes coordinated, checksummed
//! checkpoints to disk, "dies" halfway (every in-memory object is dropped),
//! and a brand-new solver restarts from the newest valid generation —
//! finishing bit-identically to an uninterrupted run while the energy table
//! bills every checkpoint write and the restore to the power traces.
//!
//! Run with: `cargo run --release --example checkpoint_restart`

use std::sync::Arc;

use blast_repro::blast_core::{CheckpointPolicy, CheckpointStore, ExecMode, Executor, Hydro, RunConfig, Sedov};
use blast_repro::gpu_sim::{CpuSpec, FaultKind, FaultPlan, GpuDevice, FAULT_SEED_ENV};
use gpu_sim::DeviceCatalog;

const T_FINAL: f64 = 0.1;
const ZONES: usize = 8;

fn fresh_hydro(plan: FaultPlan) -> Hydro<2> {
    let dev = Arc::new(GpuDevice::new(DeviceCatalog::gpu("k20")));
    dev.set_fault_plan(plan);
    let exec = Executor::new(
        ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 },
        CpuSpec::e5_2670(),
        Some(dev),
    );
    let problem = Sedov::default();
    Hydro::<2>::builder(&problem, [ZONES, ZONES]).executor(exec).build().expect("setup")
}

fn plan() -> FaultPlan {
    // A light transient fault rate keeps the retry machinery visibly busy;
    // the seed is overridable from the environment.
    FaultPlan::seeded_from_env(42).with_rate(FaultKind::LaunchFail, 0.005)
}

fn energy_of(hydro: &Hydro<2>) -> f64 {
    let exec = hydro.executor();
    let mut e = exec.host.energy_joules();
    if let Some(gpu) = exec.gpu.as_ref() {
        e += gpu.energy_joules();
    }
    e
}

fn main() {
    println!("BLAST Sedov {ZONES}x{ZONES} (Q2-Q1) checkpoint/restart, t_final = {T_FINAL}");
    println!("fault seed: {} (override with {FAULT_SEED_ENV})\n", plan().seed);

    let dir = std::env::temp_dir().join(format!("blast-ckpt-{}", std::process::id()));

    // Uninterrupted reference for the bit-identity cross-check.
    let mut h_ref = fresh_hydro(plan());
    let mut s_ref = h_ref.initial_state();
    let mut ref_store = CheckpointStore::in_memory();
    let stats_ref = h_ref
        .run(
            &mut s_ref,
            RunConfig::to(T_FINAL)
                .max_steps(500)
                .checkpointed(CheckpointPolicy::EverySteps(4), &mut ref_store),
        )
        .expect("reference run");

    // First life: run roughly half the steps, checkpointing to disk.
    let mut h1 = fresh_hydro(plan());
    let mut s1 = h1.initial_state();
    let mut store = CheckpointStore::on_disk(&dir).expect("checkpoint dir");
    let half = stats_ref.steps / 2;
    h1.run(&mut s1, RunConfig::to(T_FINAL).max_steps(half).checkpointed(CheckpointPolicy::EverySteps(4), &mut store))
        .expect("first half");
    let e_first = energy_of(&h1);
    println!("== first life");
    println!(
        "   stopped after {half} of {} steps at t = {:.4}; {} checkpoint generation(s) on disk",
        stats_ref.steps,
        s1.t,
        store.generations()
    );

    // The process dies: solver, state, and store all dropped. Only the
    // on-disk generations survive.
    drop((h1, s1, store));

    // Second life: a new process re-opens the directory and resumes from
    // the newest valid generation (corrupt ones would be skipped by CRC).
    let mut h2 = fresh_hydro(plan());
    let mut s2 = h2.initial_state();
    let mut store = CheckpointStore::on_disk(&dir).expect("reopen checkpoint dir");
    let stats2 = h2
        .run(&mut s2, RunConfig::to(T_FINAL).max_steps(500).checkpointed(CheckpointPolicy::EverySteps(4), &mut store))
        .expect("restarted run");
    let report = h2.executor().resilience_report(stats2.retries);
    let e_second = energy_of(&h2);
    println!("== second life (restarted from disk)");
    println!(
        "   resumed and finished at t = {:.4} after {} total steps (+{} redone)",
        s2.t, stats2.steps, stats2.retries
    );
    for line in report.summary().lines() {
        println!("   {line}");
    }

    println!("\n== cross-checks");
    println!(
        "   restarted physics identical to uninterrupted run : {}",
        s2.v == s_ref.v && s2.e == s_ref.e && s2.x == s_ref.x && s2.t == s_ref.t
    );
    println!("   restores billed                                  : {}", report.restores);

    let e_total = e_first + e_second;
    let overhead = report.overhead_pct(e_total);
    println!("\n== energy table");
    println!("   first life            : {e_first:>9.1} J");
    println!("   second life           : {e_second:>9.1} J");
    println!("   total                 : {e_total:>9.1} J");
    println!("   resilience (ckpt+rst) : {:>9.3} J  ({overhead:.3}% overhead)",
        report.total_resilience_energy_j());

    std::fs::remove_dir_all(&dir).ok();
}
