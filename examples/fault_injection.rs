//! Fault-injection demo: the same Sedov run executed three times on the
//! simulated K20 —
//!
//! 1. fault-free (the baseline),
//! 2. under seeded *transient* faults that the retry policy absorbs,
//! 3. with a *persistent* kernel fault that forces graceful degradation
//!    onto the CPU path mid-run,
//! 4. with a seeded *silent* bit flip in a device result buffer — no
//!    fault signal at all — caught by the physics-invariant auditor and
//!    rolled back, with the detection/recovery overhead billed,
//!
//! each followed by its resilience report: faults injected, retries,
//! recovery rate, backoff time billed as idle-power energy, and whether
//! the run degraded. The physics of runs 2 and 4 is bit-identical to
//! run 1, and run 3 is bit-identical to a pure-CPU run.
//!
//! Run with: `cargo run --release --example fault_injection`

use std::sync::Arc;

use blast_repro::blast_core::{
    AuditConfig, CheckpointPolicy, CheckpointStore, ExecMode, Executor, Hydro, HydroState,
    RunConfig, Sedov,
};
use blast_repro::gpu_sim::{
    derive_fault, CpuSpec, DeviceCatalog, FaultKind, FaultPlan, GpuDevice, SdcPlan, SdcSite,
    FAULT_SEED_ENV,
};

const T_FINAL: f64 = 0.1;

fn run(label: &str, plan: FaultPlan) -> (HydroState, f64, f64, String) {
    let dev = Arc::new(GpuDevice::new(DeviceCatalog::gpu("k20")));
    dev.set_fault_plan(plan);
    let exec = Executor::new(
        ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 },
        CpuSpec::e5_2670(),
        Some(dev.clone()),
    );
    let problem = Sedov::default();
    let mut hydro =
        Hydro::<2>::builder(&problem, [8, 8]).executor(exec).build().expect("setup");
    let mut state = hydro.initial_state();
    let stats = hydro
        .run(&mut state, RunConfig::to(T_FINAL).max_steps(500))
        .expect("every fault here is recoverable");
    let report = hydro.executor().resilience_report(stats.retries);
    let wall = hydro.wall_time();
    let energy = dev.energy_joules() + hydro.executor().host.energy_joules();
    println!("== {label}");
    println!(
        "   steps {} (+{} redone)  t = {:.3}  wall {:.3} s  energy {:.1} J",
        stats.steps, stats.retries, state.t, wall, energy
    );
    for line in report.summary().lines() {
        println!("   {line}");
    }
    println!();
    (state, wall, energy, report.summary())
}

/// Run 4: a silent single-bit flip (no fault signal) in a device result
/// buffer, caught by the physics-invariant step audit and healed by
/// rollback. Returns the final state plus the billed audit overhead.
fn run_sdc(seed: u64) -> (HydroState, f64, f64) {
    let dev = Arc::new(GpuDevice::new(DeviceCatalog::gpu("k20")));
    let exec = Executor::new(
        ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 },
        CpuSpec::e5_2670(),
        Some(dev.clone()),
    );
    let mut plan = SdcPlan::seeded(seed);
    plan.arm(derive_fault(seed, SdcSite::DeviceBuffer, 10, 0, false));
    let problem = Sedov::default();
    let mut hydro = Hydro::<2>::builder(&problem, [8, 8])
        .executor(exec)
        .sdc_plan(plan)
        .audit(AuditConfig::default())
        .build()
        .expect("setup");
    let mut state = hydro.initial_state();
    let mut store = CheckpointStore::in_memory();
    let stats = hydro
        .run(
            &mut state,
            RunConfig::to(T_FINAL)
                .max_steps(500)
                .checkpointed(CheckpointPolicy::EverySteps(4), &mut store),
        )
        .expect("a transient flip is detected and healed");
    let report = hydro.executor().resilience_report(stats.retries);
    let energy = dev.energy_joules() + hydro.executor().host.energy_joules();
    println!("== silent bit flip in a device buffer -> audit catch + rollback");
    println!(
        "   steps {} (+{} redone)  flips injected {}  corruptions detected {}",
        stats.steps, stats.retries, report.sdc_flips_injected, report.corruptions_detected
    );
    println!(
        "   audits run {}  billed audit overhead: {:.3} s, {:.2} J ({:.2}% of run energy)",
        report.audits_run,
        report.audit_s,
        report.audit_energy_j,
        100.0 * report.audit_energy_j / energy.max(f64::MIN_POSITIVE),
    );
    println!();
    (state, report.audit_energy_j, energy)
}

fn main() {
    println!("BLAST Sedov 8x8 (Q2-Q1) on the simulated K20, t_final = {T_FINAL}\n");

    let (s_clean, w_clean, e_clean, _) = run("baseline: no faults", FaultPlan::none());

    let transient = FaultPlan::seeded_from_env(42)
        .with_rate(FaultKind::LaunchFail, 0.01)
        .with_rate(FaultKind::D2hFail, 0.005);
    println!("fault seed: {} (override with {FAULT_SEED_ENV})\n", transient.seed);
    let (s_transient, w_t, e_t, _) = run("transient faults (1%/launch, 0.5%/transfer)", transient);

    let persistent =
        FaultPlan::seeded_from_env(42).with_persistent(FaultKind::EccError, 0);
    let (s_degraded, w_d, e_d, _) = run("persistent ECC fault -> CPU fallback", persistent);

    let (s_sdc, _, _) = run_sdc(42);

    // A pure-CPU reference for the bit-identity claims.
    let cpu = Executor::new(ExecMode::CpuSerial, CpuSpec::e5_2670(), None);
    let problem = Sedov::default();
    let mut h_cpu = Hydro::<2>::builder(&problem, [8, 8]).executor(cpu).build().expect("setup");
    let mut s_cpu = h_cpu.initial_state();
    h_cpu.run(&mut s_cpu, RunConfig::to(T_FINAL).max_steps(500)).expect("cpu run");

    println!("== cross-checks");
    println!(
        "   transient-fault physics identical to baseline : {}",
        s_transient.v == s_clean.v && s_transient.e == s_clean.e && s_transient.x == s_clean.x
    );
    println!(
        "   degraded-run physics identical to pure CPU    : {}",
        s_degraded.v == s_cpu.v && s_degraded.e == s_cpu.e && s_degraded.x == s_cpu.x
    );
    println!(
        "   SDC-healed physics identical to baseline      : {}",
        s_sdc.v == s_clean.v && s_sdc.e == s_clean.e && s_sdc.x == s_clean.x
    );
    println!(
        "   recovery overhead: transient +{:.2}% time, +{:.2}% energy; degraded {:.1}x time, {:.1}x energy",
        100.0 * (w_t / w_clean - 1.0),
        100.0 * (e_t / e_clean - 1.0),
        w_d / w_clean,
        e_d / e_clean,
    );
}
