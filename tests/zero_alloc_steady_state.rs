//! The allocation-free hot-path contract: once the solver's scratch
//! buffers have grown to the problem's high-water size, steady-state
//! timesteps perform **zero heap allocations**. Asserted with a counting
//! global allocator around a measurement window of CPU-serial Sedov steps
//! after a warm-up phase.
//!
//! The contract covers the whole step: the corner-force `A_z` pipeline
//! (kernels 1-6), `F_z`, the momentum RHS scatter, the constrained PCG
//! momentum solve, the energy solve, the RK2 stage vectors, and the
//! `try_advance` rollback snapshot — **with the unified telemetry layer
//! recording**: STEP spans, per-phase child spans, and the step counters
//! all land in the preallocated ring during the measured window. Telemetry
//! (phase events, span ring, and the power trace) is pre-grown via
//! `reserve_host_telemetry`; its amortized `Vec` pushes are the one
//! deliberately-reserved piece.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use blast_repro::blast_core::{AssemblyMode, AuditConfig, ExecMode, Executor, Hydro, Sedov};
use blast_repro::blast_la::{abft, AbftMode};
use blast_repro::blast_telemetry::{names, Track};
use blast_repro::gpu_sim::CpuSpec;

/// System allocator wrapper that counts every allocation call.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn heap_ops() -> u64 {
    ALLOCS.load(Ordering::Relaxed) + REALLOCS.load(Ordering::Relaxed)
}

fn steady_state_contract(mode: AssemblyMode) {
    // Serial execution: the parallel pool spawns scoped threads (stack +
    // TLS allocations) per call, which is the multithreaded path's own
    // cost model, not the solver hot path under test here.
    rayon::set_active_threads(1);
    // The contract must hold with the full SDC defense on: ABFT-checksummed
    // GEMMs and the per-step physics-invariant audit (its scratch grows
    // once at install/warm-up like every other pool).
    abft::set_mode(AbftMode::Verify);
    let exec = Executor::new(ExecMode::CpuSerial, CpuSpec::e5_2670(), None);
    let problem = Sedov::default();
    let mut hydro = Hydro::<2>::builder(&problem, [6, 6])
        .executor(exec)
        .audit(AuditConfig::default())
        .assembly(mode)
        .build()
        .expect("problem fits");
    let mut state = hydro.initial_state();
    let mut dt = hydro.suggest_dt(&state);

    // Warm-up: grows every scratch pool (pipeline intermediates, F_z /
    // accel / de pools, PCG vectors, RK2 stage vectors, the rollback
    // snapshot) to the high-water size. Two steps, because `suggest_dt`'s
    // force evaluation leaves some pools unreturned and the first full
    // step refills them.
    for _ in 0..3 {
        let adv = hydro.try_advance(&mut state, dt).expect("warm-up step");
        dt = adv.dt_next;
    }

    const MEASURED_STEPS: usize = 5;
    hydro.reserve_host_telemetry(MEASURED_STEPS + 1);
    let tel = hydro.executor().telemetry().clone();
    let steps_before = tel.counter(names::counters::STEPS);
    let spans_before = tel.spans().len();

    let before = heap_ops();
    for _ in 0..MEASURED_STEPS {
        let adv = hydro.try_advance(&mut state, dt).expect("steady-state step");
        dt = adv.dt_next;
    }
    let delta = heap_ops() - before;
    rayon::set_active_threads(0);
    assert_eq!(
        delta, 0,
        "steady-state timesteps in {mode} mode performed {delta} heap \
         allocation(s); the corner-force hot path (with telemetry \
         recording) must be allocation-free"
    );

    // The zero-alloc window was not silent: the telemetry sink recorded it.
    let steps_after = tel.counter(names::counters::STEPS);
    assert_eq!(
        steps_after - steps_before,
        MEASURED_STEPS as u64,
        "the steps counter must advance inside the measured window"
    );
    let spans = tel.spans();
    assert!(
        spans.len() >= spans_before + MEASURED_STEPS,
        "STEP spans must land in the preallocated ring: {} -> {}",
        spans_before,
        spans.len()
    );
    let step_spans = spans
        .iter()
        .filter(|s| s.track == Track::Host && s.name == names::phases::STEP)
        .count();
    assert!(step_spans >= MEASURED_STEPS, "expected >= {MEASURED_STEPS} STEP spans");
    assert_eq!(tel.dropped_spans(), 0, "the reserved ring must not overflow");
}

#[test]
fn steady_state_steps_do_not_touch_the_heap() {
    steady_state_contract(AssemblyMode::Stored);
}

/// The same contract for the matrix-free path: sum-factorized force /
/// momentum / energy kernels, the SpMV-free PCG, and the matrix-free
/// audit mass applies all run out of grow-once pools.
#[test]
fn matrix_free_steady_state_steps_do_not_touch_the_heap() {
    steady_state_contract(AssemblyMode::MatrixFree);
}
