//! Acceptance gates for the heterogeneous-fleet routing layer: the
//! greenup-driven router's decisions are bit-deterministic across host
//! pool sizes and supervisor seeds, and a routed job's *physics* is
//! bitwise independent of which catalog device the router picked — the
//! device models change only the simulated time/energy axis, never the
//! math, so routing can reshuffle placement freely without perturbing
//! results.

use blast_repro::blast_core::fleet;
use blast_repro::blast_serve::{
    JobOutcome, JobSpec, Placement, Router, Scenario, ServeConfig, Supervisor, WorkerSpec,
};
use blast_repro::gpu_sim::DeviceCatalog;

const FLEET: [&str; 3] = ["cpu-e5-2670", "k20", "ampere"];

fn fleet_workers() -> Vec<WorkerSpec> {
    FLEET.iter().map(|id| WorkerSpec::from_device(&DeviceCatalog::get(id))).collect()
}

fn mixed_jobs() -> Vec<JobSpec> {
    vec![
        JobSpec {
            tenant: "acme".to_string(),
            scenario: Scenario::Sedov,
            zones: [4, 4],
            t_final: 0.008,
            max_steps: 8,
            deadline_s: Some(30.0),
            checkpoint_every: 0,
            ..JobSpec::default()
        },
        JobSpec {
            tenant: "globex".to_string(),
            scenario: Scenario::TaylorGreen,
            zones: [8, 8],
            t_final: 0.01,
            max_steps: 8,
            arrival_s: 1e-4,
            deadline_s: Some(30.0),
            checkpoint_every: 0,
            ..JobSpec::default()
        },
        JobSpec {
            tenant: "initech".to_string(),
            scenario: Scenario::TriplePoint,
            zones: [10, 10],
            order: 3,
            t_final: 0.012,
            max_steps: 8,
            arrival_s: 2e-4,
            deadline_s: Some(30.0),
            checkpoint_every: 0,
            ..JobSpec::default()
        },
    ]
}

/// One routed run: returns the placements the router made (device id +
/// rendered mode) and the final ledger digest.
fn routed_run(seed: u64) -> (Vec<(String, String)>, u64) {
    let mut router = Router::new(DeviceCatalog::standard_subset(&FLEET));
    let mut sup =
        Supervisor::new(ServeConfig { seed, ..ServeConfig::default() }, fleet_workers());
    let mut placements = Vec::new();
    for spec in mixed_jobs() {
        let (_, d) = sup.submit_routed(&mut router, spec).expect("fleet admits job");
        placements
            .push((d.placement.device_id.clone(), format!("{:?}", d.placement.mode)));
    }
    let report = sup.run_to_completion();
    assert!(report.all_terminal());
    assert_eq!(
        report.count(|o| matches!(o, JobOutcome::Completed { .. })),
        3,
        "routed jobs must all complete:\n{}",
        report.summary()
    );
    (placements, report.ledger_digest())
}

/// Routing decisions and the resulting ledger must be reproducible
/// bit-for-bit across `BLAST_THREADS`-style pool sizes, and the
/// *placements* must not depend on the supervisor's chaos seed either
/// (the seed feeds retry jitter, not the router).
#[test]
fn routing_is_deterministic_across_thread_counts_and_seeds() {
    rayon::set_active_threads(1);
    let (p1, d1) = routed_run(42);
    rayon::set_active_threads(8);
    let (p8, d8) = routed_run(42);
    rayon::set_active_threads(0);
    assert_eq!(p1, p8, "placements drifted with the pool size");
    assert_eq!(d1, d8, "ledger digest drifted with the pool size");

    let (p_seed, _) = routed_run(7);
    assert_eq!(p1, p_seed, "placements drifted with the supervisor seed");
}

/// The same job, pinned in turn to every fleet device under the mode the
/// router would derive there, must complete with a bitwise-identical
/// final state: the catalog entries differ in cost and power models
/// only. (This is what makes energy-aware routing *free* — no
/// physics-regression risk in moving a tenant between devices.)
#[test]
fn routed_results_are_bitwise_identical_regardless_of_device() {
    let job = JobSpec {
        tenant: "probe".to_string(),
        scenario: Scenario::TriplePoint,
        zones: [6, 6],
        t_final: 0.01,
        max_steps: 8,
        checkpoint_every: 0,
        ..JobSpec::default()
    };
    let mut finals = Vec::new();
    for id in FLEET {
        let dev = DeviceCatalog::get(id);
        let mut sup =
            Supervisor::new(ServeConfig::default(), vec![WorkerSpec::from_device(&dev)]);
        let pinned = JobSpec {
            placement: Some(Placement {
                device_id: id.to_string(),
                mode: fleet::derive_mode(&dev),
            }),
            ..job.clone()
        };
        sup.submit(pinned).expect("admits");
        let report = sup.run_to_completion();
        assert!(
            matches!(report.jobs[0].outcome, Some(JobOutcome::Completed { .. })),
            "{id}: {}",
            report.summary()
        );
        finals.push((id, report.jobs[0].final_state.clone().expect("final state")));
    }
    let (rid, reference) = &finals[0];
    for (id, s) in &finals[1..] {
        let same = reference.v.iter().zip(&s.v).all(|(a, b)| a.to_bits() == b.to_bits())
            && reference.e.iter().zip(&s.e).all(|(a, b)| a.to_bits() == b.to_bits())
            && reference.x.iter().zip(&s.x).all(|(a, b)| a.to_bits() == b.to_bits())
            && reference.t.to_bits() == s.t.to_bits();
        assert!(same, "final state on {id} differs bitwise from {rid}");
    }
}

/// The router's own mode candidates (both momentum-solve placements on a
/// GPU) are also physics-neutral: `gpu_pcg` moves a solve across the
/// PCIe boundary of the cost model, not across different math.
#[test]
fn gpu_pcg_placement_is_physics_neutral() {
    use blast_repro::blast_core::ExecMode;
    let dev = DeviceCatalog::get("k20");
    let mut finals = Vec::new();
    for gpu_pcg in [true, false] {
        let mut sup =
            Supervisor::new(ServeConfig::default(), vec![WorkerSpec::from_device(&dev)]);
        let pinned = JobSpec {
            tenant: "probe".to_string(),
            scenario: Scenario::Sedov,
            zones: [6, 6],
            t_final: 0.01,
            max_steps: 8,
            checkpoint_every: 0,
            placement: Some(Placement {
                device_id: "k20".to_string(),
                mode: ExecMode::Gpu { base: false, gpu_pcg, mpi_queues: 1 },
            }),
            ..JobSpec::default()
        };
        sup.submit(pinned).expect("admits");
        let report = sup.run_to_completion();
        finals.push(report.jobs[0].final_state.clone().expect("completed"));
    }
    let (a, b) = (&finals[0], &finals[1]);
    assert!(a.v.iter().zip(&b.v).all(|(x, y)| x.to_bits() == y.to_bits()));
    assert!(a.e.iter().zip(&b.e).all(|(x, y)| x.to_bits() == y.to_bits()));
    assert!(a.x.iter().zip(&b.x).all(|(x, y)| x.to_bits() == y.to_bits()));
}
