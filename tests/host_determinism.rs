//! The parallelism admissibility contract: running the solver on 1 pool
//! thread and on 8 must produce *bitwise identical* physics. Asserted at
//! the strongest level available — the serialized checkpoint images of
//! the two runs must be byte-for-byte equal, so any drift anywhere in
//! `(v, e, x, t)` or the adaptive dt fails the test.

use blast_repro::blast_core::{
    Checkpoint, CheckpointStore, ExecMode, Executor, Hydro, Sedov,
};
use blast_repro::gpu_sim::CpuSpec;

/// Runs a short 2D Sedov on `threads` pool threads and returns the
/// serialized checkpoint image of the final state.
fn sedov_checkpoint_image(threads: usize) -> Vec<u8> {
    rayon::set_active_threads(threads);
    let exec = Executor::new(
        ExecMode::CpuParallel { threads: threads as u32 },
        CpuSpec::e5_2670(),
        None,
    );
    let problem = Sedov::default();
    let mut hydro = Hydro::<2>::builder(&problem, [8, 8]).executor(exec).build()
        .expect("problem fits");
    let mut state = hydro.initial_state();
    let mut dt = hydro.suggest_dt(&state);
    let steps = 5u64;
    for _ in 0..steps {
        let out = hydro.step(&mut state, dt);
        dt = out.dt_est.min(1.02 * dt);
    }
    rayon::set_active_threads(0);
    let ck = Checkpoint { state, accel_prev: Vec::new(), dt, steps, retries: 0 };
    let mut store = CheckpointStore::in_memory();
    store.write(&ck).expect("in-memory write cannot fail");
    ck.to_bytes()
}

#[test]
fn one_thread_and_eight_thread_checkpoints_are_byte_identical() {
    let reference = sedov_checkpoint_image(1);
    assert!(!reference.is_empty());
    for threads in [2usize, 4, 8] {
        let image = sedov_checkpoint_image(threads);
        assert_eq!(
            reference, image,
            "checkpoint image at {threads} threads diverged from the 1-thread run"
        );
    }
}
