//! Cross-crate integration tests: the full stack from FEM setup through
//! kernels, devices, and power accounting.

use std::sync::Arc;

use blast_repro::blast_core::{EnergyBreakdown, ExecMode, Executor, Hydro, RunConfig, Sedov, TriplePoint};
use blast_repro::gpu_sim::{CpuSpec, GpuDevice};
use blast_repro::powermon::{EnergyReport, Greenup};
use gpu_sim::DeviceCatalog;

fn cpu_exec() -> Executor {
    Executor::new(ExecMode::CpuParallel { threads: 8 }, CpuSpec::e5_2670(), None)
}

fn gpu_exec(mpi: u32) -> Executor {
    Executor::new(
        ExecMode::Gpu { base: false, gpu_pcg: false, mpi_queues: mpi },
        CpuSpec::e5_2670(),
        Some(Arc::new(GpuDevice::new(DeviceCatalog::gpu("k20")))),
    )
}

#[test]
#[cfg_attr(debug_assertions, ignore = "hydro-scale experiment: run with --release")]
fn full_sedov_run_to_completion_conserves_energy() {
    let problem = Sedov { t_final: 0.3, ..Default::default() };
    let mut hydro =
        Hydro::<2>::builder(&problem, [8, 8]).executor(cpu_exec()).build().unwrap();
    let mut state = hydro.initial_state();
    let e0 = hydro.energies(&state);
    let stats = hydro.run(&mut state, RunConfig::to(0.3).max_steps(2000)).unwrap();
    assert!((state.t - 0.3).abs() < 1e-12, "stopped at t = {}", state.t);
    assert!(stats.steps > 10);
    let e1 = hydro.energies(&state);
    assert!(
        e1.relative_change(&e0).abs() < 1e-9,
        "energy drift {} over {} steps",
        e1.relative_change(&e0),
        stats.steps
    );
    // A real blast: a meaningful fraction of the energy is now kinetic.
    assert!(e1.kinetic > 0.01 * e1.total());
}

#[test]
#[cfg_attr(debug_assertions, ignore = "hydro-scale experiment: run with --release")]
fn cpu_and_gpu_agree_on_a_long_run() {
    let problem = Sedov::default();
    let steps = 10;
    let mut h_cpu =
        Hydro::<2>::builder(&problem, [6, 6]).executor(cpu_exec()).build().unwrap();
    let mut h_gpu =
        Hydro::<2>::builder(&problem, [6, 6]).executor(gpu_exec(1)).build().unwrap();
    let mut s_cpu = h_cpu.initial_state();
    let mut s_gpu = h_gpu.initial_state();
    let dt = h_cpu.suggest_dt(&s_cpu).min(h_gpu.suggest_dt(&s_gpu));
    for _ in 0..steps {
        h_cpu.step(&mut s_cpu, dt);
        h_gpu.step(&mut s_gpu, dt);
    }
    assert!(blast_repro::blast_la::max_rel_diff(&s_cpu.e, &s_gpu.e) < 1e-8);
    assert!(blast_repro::blast_la::max_rel_diff(&s_cpu.x, &s_gpu.x) < 1e-10);
}

#[test]
fn device_traces_align_for_energy_accounting() {
    // After a GPU-mode run, host and device simulated clocks must agree
    // (the host waits on the device), so node energy = host + device.
    let problem = Sedov::default();
    let mut hydro =
        Hydro::<2>::builder(&problem, [8, 8]).executor(gpu_exec(1)).build().unwrap();
    let mut state = hydro.initial_state();
    let dt = hydro.suggest_dt(&state);
    for _ in 0..3 {
        hydro.step(&mut state, dt);
    }
    let host_t = hydro.executor().host.now();
    let dev_t = hydro.executor().gpu.as_ref().unwrap().now();
    assert!(
        (host_t - dev_t).abs() < 1e-9 * host_t.max(1.0),
        "clock skew: host {host_t} vs device {dev_t}"
    );
    // Energy is positive on both sides.
    assert!(hydro.executor().host.energy_joules() > 0.0);
    assert!(hydro.executor().gpu.as_ref().unwrap().energy_joules() > 0.0);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "hydro-scale experiment: run with --release")]
fn greenup_pipeline_end_to_end() {
    let problem = Sedov::default();
    let steps = 2;

    let mut hc = Hydro::<3>::builder(&problem, [8, 8, 8]).executor(cpu_exec()).build().unwrap();
    let mut sc = hc.initial_state();
    let mut dt = hc.suggest_dt(&sc);
    for _ in 0..steps {
        let o = hc.step(&mut sc, dt);
        dt = o.dt_est.min(1.02 * dt);
    }
    let t_cpu = hc.wall_time();
    let e_cpu = 2.0 * hc.executor().host.energy_joules();

    let mut hg = Hydro::<3>::builder(&problem, [8, 8, 8]).executor(gpu_exec(8)).build().unwrap();
    let mut sg = hg.initial_state();
    let mut dt = hg.suggest_dt(&sg);
    for _ in 0..steps {
        let o = hg.step(&mut sg, dt);
        dt = o.dt_est.min(1.02 * dt);
    }
    let t_gpu = hg.wall_time();
    let e_gpu =
        2.0 * hg.executor().host.energy_joules() + hg.executor().gpu.as_ref().unwrap().energy_joules();

    let g = Greenup::compare(
        EnergyReport::new(t_cpu, e_cpu / t_cpu),
        EnergyReport::new(t_gpu, e_gpu / t_gpu),
    );
    assert!(g.speedup > 1.0, "no speedup: {}", g.speedup);
    assert!(g.greenup > 1.0, "not green: {}", g.greenup);
    // States agree too (same physics on both paths).
    assert!(blast_repro::blast_la::max_rel_diff(&sc.e, &sg.e) < 1e-7);
}

#[test]
fn triple_point_multimaterial_pressure_equilibrium() {
    // The initial triple-point state is in pressure (dis)equilibrium only
    // across the left interface: without motion there would be no energy
    // exchange between the two right-side materials (p = 0.1 both sides).
    let problem = TriplePoint::default();
    let hydro =
        Hydro::<2>::builder(&problem, [14, 6]).executor(cpu_exec()).build().unwrap();
    let state = hydro.initial_state();
    let e: EnergyBreakdown = hydro.energies(&state);
    assert_eq!(e.kinetic, 0.0);
    // IE = sum over regions of rho * e * area: left 2*3/(0.5) = ... > 0;
    // exact: left: rho=1,p=1,g=1.5 -> e=2, area 3 -> 6;
    // bottom right: rho=1,p=.1,g=1.4 -> e=.25, area 9 -> 2.25;
    // top right: rho=.125,p=.1,g=1.5 -> e=1.6, area 9 -> 1.8. Total 10.05.
    assert!((e.internal - 10.05).abs() < 1e-9, "IE {}", e.internal);
}

#[test]
fn hyperq_sharing_changes_power_not_results() {
    let problem = Sedov::default();
    let run = |mpi: u32| {
        let mut h =
            Hydro::<2>::builder(&problem, [8, 8]).executor(gpu_exec(mpi)).build().unwrap();
        let mut s = h.initial_state();
        let dt = 1e-4;
        for _ in 0..2 {
            h.step(&mut s, dt);
        }
        let p = h.executor().gpu.as_ref().unwrap().power_trace().mean_active_power();
        (s, p)
    };
    let (s1, p1) = run(1);
    let (s8, p8) = run(8);
    assert_eq!(s1.e, s8.e, "queue count must not change the physics");
    assert!(p8 > p1, "8-queue power {p8} should exceed 1-queue {p1}");
}
