//! The matrix-free operator contract, at the acceptance level:
//!
//! 1. **Cross-path**: the sum-factorized operators evaluate the *same*
//!    bilinear forms as the stored `A_z`/`F_z`/CSR path, so a matrix-free
//!    run tracks a stored run to tight floating-point tolerance (the two
//!    paths associate the arithmetic differently, so bitwise equality is
//!    impossible by design — see DESIGN.md §16).
//! 2. **Within-path**: a matrix-free run is *bitwise deterministic* at any
//!    thread count (zone-private staging + serial zone-order scatter),
//!    asserted on serialized checkpoint images like `host_determinism.rs`.
//! 3. **Resilience**: a persistent device fault degrades a matrix-free GPU
//!    run to the CPU path with bit-identical physics.
//! 4. **The memory ceiling**: on a device whose capacity sits between the
//!    two footprints, the stored build fails with the *typed* OOM error
//!    (both byte counts in hand) while the matrix-free build — picked
//!    automatically by `assembly_auto` — runs to completion.

use std::sync::Arc;

use blast_repro::blast_core::{
    AssemblyMode, Checkpoint, ExecMode, Executor, Hydro, HydroError, HydroState, RunConfig, Sedov,
};
use blast_repro::gpu_sim::{CpuSpec, FaultKind, FaultPlan, GpuDevice};
use gpu_sim::DeviceCatalog;

fn cpu_serial() -> Executor {
    Executor::new(ExecMode::CpuSerial, CpuSpec::e5_2670(), None)
}

/// Short CPU-serial Sedov run at the given order/mesh in one assembly mode.
fn run_2d(order: usize, zones: [usize; 2], mode: AssemblyMode, steps: usize) -> (HydroState, f64) {
    let problem = Sedov::default();
    let mut hydro = Hydro::<2>::builder(&problem, zones)
        .order(order)
        .executor(cpu_serial())
        .assembly(mode)
        .build()
        .expect("problem fits on the host");
    assert_eq!(hydro.assembly_mode(), mode);
    let mut state = hydro.initial_state();
    let mut dt = hydro.suggest_dt(&state);
    for _ in 0..steps {
        let out = hydro.step(&mut state, dt);
        dt = out.dt_est.min(1.02 * dt);
    }
    (state, dt)
}

fn run_3d(order: usize, zones: [usize; 3], mode: AssemblyMode, steps: usize) -> (HydroState, f64) {
    let problem = Sedov::default();
    let mut hydro = Hydro::<3>::builder(&problem, zones)
        .order(order)
        .executor(cpu_serial())
        .assembly(mode)
        .build()
        .expect("problem fits on the host");
    let mut state = hydro.initial_state();
    let mut dt = hydro.suggest_dt(&state);
    for _ in 0..steps {
        let out = hydro.step(&mut state, dt);
        dt = out.dt_est.min(1.02 * dt);
    }
    (state, dt)
}

/// Cross-path tolerance: the only rounding differences are reassociation
/// inside the operator applies and the (identically-preconditioned,
/// identically-warm-started) PCG iterates they feed, so a handful of steps
/// stays within ~1e-9 relative.
const CROSS_PATH_RTOL: f64 = 1e-8;

fn assert_close(what: &str, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    let d = blast_repro::blast_la::max_rel_diff(a, b);
    assert!(d <= CROSS_PATH_RTOL, "{what}: stored vs matrix-free rel diff {d:e}");
}

#[test]
fn stored_and_matrix_free_agree_q2_to_q4_2d() {
    for (order, zones) in [(2usize, [6usize, 6]), (3, [4, 4]), (4, [3, 3])] {
        let (s, dt_s) = run_2d(order, zones, AssemblyMode::Stored, 3);
        let (m, dt_m) = run_2d(order, zones, AssemblyMode::MatrixFree, 3);
        assert_close(&format!("Q{order} v"), &s.v, &m.v);
        assert_close(&format!("Q{order} e"), &s.e, &m.e);
        assert_close(&format!("Q{order} x"), &s.x, &m.x);
        let ddt = (dt_s - dt_m).abs() / dt_s;
        assert!(ddt <= CROSS_PATH_RTOL, "Q{order} dt rel diff {ddt:e}");
    }
}

#[test]
fn stored_and_matrix_free_agree_in_3d() {
    for (order, zones) in [(2usize, [3usize, 3, 3]), (3, [2, 2, 2])] {
        let (s, _) = run_3d(order, zones, AssemblyMode::Stored, 2);
        let (m, _) = run_3d(order, zones, AssemblyMode::MatrixFree, 2);
        assert_close(&format!("3D Q{order} v"), &s.v, &m.v);
        assert_close(&format!("3D Q{order} e"), &s.e, &m.e);
        assert_close(&format!("3D Q{order} x"), &s.x, &m.x);
    }
}

/// Within-path determinism: the matrix-free path must honor the same
/// bitwise thread-count contract as the stored path (`host_determinism.rs`),
/// including the SpMV-free PCG.
#[test]
fn matrix_free_checkpoints_are_byte_identical_across_threads() {
    fn image(threads: usize) -> Vec<u8> {
        rayon::set_active_threads(threads);
        let exec = Executor::new(
            ExecMode::CpuParallel { threads: threads as u32 },
            CpuSpec::e5_2670(),
            None,
        );
        let problem = Sedov::default();
        let mut hydro = Hydro::<2>::builder(&problem, [6, 6])
            .order(3)
            .executor(exec)
            .assembly(AssemblyMode::MatrixFree)
            .build()
            .expect("problem fits");
        let mut state = hydro.initial_state();
        let mut dt = hydro.suggest_dt(&state);
        let steps = 4u64;
        for _ in 0..steps {
            let out = hydro.step(&mut state, dt);
            dt = out.dt_est.min(1.02 * dt);
        }
        rayon::set_active_threads(0);
        Checkpoint { state, accel_prev: Vec::new(), dt, steps, retries: 0 }.to_bytes()
    }
    let reference = image(1);
    assert!(!reference.is_empty());
    for threads in [2usize, 4, 8] {
        assert_eq!(
            reference,
            image(threads),
            "matrix-free checkpoint at {threads} threads diverged from 1 thread"
        );
    }
}

/// Chaos leg: a persistent launch fault on a matrix-free GPU run degrades
/// to the matrix-free CPU path bit-identically (the host-math PCG is shared
/// between the two legs, so no step ever has device-only rounding).
#[test]
fn matrix_free_gpu_degrades_to_cpu_bit_identically() {
    fn sedov_run(exec: Executor) -> (Hydro<2>, HydroState) {
        let problem = Sedov::default();
        let mut hydro = Hydro::<2>::builder(&problem, [4, 4])
            .order(3)
            .executor(exec)
            .assembly(AssemblyMode::MatrixFree)
            .build()
            .unwrap();
        let mut state = hydro.initial_state();
        hydro.run(&mut state, RunConfig::to(0.05).max_steps(60)).unwrap();
        (hydro, state)
    }
    let dev = Arc::new(GpuDevice::new(DeviceCatalog::gpu("k20")));
    dev.set_fault_plan(FaultPlan::seeded(7).with_persistent(FaultKind::LaunchFail, 0));
    let gpu_exec = Executor::new(
        ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 },
        CpuSpec::e5_2670(),
        Some(dev),
    );
    let (h_gpu, s_gpu) = sedov_run(gpu_exec);
    let (_h_cpu, s_cpu) = sedov_run(cpu_serial());
    assert!(h_gpu.executor().is_degraded(), "persistent fault must degrade the run");
    assert_eq!(s_gpu.v, s_cpu.v, "velocity differs from pure-CPU matrix-free run");
    assert_eq!(s_gpu.e, s_cpu.e, "energy differs from pure-CPU matrix-free run");
    assert_eq!(s_gpu.x, s_cpu.x, "mesh differs from pure-CPU matrix-free run");
    assert_eq!(s_gpu.t, s_cpu.t);
}

/// A fault-free matrix-free GPU run (device-billed kernels, host-math PCG)
/// produces the same physics as the matrix-free CPU run.
#[test]
fn matrix_free_gpu_matches_cpu() {
    let dev = Arc::new(GpuDevice::new(DeviceCatalog::gpu("k20")));
    let exec = Executor::new(
        ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 },
        CpuSpec::e5_2670(),
        Some(dev),
    );
    let problem = Sedov::default();
    let mut hydro = Hydro::<2>::builder(&problem, [4, 4])
        .order(3)
        .executor(exec)
        .assembly(AssemblyMode::MatrixFree)
        .build()
        .unwrap();
    let mut state = hydro.initial_state();
    let mut dt = hydro.suggest_dt(&state);
    for _ in 0..3 {
        let out = hydro.step(&mut state, dt);
        dt = out.dt_est.min(1.02 * dt);
    }

    let (s_cpu, _) = run_2d(3, [4, 4], AssemblyMode::MatrixFree, 3);
    assert_eq!(state.v, s_cpu.v, "GPU leg diverged from CPU matrix-free leg");
    assert_eq!(state.e, s_cpu.e);
    assert_eq!(state.x, s_cpu.x);
}

/// The memory-ceiling acceptance property, scaled to test size: on a
/// device whose DRAM sits *between* the stored and matrix-free footprints,
/// the stored build fails with the typed OOM (both byte counts populated
/// and consistent with the builder's pre-build estimate) while
/// `assembly_auto` picks matrix-free and the run proceeds.
#[test]
fn ceiling_straddle_stored_ooms_matrix_free_runs() {
    let problem = Sedov::default();
    let req = Hydro::<3>::builder(&problem, [3, 3, 3]).order(4).required_bytes();
    assert!(
        req.stored > 2 * req.matrix_free,
        "Q4-3D stored footprint ({}) should dwarf matrix-free ({})",
        req.stored,
        req.matrix_free
    );
    // Capacity strictly between the two footprints.
    let cap = req.matrix_free + (req.stored - req.matrix_free) / 2;
    let gpu_exec = || {
        let mut spec = DeviceCatalog::gpu("k20");
        spec.dram_capacity = cap;
        Executor::new(
            ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 },
            CpuSpec::e5_2670(),
            Some(Arc::new(GpuDevice::new(spec))),
        )
    };

    // Stored: typed OOM, before any assembly work.
    let err = match Hydro::<3>::builder(&problem, [3, 3, 3])
        .order(4)
        .executor(gpu_exec())
        .assembly(AssemblyMode::Stored)
        .build()
    {
        Err(e) => e,
        Ok(_) => panic!("stored Q4 must not fit the straddle device"),
    };
    match err {
        HydroError::OutOfMemory { required, available } => {
            assert_eq!(required, req.stored, "typed OOM must carry the stored footprint");
            assert_eq!(available, cap);
        }
        other => panic!("expected OutOfMemory, got: {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("out of device memory"), "message: {msg}");
    assert!(msg.contains("MatrixFree"), "message should point at the fix: {msg}");

    // Auto: the footprint override forces matrix-free, and the run works.
    let mut hydro = Hydro::<3>::builder(&problem, [3, 3, 3])
        .order(4)
        .executor(gpu_exec())
        .assembly_auto()
        .build()
        .expect("matrix-free Q4 fits the straddle device");
    assert_eq!(hydro.assembly_mode(), AssemblyMode::MatrixFree);
    let mut state = hydro.initial_state();
    let dt = hydro.suggest_dt(&state);
    let out = hydro.step(&mut state, dt);
    assert!(out.dt_est.is_finite() && out.dt_est > 0.0);
    assert!(state.t > 0.0);
}
