//! Acceptance tests for the unified observability layer: the Chrome
//! trace-event export round-trips through the in-crate JSON parser with its
//! structural contract intact, every span lies inside the power-trace
//! extent of its lane (one simulated-time axis), and the per-phase span
//! totals reconcile with the solver's `phase_profile()` to 1e-9 s.

use std::sync::Arc;

use blast_repro::blast_core::{ExecMode, Hydro, RunConfig, Sedov};
use blast_repro::blast_telemetry::{chrome, names, EventKind, Track};
use blast_repro::gpu_sim::GpuDevice;
use gpu_sim::DeviceCatalog;

fn instrumented_run(mode: ExecMode, gpu: bool) -> Hydro<2> {
    let problem = Sedov::default();
    let mut b = Hydro::<2>::builder(&problem, [6, 6]).mode(mode);
    if gpu {
        b = b.gpu(Arc::new(GpuDevice::new(DeviceCatalog::gpu("k20"))));
    }
    let mut hydro = b.build().expect("setup");
    let mut state = hydro.initial_state();
    let stats = hydro.run(&mut state, RunConfig::to(0.03).max_steps(10)).expect("run");
    assert!(stats.steps >= 3, "need a few steps: {}", stats.steps);
    hydro
}

#[test]
fn chrome_export_round_trips_with_nesting_intact() {
    let hydro = instrumented_run(
        ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 },
        true,
    );
    let exec = hydro.executor();
    let tel = exec.telemetry().clone();
    let host_power = exec.host.power_trace();
    let gpu_power = exec.gpu.as_ref().expect("gpu").power_trace();

    let json = chrome::chrome_trace_with_power(
        &tel,
        &[(Track::Host, &host_power), (Track::Gpu, &gpu_power)],
    );
    // Round trip: the validator re-parses the JSON and enforces the
    // structural contract (finite non-negative timestamps, non-negative
    // durations, parent/child containment per lane).
    let summary = chrome::validate_chrome_trace(&json).expect("valid chrome trace");
    assert!(summary.spans > 0, "export must carry spans");
    assert!(summary.counter_samples > 0, "power lanes must be sampled");

    // The nesting in the export matches the recorder's parent/child order:
    // every child follows its parent in emission order and sits one level
    // deeper, inside the parent's interval.
    let spans = tel.spans();
    let eps = 1e-12;
    let mut nested = 0;
    for s in spans.iter().filter(|s| s.kind == EventKind::Span) {
        if let Some(pid) = s.parent {
            let parent = spans
                .iter()
                .find(|p| p.id == pid)
                .unwrap_or_else(|| panic!("span {} has unknown parent {pid}", s.name));
            assert!(pid < s.id, "parent must be emitted before child");
            assert_eq!(parent.track, s.track, "nesting never crosses lanes");
            assert_eq!(parent.depth + 1, s.depth, "child sits one level deeper");
            assert!(
                s.start_s + eps >= parent.start_s
                    && s.start_s + s.dur_s <= parent.start_s + parent.dur_s + eps,
                "child {} [{}, {}] escapes parent {} [{}, {}]",
                s.name,
                s.start_s,
                s.start_s + s.dur_s,
                parent.name,
                parent.start_s,
                parent.start_s + parent.dur_s
            );
            nested += 1;
        }
    }
    assert!(nested > 0, "the solver must emit nested phase spans");
}

#[test]
fn every_span_lies_inside_the_power_trace_extent() {
    let hydro = instrumented_run(
        ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 },
        true,
    );
    let exec = hydro.executor();
    let tel = exec.telemetry().clone();
    let host_end = exec.host.power_trace().end_time();
    let gpu_end = exec.gpu.as_ref().expect("gpu").power_trace().end_time();

    let spans = tel.spans();
    assert!(!spans.is_empty());
    let eps = 1e-9;
    for s in &spans {
        assert!(s.start_s >= -eps, "span {} starts before t = 0: {}", s.name, s.start_s);
        let end = s.start_s + s.dur_s;
        match s.track {
            Track::Host => assert!(
                end <= host_end + eps,
                "host span {} ends at {end} past the power trace ({host_end})",
                s.name
            ),
            Track::Gpu => assert!(
                end <= gpu_end + eps,
                "gpu span {} ends at {end} past the power trace ({gpu_end})",
                s.name
            ),
            // Cluster/pool lanes ride the host clock.
            _ => assert!(end <= host_end + eps, "span {} past host extent", s.name),
        }
    }
}

#[test]
fn phase_totals_reconcile_with_the_solver_profile() {
    let hydro = instrumented_run(ExecMode::CpuSerial, false);
    let tel = hydro.executor().telemetry().clone();
    let totals = tel.phase_totals(Some(Track::Host));

    // Every profiled phase appears in the telemetry totals with the same
    // accumulated seconds (to 1e-9) and the same call count.
    let profile = hydro.phase_profile();
    assert!(!profile.is_empty());
    for (name, seconds, calls) in profile {
        let tot = totals
            .iter()
            .find(|t| t.name == name)
            .unwrap_or_else(|| panic!("phase {name} missing from telemetry totals"));
        assert!(
            (tot.seconds - seconds).abs() < 1e-9,
            "phase {name}: telemetry {} vs profile {seconds}",
            tot.seconds
        );
        assert_eq!(tot.calls, calls as u64, "phase {name} call count");
    }

    // And the step counter matches the STEP spans actually recorded.
    let steps = tel.counter(names::counters::STEPS);
    assert!(steps >= 3);
}
