//! Silent-data-corruption defense, end to end: a seeded bit flip in any
//! modeled site is either detected and healed **bit-identically** (the
//! final state matches the fault-free run exactly) or surfaces as a typed
//! `HydroError::CorruptionDetected` with the replay coordinates in its
//! message — never a silently wrong answer. The detection/recovery work is
//! billed into the `ResilienceReport`, and the serve layer's SDC chaos
//! band upholds the same contract across a multi-tenant job mix.

use std::sync::Mutex;

use blast_repro::blast_core::{
    AuditConfig, CheckpointPolicy, CheckpointStore, ExecMode, Executor, Hydro, HydroError,
    HydroState, RunConfig, Sedov, ENERGY_RECONCILE_TOL, MAX_STEP_REDOS,
};
use blast_repro::blast_la::{abft, AbftMode};
use blast_repro::blast_serve::{JobOutcome, JobSpec, Scenario, ServeConfig, Supervisor, WorkerSpec};
use blast_repro::gpu_sim::{derive_fault, CpuSpec, SdcPlan, SdcSite};
use blast_repro::powermon::ResilienceReport;

/// Serializes tests that touch the process-global ABFT mode.
static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Same geometry and flip schedule as the `sdc_campaign` gate: [8,8]
/// order-2 Sedov, 24 accepted steps, flips landing mid-run.
const ZONES: [usize; 2] = [8, 8];
const STEPS: usize = 24;
const FLIP_AT: u64 = 10;
const SEED: u64 = 42;

/// FNV-1a over the bit patterns of the final state `(v, e, x, t)`.
fn state_digest(s: &HydroState) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in s.v.iter().chain(&s.e).chain(&s.x).chain(std::iter::once(&s.t)) {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

struct RunResult {
    state: HydroState,
    result: Result<(), HydroError>,
    report: ResilienceReport,
    store: CheckpointStore,
}

/// One checkpointed, audited, step-bound Sedov run with the given plan.
fn run_scenario(plan: SdcPlan, audit: AuditConfig) -> RunResult {
    let host = CpuSpec::e5_2670();
    let exec = Executor::new(ExecMode::cpu_parallel_measured(&host), host, None);
    let mut hydro = Hydro::<2>::builder(&Sedov::default(), ZONES)
        .order(2)
        .executor(exec)
        .sdc_plan(plan)
        .audit(audit)
        .build()
        .expect("scenario must build");
    hydro.reserve_host_telemetry(STEPS + 2 * MAX_STEP_REDOS);
    let mut state = hydro.initial_state();
    let mut store = CheckpointStore::in_memory();
    let result = hydro
        .run(
            &mut state,
            RunConfig::to(1.0)
                .max_steps(STEPS)
                .checkpointed(CheckpointPolicy::EverySteps(2), &mut store),
        )
        .map(|_| ());
    let report = hydro.executor().resilience_report(0);
    RunResult { state, result, report, store }
}

/// A transient flip in a committed host state array is caught by the
/// physics-invariant audit, healed to a final state **bit-identical** to
/// the fault-free run, and the detection/recovery work is billed.
#[test]
fn transient_host_flip_is_healed_bit_identically_and_billed() {
    let baseline = run_scenario(SdcPlan::seeded(SEED), AuditConfig::default());
    baseline.result.as_ref().expect("fault-free baseline completes");
    assert_eq!(baseline.report.corruptions_detected, 0, "baseline must not trip the auditor");
    assert!(baseline.report.audits_run > 0, "auditing must actually run");

    let mut plan = SdcPlan::seeded(SEED);
    plan.arm(derive_fault(SEED, SdcSite::HostState, FLIP_AT, 3, false));
    let flipped = run_scenario(plan, AuditConfig::default());

    flipped.result.as_ref().expect("transient flip must be healed, not fatal");
    assert_eq!(
        state_digest(&flipped.state),
        state_digest(&baseline.state),
        "healed run must be bit-identical to the fault-free baseline"
    );
    assert!(flipped.report.sdc_flips_injected >= 1, "the planned flip must land");
    assert!(flipped.report.corruptions_detected >= 1, "the flip must be detected");
    assert!(flipped.report.audit_s > 0.0, "audit time must be billed");
    assert!(flipped.report.audit_energy_j > 0.0, "audit energy must be billed");
}

/// Device-side sites (result buffer, device→host transfer) are covered by
/// the same audit net: each transient flip heals bit-identically.
#[test]
fn device_and_transfer_flips_are_healed_bit_identically() {
    let baseline = run_scenario(SdcPlan::seeded(SEED), AuditConfig::default());
    let baseline_digest = state_digest(&baseline.state);
    for (ordinal, site) in [(1, SdcSite::DeviceBuffer), (2, SdcSite::TransferPayload)] {
        let mut plan = SdcPlan::seeded(SEED);
        plan.arm(derive_fault(SEED, site, FLIP_AT, ordinal, false));
        let r = run_scenario(plan, AuditConfig::default());
        r.result.as_ref().unwrap_or_else(|e| panic!("{site:?} flip must heal: {e}"));
        assert_eq!(state_digest(&r.state), baseline_digest, "{site:?} digest diverged");
        assert!(r.report.corruptions_detected >= 1, "{site:?} flip escaped detection");
    }
}

/// A flip inside a GEMM panel is caught *pre-commit* by the ABFT column
/// checksums (`AbftMode::Verify`) and healed bit-identically.
#[test]
fn abft_catches_gemm_panel_flip_end_to_end() {
    let _guard = MODE_LOCK.lock().unwrap();
    abft::set_mode(AbftMode::Verify);
    let baseline = run_scenario(SdcPlan::seeded(SEED), AuditConfig::default());
    let mut plan = SdcPlan::seeded(SEED);
    plan.arm(derive_fault(SEED, SdcSite::GemmPanel, FLIP_AT, 0, false));
    let r = run_scenario(plan, AuditConfig::default());
    abft::set_mode(AbftMode::Off);

    r.result.as_ref().expect("ABFT-caught flip must be healed");
    assert_eq!(state_digest(&r.state), state_digest(&baseline.state));
    assert!(r.report.sdc_flips_injected >= 1, "the armed panel flip must land");
    assert!(r.report.corruptions_detected >= 1, "the checksums must catch it");
}

/// At audit cadence 4 a flip is *committed* before detection, so recovery
/// must roll back to the newest trusted checkpoint — and still converge to
/// the bit-identical answer.
#[test]
fn late_detection_recovers_through_checkpoint_rollback() {
    let baseline = run_scenario(SdcPlan::seeded(SEED), AuditConfig::default());
    let mut plan = SdcPlan::seeded(SEED);
    plan.arm(derive_fault(SEED, SdcSite::HostState, FLIP_AT + 1, 7, false));
    let r = run_scenario(plan, AuditConfig::default().every_steps(4));

    r.result.as_ref().expect("late-detected flip must still heal");
    assert_eq!(state_digest(&r.state), state_digest(&baseline.state));
    assert!(r.report.restores >= 1, "recovery must take the checkpoint rollback path");
}

/// A persistent flip re-fires on every replay: the redo and rollback
/// budgets drain and the run fails with a **typed** error whose message
/// carries the replay coordinates (step, audit, measured vs tolerance) —
/// the checkpoint store stays intact with the last clean state.
#[test]
fn persistent_flip_fails_typed_with_replayable_coordinates() {
    let mut plan = SdcPlan::seeded(SEED);
    plan.arm(derive_fault(SEED, SdcSite::DeviceBuffer, FLIP_AT, 11, true));
    let r = run_scenario(plan, AuditConfig::default());

    let err = r.result.expect_err("a persistent flip must exhaust recovery");
    match err {
        HydroError::CorruptionDetected { step, audit, measured, tolerance } => {
            assert!(step >= FLIP_AT, "detection at attempt {step} predates the flip");
            assert!(!audit.is_empty());
            assert!(measured.is_nan() || measured.abs() > tolerance);
            let msg = err.to_string();
            assert!(msg.contains("silent data corruption"), "message: {msg}");
            assert!(msg.contains(&format!("step {step}")), "message: {msg}");
            assert!(msg.contains(audit), "message: {msg}");
        }
        other => panic!("expected CorruptionDetected, got {other}"),
    }
    assert!(
        r.store.latest_valid().is_some(),
        "the checkpoint store must survive a lethal corruption burst"
    );
    assert!(r.report.corruptions_detected >= 1);
}

/// The serve layer's SDC chaos band: every quantum rolls a corruption
/// burst, yet every job reaches a terminal state, billing reconciles with
/// the worker power traces, and the whole timeline replays to the same
/// ledger digest from the seed — no silent wrong answers, no limbo.
#[test]
fn serve_sdc_chaos_band_upholds_the_contract() {
    fn run_once(seed: u64) -> blast_repro::blast_serve::ServeReport {
        let cfg = ServeConfig { seed, sdc_rate: 0.35, ..ServeConfig::default() };
        let mut sup = Supervisor::new(cfg, vec![WorkerSpec::cpu(), WorkerSpec::cpu()]);
        for i in 0..6u64 {
            sup.submit(JobSpec {
                tenant: ["acme", "globex"][(i % 2) as usize].to_string(),
                scenario: Scenario::Sedov,
                zones: [6, 6],
                order: 2,
                t_final: 0.04,
                max_steps: 20,
                priority: 0,
                arrival_s: i as f64 * 1e-4,
                deadline_s: None,
                checkpoint_every: 3,
                energy_est_j: 1.0,
                fault_immune: false,
                placement: None,
            })
            .expect("submission admitted");
        }
        sup.run_to_completion()
    }

    let report = run_once(SEED);
    assert!(report.all_terminal(), "every job must reach a terminal state");
    assert!(
        report.reconciliation_error() <= ENERGY_RECONCILE_TOL,
        "billing must reconcile with the traces: {:.3e}",
        report.reconciliation_error()
    );
    assert!(
        report.count(|o| matches!(o, JobOutcome::Completed { .. })) >= 1,
        "the mix must not be wiped out by the chaos band"
    );
    assert!(
        report.resilience.sdc_flips_injected >= 1,
        "the chaos band must actually inject flips at sdc_rate 0.35"
    );
    assert!(
        report.resilience.corruptions_detected >= 1,
        "injected flips must be detected by the per-attempt auditor"
    );
    // Determinism: the whole chaotic timeline replays from the seed.
    assert_eq!(
        report.ledger_digest(),
        run_once(SEED).ledger_digest(),
        "serve SDC chaos must be replayable from the seed"
    );
}
