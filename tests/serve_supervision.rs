//! Acceptance gates for the `blast-serve` job supervisor (this PR's
//! tentpole): under an injected fault storm every submitted job reaches a
//! terminal state; a preempted-then-resumed job's final state is
//! bit-identical to an uninterrupted run; per-tenant energy totals
//! reconcile with the worker power traces to 1e-9; deadline-violating
//! jobs are cancelled with their partial energy still billed; and a
//! lethal redo burst surfaces a typed `HydroError` while the checkpoint
//! store's newest valid generation stays intact.
//!
//! Every gate failure prints the active fault seed and the full job
//! ledger (the `chaos_campaign` pattern) so a failing seed can be
//! replayed with `BLAST_FAULT_SEED`.

use blast_repro::blast_core::checkpoint::{CheckpointPolicy, CheckpointStore};
use blast_repro::blast_core::solver::MAX_STEP_REDOS;
use blast_repro::blast_core::{Hydro, HydroError, RunConfig, Sedov};
use blast_repro::blast_serve::{
    AdmissionError, CancelReason, JobOutcome, JobSpec, Scenario, ServeConfig, ServeReport,
    Supervisor, WorkerSpec,
};
use blast_repro::blast_telemetry::names::counters;
use blast_repro::gpu_sim::fault::fault_seed_from_env;
use blast_repro::gpu_sim::{DeviceCatalog, FaultKind, FaultPlan, RetryPolicy, FAULT_SEED_ENV};

/// Relative tolerance of the energy reconciliation gate — the solver-wide
/// band named once in `blast-core`.
const RECONCILE_TOL: f64 = blast_repro::blast_core::ENERGY_RECONCILE_TOL;

fn serve_seed() -> u64 {
    fault_seed_from_env().unwrap_or(42)
}

/// Asserts `cond`, printing the active seed and the full job ledger on
/// failure so the run can be replayed and read.
fn gate(report: &ServeReport, seed: u64, cond: bool, what: &str) {
    if !cond {
        println!("serve fault seed: {seed} (override with {FAULT_SEED_ENV})");
        print!("{}", report.summary());
        panic!("serve gate failed: {what}");
    }
}

fn bits(a: &[f64]) -> Vec<u64> {
    a.iter().map(|v| v.to_bits()).collect()
}

/// The headline storm: three tenants' jobs over a mixed CPU/GPU pool
/// with lethal and survivable fault bursts, retry with jittered backoff,
/// priorities, deadlines, and a scripted worker death — every admitted
/// job must land in a terminal state and the energy ledger must close.
#[test]
fn fault_storm_every_job_reaches_a_terminal_state() {
    let seed = serve_seed();
    let cfg = ServeConfig {
        queue_capacity: 32,
        quantum_steps: 4,
        retry: RetryPolicy {
            max_retries: 2,
            base_backoff_s: 1e-3,
            ..RetryPolicy::default()
        }
        .with_cap(0.5)
        .with_jitter(0.2, seed),
        seed,
        kill_rate: 0.12,
        redo_rate: 0.2,
        ..ServeConfig::default()
    };
    let workers = vec![
        WorkerSpec::from_device(&DeviceCatalog::get("k20")),
        WorkerSpec::cpu(),
        WorkerSpec::cpu().dying_at(2e-3),
    ];
    let mut sup = Supervisor::new(cfg, workers);
    let tenants = ["acme", "globex", "initech"];
    let scenarios = [Scenario::Sedov, Scenario::TaylorGreen, Scenario::TriplePoint];
    let mut admitted = 0u64;
    for i in 0..9 {
        let spec = JobSpec {
            tenant: tenants[i % 3].to_string(),
            scenario: scenarios[i % 3],
            zones: [8, 8],
            order: 2,
            t_final: 0.05,
            max_steps: 40,
            priority: (i % 4) as u8,
            arrival_s: 0.001 * i as f64,
            deadline_s: if i == 7 { Some(0.02) } else { None },
            checkpoint_every: 3,
            ..JobSpec::default()
        };
        sup.submit(spec).expect("storm submissions fit the queue");
        admitted += 1;
    }
    let report = sup.run_to_completion();
    let tel = sup.telemetry().clone();

    gate(&report, seed, report.all_terminal(), "a job is stuck in limbo");
    gate(&report, seed, report.jobs.len() as u64 == admitted, "ledger row per admitted job");
    let terminal = tel.counter(counters::JOBS_COMPLETED)
        + tel.counter(counters::JOBS_CANCELLED)
        + tel.counter(counters::JOBS_FAILED);
    gate(&report, seed, terminal == admitted, "terminal counters must sum to admissions");
    gate(
        &report,
        seed,
        report.reconciliation_error() <= RECONCILE_TOL,
        "tenant energy must reconcile with the worker power traces",
    );
    gate(&report, seed, report.workers_lost == 1, "the scripted worker death must land");
    for job in &report.jobs {
        gate(&report, seed, job.energy_j >= 0.0 && job.energy_j.is_finite(), "finite billing");
        if matches!(job.outcome, Some(JobOutcome::Completed { .. })) {
            gate(&report, seed, job.final_state.is_some(), "completed jobs keep a final state");
        }
    }
    // The storm is strong enough to exercise the retry ladder somewhere.
    let retried = report.jobs.iter().any(|j| j.attempts > 1);
    let failed = report.jobs.iter().any(|j| matches!(j.outcome, Some(JobOutcome::Failed { .. })));
    gate(&report, seed, retried || failed, "chaos must actually fire at these rates");

    // Determinism: the same seed replays to the same ledger digest.
    let cfg2 = ServeConfig {
        queue_capacity: 32,
        quantum_steps: 4,
        retry: RetryPolicy {
            max_retries: 2,
            base_backoff_s: 1e-3,
            ..RetryPolicy::default()
        }
        .with_cap(0.5)
        .with_jitter(0.2, seed),
        seed,
        kill_rate: 0.12,
        redo_rate: 0.2,
        ..ServeConfig::default()
    };
    let mut sup2 = Supervisor::new(
        cfg2,
        vec![
            WorkerSpec::from_device(&DeviceCatalog::get("k20")),
            WorkerSpec::cpu(),
            WorkerSpec::cpu().dying_at(2e-3),
        ],
    );
    for i in 0..9 {
        let spec = JobSpec {
            tenant: tenants[i % 3].to_string(),
            scenario: scenarios[i % 3],
            zones: [8, 8],
            order: 2,
            t_final: 0.05,
            max_steps: 40,
            priority: (i % 4) as u8,
            arrival_s: 0.001 * i as f64,
            deadline_s: if i == 7 { Some(0.02) } else { None },
            checkpoint_every: 3,
            ..JobSpec::default()
        };
        sup2.submit(spec).unwrap();
    }
    let replay = sup2.run_to_completion();
    gate(
        &report,
        seed,
        replay.ledger_digest() == report.ledger_digest(),
        "same seed must replay to the same ledger digest",
    );
}

/// A preempted-then-resumed job must end bit-identical to the same job
/// run without interference — and to the core solver driven directly.
#[test]
fn preempted_job_resumes_bit_identical_to_uninterrupted_run() {
    let seed = serve_seed();
    let t_final = 0.03;
    let max_steps = 80;
    let job = |priority: u8, arrival: f64| JobSpec {
        tenant: "probe".to_string(),
        scenario: Scenario::Sedov,
        zones: [6, 6],
        order: 2,
        t_final,
        max_steps,
        priority,
        arrival_s: arrival,
        checkpoint_every: 3,
        fault_immune: true,
        ..JobSpec::default()
    };
    let cfg = || ServeConfig { quantum_steps: 3, seed, ..ServeConfig::default() };

    // Contended run: a high-priority job arrives just after the probe
    // starts and evicts it through a checkpoint.
    let mut sup = Supervisor::new(cfg(), vec![WorkerSpec::cpu()]);
    let probe = sup.submit(job(0, 0.0)).unwrap();
    sup.submit(job(5, 1e-4)).unwrap();
    let report = sup.run_to_completion();
    let row = report.jobs.iter().find(|j| j.id == probe).unwrap();
    gate(&report, seed, report.all_terminal(), "contended run must terminate");
    gate(&report, seed, row.preemptions >= 1, "the probe must actually be preempted");
    gate(&report, seed, row.restores >= 1, "the probe must resume from its checkpoint");
    gate(
        &report,
        seed,
        report.reconciliation_error() <= RECONCILE_TOL,
        "contended run must still reconcile energy",
    );
    let contended = row.final_state.clone().expect("probe completed");

    // Uninterrupted run of the same job alone on the same pool.
    let mut alone = Supervisor::new(cfg(), vec![WorkerSpec::cpu()]);
    let solo = alone.submit(job(0, 0.0)).unwrap();
    let solo_report = alone.run_to_completion();
    let solo_row = solo_report.jobs.iter().find(|j| j.id == solo).unwrap();
    let uninterrupted = solo_row.final_state.clone().expect("solo probe completed");

    gate(
        &report,
        seed,
        bits(&contended.v) == bits(&uninterrupted.v)
            && bits(&contended.e) == bits(&uninterrupted.e)
            && bits(&contended.x) == bits(&uninterrupted.x)
            && contended.t.to_bits() == uninterrupted.t.to_bits(),
        "preempted+resumed final state must be bit-identical to the uninterrupted run",
    );

    // And both must match the core solver driven directly.
    let mut hydro = Hydro::<2>::builder(&Sedov::default(), [6, 6]).order(2).build().unwrap();
    let mut state = hydro.initial_state();
    hydro.run(&mut state, RunConfig::to(t_final).max_steps(max_steps)).unwrap();
    gate(
        &report,
        seed,
        bits(&contended.v) == bits(&state.v) && contended.t.to_bits() == state.t.to_bits(),
        "supervised trajectory must match the core solver bit-for-bit",
    );
}

/// Deadline enforcement: a job cancelled mid-run keeps its partial
/// energy billed; a job whose deadline lapsed while queued is cancelled
/// before it ever consumes anything.
#[test]
fn deadline_violations_cancel_with_partial_energy_billed() {
    let seed = serve_seed();
    // Measure the undisturbed wall time of the workload first.
    let mut probe = Supervisor::new(ServeConfig { seed, ..ServeConfig::default() }, vec![WorkerSpec::cpu()]);
    let spec = JobSpec {
        tenant: "dl".to_string(),
        zones: [6, 6],
        t_final: 0.03,
        max_steps: 80,
        checkpoint_every: 0,
        fault_immune: true,
        ..JobSpec::default()
    };
    probe.submit(spec.clone()).unwrap();
    let undisturbed = probe.run_to_completion();
    let full_wall = undisturbed.jobs[0].wall_s;
    assert!(full_wall > 0.0);

    // Mid-run cancellation: deadline at half the undisturbed wall.
    let mut sup = Supervisor::new(ServeConfig { seed, ..ServeConfig::default() }, vec![WorkerSpec::cpu()]);
    let victim = sup
        .submit(JobSpec { deadline_s: Some(0.5 * full_wall), ..spec.clone() })
        .unwrap();
    let report = sup.run_to_completion();
    let tel = sup.telemetry().clone();
    let row = report.jobs.iter().find(|j| j.id == victim).unwrap();
    gate(
        &report,
        seed,
        matches!(
            row.outcome,
            Some(JobOutcome::Cancelled { reason: CancelReason::DeadlineExceeded })
        ),
        "the mid-run deadline must cancel the job",
    );
    gate(&report, seed, row.steps > 0, "the job must have made some progress first");
    gate(&report, seed, row.energy_j > 0.0, "partial energy must stay billed");
    gate(&report, seed, tel.counter(counters::DEADLINE_MISSES) == 1, "one deadline miss");
    gate(
        &report,
        seed,
        report.reconciliation_error() <= RECONCILE_TOL,
        "cancelled work must still reconcile",
    );

    // Queued-past-deadline: a low-priority job with a deadline shorter
    // than the high-priority job occupying the only worker.
    let mut sup2 = Supervisor::new(ServeConfig { seed, ..ServeConfig::default() }, vec![WorkerSpec::cpu()]);
    sup2.submit(JobSpec { priority: 9, ..spec.clone() }).unwrap();
    let starved = sup2
        .submit(JobSpec {
            priority: 0,
            deadline_s: Some(0.25 * full_wall),
            ..spec.clone()
        })
        .unwrap();
    let report2 = sup2.run_to_completion();
    let row2 = report2.jobs.iter().find(|j| j.id == starved).unwrap();
    gate(
        &report2,
        seed,
        matches!(
            row2.outcome,
            Some(JobOutcome::Cancelled { reason: CancelReason::DeadlineExceeded })
        ),
        "the starved job must be cancelled before starting",
    );
    gate(&report2, seed, row2.energy_j == 0.0, "a never-started job bills nothing");
    gate(&report2, seed, row2.started_s.is_none(), "a never-started job never starts");
}

/// Admission control: the bounded queue and per-tenant energy budgets
/// reject with typed errors and consume nothing.
#[test]
fn admission_rejects_are_typed_and_free() {
    let seed = serve_seed();
    let cfg = ServeConfig { queue_capacity: 2, seed, ..ServeConfig::default() };
    let mut sup = Supervisor::new(cfg, vec![WorkerSpec::cpu()]);
    sup.set_tenant_budget("acme", 10.0);

    let cheap = JobSpec {
        tenant: "acme".to_string(),
        zones: [4, 4],
        t_final: 0.005,
        max_steps: 20,
        energy_est_j: 6.0,
        fault_immune: true,
        ..JobSpec::default()
    };
    sup.submit(cheap.clone()).expect("first submission fits");
    match sup.submit(JobSpec { energy_est_j: 6.0, ..cheap.clone() }) {
        Err(AdmissionError::OverBudget { tenant, budget_j, committed_j, requested_j }) => {
            assert_eq!(tenant, "acme");
            assert_eq!(budget_j, 10.0);
            assert_eq!(committed_j, 6.0);
            assert_eq!(requested_j, 6.0);
        }
        other => panic!("expected OverBudget, got {other:?}"),
    }
    sup.submit(JobSpec { tenant: "globex".to_string(), energy_est_j: 0.0, ..cheap.clone() })
        .expect("queue has room for a second tenant");
    match sup.submit(JobSpec { tenant: "globex".to_string(), energy_est_j: 0.0, ..cheap.clone() })
    {
        Err(AdmissionError::QueueFull { capacity }) => assert_eq!(capacity, 2),
        other => panic!("expected QueueFull, got {other:?}"),
    }

    let report = sup.run_to_completion();
    let tel = sup.telemetry().clone();
    assert_eq!(report.rejected, 2);
    assert_eq!(tel.counter(counters::JOBS_REJECTED), 2);
    assert_eq!(report.jobs.len(), 2, "rejected submissions never enter the ledger");
    gate(&report, seed, report.all_terminal(), "admitted jobs run to completion");
}

/// A worker that silently dies mid-job: the failure detector declares
/// it, the job migrates with only post-checkpoint progress lost, and the
/// final state still matches the undisturbed trajectory bit-for-bit.
#[test]
fn worker_death_migrates_job_via_checkpoint() {
    let seed = serve_seed();
    let spec = JobSpec {
        tenant: "mig".to_string(),
        zones: [6, 6],
        t_final: 0.03,
        max_steps: 80,
        checkpoint_every: 2,
        fault_immune: true,
        ..JobSpec::default()
    };
    // Measure undisturbed wall to place the death mid-run.
    let mut probe = Supervisor::new(ServeConfig { seed, ..ServeConfig::default() }, vec![WorkerSpec::cpu()]);
    probe.submit(spec.clone()).unwrap();
    let undisturbed = probe.run_to_completion();
    let full_wall = undisturbed.jobs[0].wall_s;
    let reference = undisturbed.jobs[0].final_state.clone().expect("undisturbed completes");

    let cfg = ServeConfig { quantum_steps: 3, seed, ..ServeConfig::default() };
    let workers = vec![WorkerSpec::cpu().dying_at(0.4 * full_wall), WorkerSpec::cpu()];
    let mut sup = Supervisor::new(cfg, workers);
    let id = sup.submit(spec).unwrap();
    let report = sup.run_to_completion();
    let tel = sup.telemetry().clone();
    let row = report.jobs.iter().find(|j| j.id == id).unwrap();

    gate(&report, seed, report.workers_lost == 1, "the scripted death must land");
    gate(&report, seed, tel.counter(counters::WORKER_DEATHS) == 1, "death counter");
    gate(
        &report,
        seed,
        matches!(row.outcome, Some(JobOutcome::Completed { .. })),
        "the migrated job must still complete",
    );
    gate(&report, seed, row.restores >= 1, "migration must go through a checkpoint restore");
    gate(
        &report,
        seed,
        report.reconciliation_error() <= RECONCILE_TOL,
        "dead-worker billing must still reconcile",
    );
    let migrated = row.final_state.clone().unwrap();
    gate(
        &report,
        seed,
        bits(&migrated.v) == bits(&reference.v)
            && bits(&migrated.e) == bits(&reference.e)
            && migrated.t.to_bits() == reference.t.to_bits(),
        "migrated trajectory must be bit-identical to the undisturbed run",
    );
}

/// Graceful degradation: a standing persistent device fault forces the
/// worker's attempts onto the CPU path; the job completes, is flagged
/// degraded, and the energy ledger still closes.
#[test]
fn device_fault_storm_degrades_to_cpu_and_completes() {
    let seed = serve_seed();
    let plan = FaultPlan::seeded(seed).with_persistent(FaultKind::EccError, 0);
    let cfg = ServeConfig { seed, ..ServeConfig::default() };
    let k20 = WorkerSpec::from_device(&DeviceCatalog::get("k20"));
    let mut sup = Supervisor::new(cfg, vec![k20.with_gpu_faults(plan)]);
    let id = sup
        .submit(JobSpec {
            tenant: "deg".to_string(),
            zones: [4, 4],
            t_final: 0.01,
            max_steps: 40,
            fault_immune: true,
            ..JobSpec::default()
        })
        .unwrap();
    let report = sup.run_to_completion();
    let row = report.jobs.iter().find(|j| j.id == id).unwrap();
    gate(
        &report,
        seed,
        matches!(row.outcome, Some(JobOutcome::Completed { .. })),
        "degraded job must complete on the CPU path",
    );
    gate(&report, seed, row.degraded, "the job must be flagged degraded");
    gate(
        &report,
        seed,
        report.reconciliation_error() <= RECONCILE_TOL,
        "degraded billing must still reconcile",
    );
}

/// Retry exhaustion under a guaranteed-lethal storm: the job fails with
/// a typed terminal error after exactly 1 + max_retries attempts, and
/// every backoff wait is billed at idle watts.
#[test]
fn retry_budget_exhaustion_is_typed_and_backoffs_are_billed() {
    let seed = serve_seed();
    let retry = RetryPolicy { max_retries: 2, base_backoff_s: 2e-3, ..RetryPolicy::default() }
        .with_cap(0.5);
    let cfg = ServeConfig {
        retry,
        seed,
        kill_rate: 1.0,
        ..ServeConfig::default()
    };
    let mut sup = Supervisor::new(cfg, vec![WorkerSpec::cpu()]);
    let id = sup
        .submit(JobSpec {
            tenant: "doomed".to_string(),
            zones: [4, 4],
            t_final: 0.02,
            max_steps: 60,
            checkpoint_every: 0,
            ..JobSpec::default()
        })
        .unwrap();
    let report = sup.run_to_completion();
    let tel = sup.telemetry().clone();
    let row = report.jobs.iter().find(|j| j.id == id).unwrap();
    match &row.outcome {
        Some(JobOutcome::Failed { attempts, error }) => {
            gate(&report, seed, *attempts == 3, "1 initial + 2 retries");
            gate(
                &report,
                seed,
                error.contains("non-finite"),
                "the terminal error must be the typed solver fault",
            );
        }
        other => {
            println!("serve fault seed: {seed} (override with {FAULT_SEED_ENV})");
            print!("{}", report.summary());
            panic!("expected Failed, got {other:?}");
        }
    }
    let expected_backoff = retry.backoff_s(0) + retry.backoff_s(1);
    gate(
        &report,
        seed,
        (row.backoff_s - expected_backoff).abs() < 1e-12,
        "backoff schedule must follow the policy exactly",
    );
    gate(&report, seed, row.backoff_energy_j > 0.0, "backoff waits are billed");
    gate(&report, seed, tel.counter(counters::JOB_RETRIES) == 2, "two retries issued");
    gate(
        &report,
        seed,
        report.reconciliation_error() <= RECONCILE_TOL,
        "failed-job billing must still reconcile",
    );
}

/// Satellite 3 (core-level): a burst of `MAX_STEP_REDOS + 1` consecutive
/// recoverable faults exhausts the rollback ladder and surfaces a
/// *typed* `HydroError` from a checkpointed run — and the store's newest
/// valid generation survives, so a fresh solver resumes and completes.
#[test]
fn lethal_redo_burst_surfaces_typed_error_with_store_intact() {
    let mut hydro = Hydro::<2>::builder(&Sedov::default(), [6, 6]).build().unwrap();
    let mut state = hydro.initial_state();
    let mut store = CheckpointStore::in_memory();

    // Run partway, writing checkpoints.
    hydro
        .run(
            &mut state,
            RunConfig::to(0.015).checkpointed(CheckpointPolicy::EverySteps(3), &mut store),
        )
        .unwrap();
    let loaded = store.latest_valid().expect("the partial run checkpointed");
    let ckpt_t = loaded.checkpoint.state.t;
    let gens = store.generations();
    assert!(gens >= 1 && ckpt_t > 0.0);

    // One more fault than the rollback budget absorbs: the run must die
    // with the typed NonFinite error, not a panic or a hang.
    hydro.inject_step_faults(MAX_STEP_REDOS + 1);
    let err = hydro
        .run(
            &mut state,
            RunConfig::to(0.03).checkpointed(CheckpointPolicy::EverySteps(3), &mut store),
        )
        .unwrap_err();
    assert!(
        matches!(err, HydroError::NonFinite { .. }),
        "expected the typed NonFinite fault, got: {err}"
    );

    // The store's newest valid generation is exactly what it was before
    // the burst — the failed run never wrote a partial generation.
    let after = store.latest_valid().expect("store survives the burst");
    assert_eq!(store.generations(), gens, "no torn generation appended");
    assert_eq!(
        after.checkpoint.state.t.to_bits(),
        ckpt_t.to_bits(),
        "newest valid generation must be byte-stable across the failure"
    );
    assert_eq!(after.skipped, 0, "no generation needed skipping");

    // A fresh solver resumes from that generation and completes.
    let mut h2 = Hydro::<2>::builder(&Sedov::default(), [6, 6]).build().unwrap();
    let mut s2 = h2.initial_state();
    let stats = h2
        .run(
            &mut s2,
            RunConfig::to(0.03).checkpointed(CheckpointPolicy::EverySteps(3), &mut store),
        )
        .unwrap();
    assert!(s2.t >= 0.03 - 1e-12, "resumed run reaches t_final (t = {})", s2.t);
    assert!(stats.steps > 0);
}
