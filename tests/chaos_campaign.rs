//! Chaos-campaign acceptance test (PR 2's tentpole): a seeded fault plan
//! kills a rank, drops and corrupts messages, and lands a persistent device
//! fault, yet the Sedov campaign reaches `t_final` with a final state that
//! matches the fault-free run **exactly** (documented tolerance: 0 —
//! replication is bit-identical, see DESIGN.md §9), while the resilience
//! machinery bills nonzero checkpoint/restore/rank-death work.

use std::time::Duration;

use blast_repro::blast_core::{CheckpointPolicy, CheckpointStore, ExecMode, Executor, Hydro, RunConfig, Sedov};
use blast_repro::cluster_sim::{
    campaign_overhead_pct, run_chaos_campaign, CampaignConfig, RankOutcome,
};
use blast_repro::cluster_sim::comm::ClusterFaultPlan;
use blast_repro::gpu_sim::{CpuSpec, FaultKind, FaultPlan, FAULT_SEED_ENV};

fn cpu_exec() -> Executor {
    Executor::new(ExecMode::CpuSerial, CpuSpec::e5_2670(), None)
}

fn quick_cfg() -> CampaignConfig {
    CampaignConfig { link_timeout: Duration::from_millis(20), ..CampaignConfig::default() }
}

/// The headline chaos campaign: >= 1 rank death, >= 1 persistent device
/// fault, message drops and corruption — all at once.
#[test]
fn chaos_campaign_survives_deaths_drops_and_device_faults() {
    let cfg = quick_cfg();

    // Fault-free reference trajectory.
    let reference = run_chaos_campaign(&cfg, ClusterFaultPlan::none(), |_| FaultPlan::none());
    for r in &reference {
        assert_eq!(r.outcome, RankOutcome::Completed, "reference rank {}: {:?}", r.rank, r.outcome);
    }
    assert!(reference[0].steps >= 6, "reference too short: {} steps", reference[0].steps);
    assert!(
        reference[0].state.t >= cfg.t_final - 1e-12,
        "reference must reach t_final"
    );

    // The chaos plan. The seed comes from one place and is overridable via
    // BLAST_FAULT_SEED (satellite: env-var plumbing + printed seed).
    // The death lands mid-round (not on a round boundary), so part of the
    // dying rank's final gather burst is suppressed in flight.
    let plan = ClusterFaultPlan::seeded_from_env(42)
        .with_drop_rate(0.03)
        .with_corrupt_rate(0.02)
        .with_rank_death(2, 2 * cfg.redundancy as u64 + 2);
    let seed = plan.seed;
    println!("chaos campaign fault seed: {seed} (override with {FAULT_SEED_ENV})");

    let results = run_chaos_campaign(&cfg, plan, |rank| {
        if rank == 1 {
            // Persistent mid-run device fault: rank 1 degrades to the CPU
            // path (bit-identically) and keeps going.
            FaultPlan::seeded_from_env(42).with_persistent(FaultKind::EccError, 500)
        } else {
            FaultPlan::none()
        }
    });

    // The scheduled death fired and was agreed on.
    assert!(
        matches!(results[2].outcome, RankOutcome::Died { .. }),
        "rank 2 should die: {:?}",
        results[2].outcome
    );
    for r in &results[..2] {
        assert_eq!(r.outcome, RankOutcome::Completed, "rank {}: {:?}", r.rank, r.outcome);
        assert_eq!(r.dead_seen, vec![2], "rank {} dead set", r.rank);
        assert!(r.report.rank_deaths >= 1, "rank {} must record the death", r.rank);
        assert!(r.report.checkpoints_written >= 2, "rank {}: {:?}", r.rank, r.report);
        assert!(r.report.restores >= 1, "recovery must restore: rank {}", r.rank);
        assert!(r.report.resilience_energy_j > 0.0, "resilience must cost joules");
        assert!(
            r.state.t >= cfg.t_final - 1e-12,
            "rank {} must reach t_final (t = {})",
            r.rank,
            r.state.t
        );
        // Documented tolerance: exact. Replicated physics is bit-identical
        // (CPU degrade included), dt consensus is a min over identical
        // values, and checkpoint replay is deterministic.
        let reference_state = &reference[r.rank].state;
        assert_eq!(r.state.v, reference_state.v, "rank {} velocity", r.rank);
        assert_eq!(r.state.e, reference_state.e, "rank {} energy", r.rank);
        assert_eq!(r.state.x, reference_state.x, "rank {} mesh", r.rank);
        assert_eq!(r.state.t, reference_state.t);
    }

    // The persistent device fault really fired on rank 1.
    assert!(
        results[1].report.degraded_to_cpu,
        "rank 1's persistent ECC fault must degrade it: {:?}",
        results[1].report
    );
    assert!(results[1].report.faults_injected >= 1);

    // Messages were actually dropped and corrupted somewhere.
    let dropped: usize = results.iter().map(|r| r.comm_stats.dropped).sum();
    let corrupted: usize = results.iter().map(|r| r.comm_stats.corrupted).sum();
    assert!(dropped + corrupted > 0, "chaos plan must interfere with traffic");
    let suppressed: usize = results.iter().map(|r| r.comm_stats.suppressed).sum();
    assert!(suppressed > 0, "the dead rank's sends must be suppressed");

    // Resilience overhead is reportable alongside greenup.
    let overhead = campaign_overhead_pct(&results[..2]);
    assert!(overhead > 0.0, "overhead must be attributable");
    assert!(overhead < 50.0, "overhead should stay a minor share: {overhead}%");
    println!("resilience overhead: {overhead:.3}% of campaign energy");
    for r in &results[..2] {
        println!("--- rank {} ---\n{}", r.rank, r.report.summary());
    }
    // One digest line per surviving rank: CI runs this campaign at
    // BLAST_THREADS = 1 and 8 and diffs these lines, so the digest must
    // cover every physics bit of the final state.
    for r in &results[..2] {
        println!("final state digest rank {}: {:016x}", r.rank, state_digest(&r.state));
    }
}

/// FNV-1a over the bit patterns of the full final state `(v, e, x, t)`.
fn state_digest(s: &blast_repro::blast_core::HydroState) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in s.v.iter().chain(&s.e).chain(&s.x).chain(std::iter::once(&s.t)) {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Solver-level checksum fallback: a flipped byte in the newest checkpoint
/// generation is rejected via CRC and restart falls back to the previous
/// generation, still finishing bit-identically.
#[test]
fn flipped_byte_checkpoint_falls_back_a_generation() {
    let policy = CheckpointPolicy::EverySteps(2);
    let problem = Sedov::default();

    // Uninterrupted reference.
    let mut h_ref = Hydro::<2>::builder(&problem, [4, 4]).executor(cpu_exec()).build().unwrap();
    let mut s_ref = h_ref.initial_state();
    let mut ref_store = CheckpointStore::in_memory();
    let stats_ref = h_ref
        .run(&mut s_ref, RunConfig::to(0.06).max_steps(60).checkpointed(policy, &mut ref_store))
        .unwrap();
    assert!(stats_ref.steps >= 5, "need several generations: {}", stats_ref.steps);

    // First half, then "the process dies".
    let mut h1 = Hydro::<2>::builder(&problem, [4, 4]).executor(cpu_exec()).build().unwrap();
    let mut s1 = h1.initial_state();
    let mut store = CheckpointStore::in_memory();
    h1.run(&mut s1, RunConfig::to(0.06).max_steps(stats_ref.steps - 1).checkpointed(policy, &mut store)).unwrap();
    assert!(store.generations() >= 2, "need a generation to fall back to");
    drop((h1, s1));

    // Bit-rot strikes the newest generation.
    let image = store.image_mut(0).expect("newest generation");
    let mid = image.len() / 2;
    image[mid] ^= 0x40;

    // Restart: the corrupt generation is skipped, the previous one loads.
    let loaded = store.latest_valid().expect("must fall back, not fail");
    assert_eq!(loaded.skipped, 1, "exactly the flipped-byte generation is skipped");

    let mut h2 = Hydro::<2>::builder(&problem, [4, 4]).executor(cpu_exec()).build().unwrap();
    let mut s2 = h2.initial_state();
    let stats2 = h2.run(&mut s2, RunConfig::to(0.06).max_steps(60).checkpointed(policy, &mut store)).unwrap();
    assert_eq!(stats2.steps, stats_ref.steps);
    assert_eq!(s2.v, s_ref.v, "resume after fallback must stay bit-identical");
    assert_eq!(s2.e, s_ref.e);
    assert_eq!(s2.x, s_ref.x);
    let rep = h2.executor().resilience_report(stats2.retries);
    assert_eq!(rep.restores, 1);
}
