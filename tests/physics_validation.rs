//! Physics validation of the hydro solver against known properties of the
//! Euler equations: strong-shock compression limits, Sedov similarity
//! scaling, symmetry preservation, and Galilean invariance of the internal
//! energy evolution.

use blast_repro::blast_core::{ExecMode, Executor, Hydro, HydroConfig, RunConfig, Sedov};
use blast_repro::gpu_sim::CpuSpec;

fn cpu_exec() -> Executor {
    Executor::new(ExecMode::CpuParallel { threads: 8 }, CpuSpec::e5_2670(), None)
}

#[test]
#[cfg_attr(debug_assertions, ignore = "hydro-scale experiment: run with --release")]
fn shock_compression_bounded_by_rankine_hugoniot() {
    // A single shock in a gamma = 1.4 gas compresses at most
    // (gamma+1)/(gamma-1) = 6; with reflections and numerical overshoot a
    // modest margin applies, but 10x would be unphysical.
    let problem = Sedov::default();
    let mut hydro =
        Hydro::<2>::builder(&problem, [10, 10]).executor(cpu_exec()).build().unwrap();
    let mut state = hydro.initial_state();
    hydro.run(&mut state, RunConfig::to(0.25).max_steps(1000)).unwrap();
    let (max_compr, min_det, _) = hydro.density_diagnostics(&state);
    assert!(min_det > 0.0, "mesh remained valid");
    assert!(max_compr > 1.5, "a shock should compress: {max_compr}");
    assert!(max_compr < 8.0, "compression {max_compr} beyond physical limit");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "hydro-scale experiment: run with --release")]
fn sedov_expansion_decelerates() {
    // Sedov similarity: r ~ t^{2/(nu+2)} -> the shock decelerates; the
    // blast kinetic energy saturates rather than growing without bound.
    let problem = Sedov::default();
    let mut hydro =
        Hydro::<2>::builder(&problem, [10, 10]).executor(cpu_exec()).build().unwrap();
    let mut state = hydro.initial_state();

    hydro.run(&mut state, RunConfig::to(0.1).max_steps(1000)).unwrap();
    let ke1 = hydro.energies(&state).kinetic;
    let r1 = blast_radius(&hydro, &state);
    hydro.run(&mut state, RunConfig::to(0.3).max_steps(1000)).unwrap();
    let ke2 = hydro.energies(&state).kinetic;
    let r2 = blast_radius(&hydro, &state);

    assert!(r2 > r1, "shock advanced: {r1} -> {r2}");
    // Deceleration: growth far slower than linear in t (3x the time,
    // sub-2x the radius for the 2D similarity exponent 1/2).
    assert!(r2 / r1 < 2.5, "r grew too fast: {r1} -> {r2}");
    // Kinetic energy approaches its self-similar share without diverging.
    assert!(ke2 < 3.0 * ke1 + 0.1, "KE diverging: {ke1} -> {ke2}");
}

/// Mean radius of the strongest density jump: approximated by the radius of
/// the node with the largest outward displacement.
fn blast_radius(hydro: &Hydro<2>, state: &blast_repro::blast_core::HydroState) -> f64 {
    let n = hydro.kin_space().num_dofs();
    let x0 = hydro.kin_space().initial_coords();
    let mut best = (0.0, 0.0);
    for i in 0..n {
        let r0 = (x0[i].powi(2) + x0[n + i].powi(2)).sqrt();
        let r1 = (state.x[i].powi(2) + state.x[n + i].powi(2)).sqrt();
        let disp = r1 - r0;
        if disp > best.0 {
            best = (disp, r1);
        }
    }
    best.1
}

#[test]
#[cfg_attr(debug_assertions, ignore = "hydro-scale experiment: run with --release")]
fn diagonal_symmetry_preserved() {
    // The Sedov setup is symmetric under x <-> y; the discrete solution on
    // a symmetric mesh must preserve that symmetry exactly (up to solver
    // tolerance).
    let problem = Sedov::default();
    let mut hydro =
        Hydro::<2>::builder(&problem, [8, 8]).executor(cpu_exec()).build().unwrap();
    let mut state = hydro.initial_state();
    hydro.run(&mut state, RunConfig::to(0.1).max_steps(500)).unwrap();

    let space = hydro.kin_space();
    let n = space.num_dofs();
    let [nx, _ny] = space.nodes_per_axis();
    // Node (i, j) mirrors to (j, i): vx(i,j) == vy(j,i).
    for i in 0..nx {
        for j in 0..nx {
            let a = j * nx + i;
            let b = i * nx + j;
            let vx_a = state.v[a];
            let vy_b = state.v[n + b];
            assert!(
                (vx_a - vy_b).abs() < 1e-8 * vx_a.abs().max(1.0),
                "symmetry broken at ({i},{j}): {vx_a} vs {vy_b}"
            );
        }
    }
}

#[test]
fn total_mass_is_exactly_conserved() {
    // Strong mass conservation: rho |J| is frozen, so total mass never
    // changes — by construction, but the diagnostics must agree.
    let problem = Sedov::default();
    let mut hydro =
        Hydro::<2>::builder(&problem, [6, 6]).executor(cpu_exec()).build().unwrap();
    let m0 = hydro.total_mass();
    let mut state = hydro.initial_state();
    hydro.run(&mut state, RunConfig::to(0.1).max_steps(300)).unwrap();
    assert_eq!(hydro.total_mass(), m0);
    // Volume integral of |J| equals the deformed domain volume; with
    // reflecting walls the domain volume is invariant.
    let (_, min_det, max_det) = hydro.density_diagnostics(&state);
    assert!(min_det > 0.0 && max_det < 10.0 * min_det.max(1e-3));
}

#[test]
fn energy_conservation_holds_across_orders() {
    for order in [1usize, 2, 3] {
        let problem = Sedov::default();
        let cfg = HydroConfig { order, ..Default::default() };
        let mut hydro = Hydro::<2>::builder(&problem, [4, 4]).config(cfg).executor(cpu_exec()).build().unwrap();
        let mut state = hydro.initial_state();
        let e0 = hydro.energies(&state);
        hydro.run(&mut state, RunConfig::to(0.05).max_steps(200)).unwrap();
        let e1 = hydro.energies(&state);
        assert!(
            e1.relative_change(&e0).abs() < 1e-10,
            "order {order}: drift {}",
            e1.relative_change(&e0)
        );
    }
}
