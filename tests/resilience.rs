//! Fault-injection and recovery acceptance tests: persistent GPU faults
//! degrade the run to the CPU path bit-identically, transient faults are
//! absorbed by retries (and billed as idle-power backoff energy), numerical
//! failures roll back with a halved dt, and a disabled fault plan changes
//! nothing at all.

use std::sync::Arc;

use blast_repro::blast_core::{ExecMode, Executor, Hydro, HydroConfig, HydroState, RunConfig, Sedov};
use blast_repro::gpu_sim::{
    CpuSpec, FaultKind, FaultPlan, GpuDevice, RetryPolicy,
};
use proptest::prelude::*;
use gpu_sim::DeviceCatalog;

fn cpu_exec() -> Executor {
    Executor::new(ExecMode::CpuSerial, CpuSpec::e5_2670(), None)
}

fn gpu_exec_with(plan: FaultPlan) -> Executor {
    let dev = Arc::new(GpuDevice::new(DeviceCatalog::gpu("k20")));
    dev.set_fault_plan(plan);
    Executor::new(
        ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 },
        CpuSpec::e5_2670(),
        Some(dev),
    )
}

fn sedov_run(exec: Executor) -> (Hydro<2>, HydroState, blast_repro::blast_core::RunStats) {
    let problem = Sedov::default();
    let mut hydro = Hydro::<2>::builder(&problem, [4, 4]).executor(exec).build().unwrap();
    let mut state = hydro.initial_state();
    let stats = hydro.run(&mut state, RunConfig::to(0.05).max_steps(60)).unwrap();
    (hydro, state, stats)
}

/// The headline acceptance property: a persistent GPU fault makes the run
/// degrade to the CPU path and finish with *bit-identical* physics to a
/// pure-CPU run (fault injection fires before a kernel's functional body,
/// so the failed evaluation never contributed partial results).
#[test]
fn persistent_gpu_fault_degrades_to_cpu_bit_identically() {
    let plan = FaultPlan::seeded(7).with_persistent(FaultKind::LaunchFail, 0);
    let (h_gpu, s_gpu, stats_gpu) = sedov_run(gpu_exec_with(plan));
    let (_h_cpu, s_cpu, _stats_cpu) = sedov_run(cpu_exec());

    assert!(h_gpu.executor().is_degraded(), "persistent fault must degrade the run");
    assert_eq!(s_gpu.v, s_cpu.v, "velocity differs from pure-CPU run");
    assert_eq!(s_gpu.e, s_cpu.e, "energy differs from pure-CPU run");
    assert_eq!(s_gpu.x, s_cpu.x, "mesh differs from pure-CPU run");
    assert_eq!(s_gpu.t, s_cpu.t);

    let report = h_gpu.executor().resilience_report(stats_gpu.retries);
    assert!(report.degraded_to_cpu);
    assert!(report.faults_injected >= 1);
    assert!(report.exhausted >= 1);
    assert!(report.backoff_s > 0.0, "retries must charge backoff time");
    assert!(report.backoff_energy_j > 0.0, "backoff must cost idle energy");
    assert!(
        report.degraded_reason.unwrap().contains("failed"),
        "reason should name the fault"
    );
}

/// Same property for every fault site that can fail persistently mid-run.
#[test]
fn any_persistent_fault_kind_falls_back_bit_identically() {
    let (_h_ref, s_cpu, _) = sedov_run(cpu_exec());
    for kind in [
        FaultKind::LaunchFail,
        FaultKind::EccError,
        FaultKind::H2dFail,
        FaultKind::D2hFail,
    ] {
        let plan = FaultPlan::seeded(11).with_persistent(kind, 0);
        let (h_gpu, s_gpu, _) = sedov_run(gpu_exec_with(plan));
        assert!(h_gpu.executor().is_degraded(), "{kind:?} did not degrade");
        assert_eq!(s_gpu.v, s_cpu.v, "{kind:?}: velocity differs");
        assert_eq!(s_gpu.e, s_cpu.e, "{kind:?}: energy differs");
        assert_eq!(s_gpu.x, s_cpu.x, "{kind:?}: mesh differs");
    }
}

/// A fault that only strikes later in the run still degrades cleanly; the
/// already-computed GPU physics stays (it agrees with the CPU to solver
/// tolerance), and the run completes.
#[test]
fn late_persistent_fault_degrades_mid_run_and_completes() {
    let plan = FaultPlan::seeded(3).with_persistent(FaultKind::EccError, 40);
    let (h_gpu, s_gpu, stats) = sedov_run(gpu_exec_with(plan));
    let (_h_cpu, s_cpu, _) = sedov_run(cpu_exec());

    assert!(h_gpu.executor().is_degraded());
    assert!(s_gpu.t >= 0.05 - 1e-12, "run must complete after degradation");
    assert!(stats.steps > 0);
    // GPU-PCG steps before the fault agree with CPU to solver tolerance.
    let dv = blast_repro::blast_la::max_rel_diff(&s_gpu.v, &s_cpu.v);
    let de = blast_repro::blast_la::max_rel_diff(&s_gpu.e, &s_cpu.e);
    assert!(dv < 1e-7, "v diff {dv}");
    assert!(de < 1e-7, "e diff {de}");
}

/// Transient faults are absorbed by the retry policy: the run neither
/// degrades nor changes its physics relative to a fault-free GPU run, but
/// it does pay retry backoff time and idle-power energy for the recovery.
#[test]
fn transient_faults_are_retried_with_identical_physics() {
    let (h_clean, s_clean, _) = sedov_run(gpu_exec_with(FaultPlan::none()));
    let plan = FaultPlan::seeded(19)
        .with_transient(FaultKind::LaunchFail, 5)
        .with_transient(FaultKind::D2hFail, 2);
    let (h_faulty, s_faulty, stats) = sedov_run(gpu_exec_with(plan));

    assert!(!h_faulty.executor().is_degraded());
    assert_eq!(s_faulty.v, s_clean.v);
    assert_eq!(s_faulty.e, s_clean.e);
    assert_eq!(s_faulty.x, s_clean.x);

    let report = h_faulty.executor().resilience_report(stats.retries);
    assert!(report.faults_injected >= 2);
    assert!(report.recovered >= 2);
    assert_eq!(report.exhausted, 0);
    assert!((report.recovery_rate() - 1.0).abs() < 1e-12);
    // Recovery costs simulated time and idle energy.
    let clean_gpu = h_clean.executor().gpu.as_ref().unwrap();
    let faulty_gpu = h_faulty.executor().gpu.as_ref().unwrap();
    assert!(faulty_gpu.now() > clean_gpu.now(), "backoff must show up on the device clock");
}

/// With fault injection disabled the device behaves exactly as if the
/// fault framework did not exist: identical physics, identical timelines.
#[test]
fn disabled_fault_plan_changes_nothing() {
    let (h_default, s_default, _) = sedov_run(gpu_exec_with(FaultPlan::none()));

    let dev = Arc::new(GpuDevice::new(DeviceCatalog::gpu("k20")));
    // Never touched set_fault_plan at all.
    let exec = Executor::new(
        ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 },
        CpuSpec::e5_2670(),
        Some(dev),
    );
    let (h_untouched, s_untouched, _) = sedov_run(exec);

    assert_eq!(s_default.v, s_untouched.v);
    assert_eq!(s_default.e, s_untouched.e);
    assert_eq!(s_default.x, s_untouched.x);
    let d = h_default.executor().gpu.as_ref().unwrap();
    let u = h_untouched.executor().gpu.as_ref().unwrap();
    assert_eq!(d.now(), u.now(), "an inactive plan must cost zero device time");
    let report = h_default.executor().resilience_report(0);
    assert_eq!(report.faults_injected, 0);
    assert_eq!(report.backoff_s, 0.0);
}

/// An over-aggressive CFL tangles the mesh mid-step; `try_run_to` rolls the
/// step back, halves dt, and still conserves energy to solver tolerance.
#[test]
fn rollback_on_mesh_tangle_conserves_energy() {
    let problem = Sedov::default();
    let config = HydroConfig { cfl: 5.0, ..Default::default() };
    let mut hydro = Hydro::<2>::builder(&problem, [4, 4]).config(config).executor(cpu_exec()).build().unwrap();
    let mut state = hydro.initial_state();
    let e0 = hydro.energies(&state);
    // t_final must exceed the (huge) suggested dt, or the horizon clamp
    // would keep every step below the tangle threshold.
    let stats = hydro.run(&mut state, RunConfig::to(0.25).max_steps(300)).expect("rollback should recover");
    assert!(stats.retries > 0, "the huge CFL must force at least one redo");
    assert!(state.t >= 0.25 - 1e-12);
    let e1 = hydro.energies(&state);
    let drift = e1.relative_change(&e0).abs();
    assert!(drift < 1e-10, "energy drift {drift} after {} redos", stats.retries);
}

/// A failing step leaves the caller's state untouched (the checkpoint
/// contract `try_run_to` relies on).
#[test]
fn failed_step_leaves_state_unchanged() {
    let problem = Sedov::default();
    let mut hydro =
        Hydro::<2>::builder(&problem, [4, 4]).executor(cpu_exec()).build().unwrap();
    let mut state = hydro.initial_state();
    let before = state.clone();
    let err = hydro.try_step(&mut state, 10.0).expect_err("dt = 10 must fail");
    assert!(err.recoverable_by_rollback(), "got: {err:?}");
    assert_eq!(state, before);
}

proptest! {
    /// Satellite (d), property 1: the whole faulty run is a pure function
    /// of the fault-plan seed — same seed, same physics, same fault
    /// counters, same device clock.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "hydro-scale property: run with --release")]
    fn fault_injection_is_deterministic_per_seed(seed in 0u64..32) {
        let plan = || FaultPlan::seeded(seed)
            .with_rate(FaultKind::LaunchFail, 0.02)
            .with_rate(FaultKind::D2hFail, 0.01);
        let (h1, s1, r1) = sedov_run(gpu_exec_with(plan()));
        let (h2, s2, r2) = sedov_run(gpu_exec_with(plan()));
        prop_assert_eq!(s1.v, s2.v);
        prop_assert_eq!(s1.e, s2.e);
        prop_assert_eq!(s1.x, s2.x);
        let g1 = h1.executor().gpu.as_ref().unwrap();
        let g2 = h2.executor().gpu.as_ref().unwrap();
        prop_assert_eq!(g1.now(), g2.now());
        prop_assert_eq!(h1.executor().resilience_report(r1.retries),
                        h2.executor().resilience_report(r2.retries));
    }

    /// Satellite (d), property 2: GPU -> CPU fallback is bit-identical to
    /// the pure-CPU run for any seed and any immediately-persistent fault
    /// site.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "hydro-scale property: run with --release")]
    fn fallback_bit_identity_holds_for_any_seed(seed in 0u64..16, kind_idx in 0usize..4) {
        let kind = [
            FaultKind::LaunchFail,
            FaultKind::EccError,
            FaultKind::H2dFail,
            FaultKind::D2hFail,
        ][kind_idx];
        let (_hc, s_cpu, _) = sedov_run(cpu_exec());
        let plan = FaultPlan::seeded(seed).with_persistent(kind, 0);
        let (hg, s_gpu, _) = sedov_run(gpu_exec_with(plan));
        prop_assert!(hg.executor().is_degraded());
        prop_assert_eq!(s_gpu.v, s_cpu.v);
        prop_assert_eq!(s_gpu.e, s_cpu.e);
        prop_assert_eq!(s_gpu.x, s_cpu.x);
    }

    /// Satellite (d), property 3: dt-halving rollback keeps total energy
    /// conserved to ~1e-11 no matter how aggressive the CFL was — redone
    /// steps must not double-count energy. Runs that survive only by
    /// accepting wildly under-resolved steps (compression past the
    /// ideal-gas single-shock bound of (γ+1)/(γ-1) = 6) are excluded:
    /// their energy *scale* blows up, so "relative to t=0" stops being the
    /// right yardstick even though each step conserves at its own scale.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "hydro-scale property: run with --release")]
    fn rollback_conserves_energy_for_any_cfl(cfl in 1.0f64..6.0) {
        let problem = Sedov::default();
        let config = HydroConfig { cfl, ..Default::default() };
        let mut hydro = Hydro::<2>::builder(&problem, [4, 4]).config(config).executor(cpu_exec()).build().unwrap();
        let mut state = hydro.initial_state();
        let e0 = hydro.energies(&state);
        let stats = hydro.run(&mut state, RunConfig::to(0.2).max_steps(400));
        prop_assume!(stats.is_ok());
        let (max_compr, _, _) = hydro.density_diagnostics(&state);
        prop_assume!(max_compr < 6.5);
        let e1 = hydro.energies(&state);
        prop_assert!(e1.relative_change(&e0).abs() < 1e-10,
            "drift {} (cfl {cfl}, retries {})",
            e1.relative_change(&e0), stats.unwrap().retries);
    }
}

#[test]
fn retry_policy_off_makes_first_fault_terminal() {
    let dev = Arc::new(GpuDevice::new(DeviceCatalog::gpu("k20")));
    dev.set_fault_plan(FaultPlan::seeded(1).with_transient(FaultKind::LaunchFail, 0));
    dev.set_retry_policy(RetryPolicy::no_retries());
    let exec = Executor::new(
        ExecMode::Gpu { base: false, gpu_pcg: true, mpi_queues: 1 },
        CpuSpec::e5_2670(),
        Some(dev),
    );
    let problem = Sedov::default();
    let mut hydro = Hydro::<2>::builder(&problem, [4, 4]).executor(exec).build().unwrap();
    let mut state = hydro.initial_state();
    // Even a transient fault is terminal without retries -> degradation.
    hydro.run(&mut state, RunConfig::to(0.01).max_steps(20)).expect("degradation still saves the run");
    assert!(hydro.executor().is_degraded());
}

// ---------------------------------------------------------------------------
// PR 2 satellites: the recovery-ladder accounting fix and the
// MAX_STEP_REDOS boundary.
// ---------------------------------------------------------------------------

use blast_repro::blast_core::solver::MAX_STEP_REDOS;
use blast_repro::blast_core::HydroError;

/// Regression for the recovery-ladder gap: a device fault injected *during
/// a rollback redo attempt* must land in `ResilienceReport::redo_faults`
/// (pre-fix, redo attempts were a blind spot of the retry totals).
#[test]
fn device_faults_during_rollback_redo_are_counted() {
    // Per-op fault rate: the step redone after the injected rollbacks
    // launches many kernels, so some faults deterministically (seeded)
    // land inside the watched redo attempt.
    let plan = FaultPlan::seeded(0).with_rate(FaultKind::LaunchFail, 0.1);
    let exec = gpu_exec_with(plan);
    let problem = Sedov::default();
    let mut hydro = Hydro::<2>::builder(&problem, [4, 4]).executor(exec).build().unwrap();
    let mut state = hydro.initial_state();
    let dt = hydro.suggest_dt(&state);
    // Two injected step faults force two rollback redos before real work.
    hydro.inject_step_faults(2);
    let adv = hydro.try_advance(&mut state, dt).expect("retries absorb the rate");
    assert!(adv.redos >= 2, "injected faults must cause redos: {}", adv.redos);
    let report = hydro.executor().resilience_report(adv.redos);
    assert!(
        report.redo_faults >= 1,
        "fault during a redo attempt must be counted: {report:?}"
    );
    assert!(report.faults_injected >= report.redo_faults);
}

/// Exactly at the budget: MAX_STEP_REDOS consecutive recoverable failures
/// still produce an accepted step on the final attempt.
#[test]
fn redo_budget_exactly_at_limit_succeeds() {
    let problem = Sedov::default();
    let mut hydro =
        Hydro::<2>::builder(&problem, [4, 4]).executor(cpu_exec()).build().unwrap();
    let mut state = hydro.initial_state();
    let dt = hydro.suggest_dt(&state);
    hydro.inject_step_faults(MAX_STEP_REDOS);
    let adv = hydro.try_advance(&mut state, dt).expect("at-limit must still succeed");
    assert!(adv.redos >= MAX_STEP_REDOS);
    assert!(state.t > 0.0, "the final attempt must have been accepted");
}

/// One past the budget: the typed error surfaces and the caller's state is
/// the last good checkpoint, not a mid-rollback intermediate.
#[test]
fn redo_budget_limit_plus_one_fails_with_state_intact() {
    let problem = Sedov::default();
    let mut hydro =
        Hydro::<2>::builder(&problem, [4, 4]).executor(cpu_exec()).build().unwrap();
    let mut state = hydro.initial_state();
    let dt = hydro.suggest_dt(&state);
    let before = state.clone();
    hydro.inject_step_faults(MAX_STEP_REDOS + 1);
    let err = hydro.try_advance(&mut state, dt).expect_err("limit+1 must fail");
    assert!(
        matches!(err, HydroError::NonFinite { .. }),
        "typed recoverable error expected: {err:?}"
    );
    assert_eq!(state, before, "state must be left at the last good checkpoint");
}

proptest! {
    /// Any in-budget burst of consecutive recoverable failures is absorbed,
    /// with the redo count accounting for every injected fault.
    #[test]
    fn redo_budget_in_range_always_recovers(k in 0usize..=MAX_STEP_REDOS) {
        let problem = Sedov::default();
        let mut hydro =
            Hydro::<2>::builder(&problem, [4, 4]).executor(cpu_exec()).build().unwrap();
        let mut state = hydro.initial_state();
        let dt = hydro.suggest_dt(&state);
        hydro.inject_step_faults(k);
        let adv = hydro.try_advance(&mut state, dt);
        prop_assert!(adv.is_ok(), "k = {k} within budget must succeed");
        prop_assert!(adv.unwrap().redos >= k);
    }
}
